"""Preprocessing pipeline (paper Section 4 and Section 7 preamble).

One pass over the input volume produces:

1. the metacell decomposition with per-metacell ``(vmin, vmax)``;
2. culling of constant metacells (the ~50% disk saving on the
   Richtmyer–Meshkov data);
3. the compact interval tree over the surviving intervals;
4. the on-disk brick layout — metacell records written in tree layout
   order to one device (serial) or striped round-robin across ``p``
   devices (parallel, Section 5.1).

The output is an :class:`IndexedDataset`: everything a query needs — the
in-memory index, the device, the record codec, and the grid metadata that
maps metacell ids back to world coordinates at triangulation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.striping import StripedNodeLayout, stripe_brick_records
from repro.grid.metacell import MetacellPartition, partition_metacells
from repro.grid.volume import Volume
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cost_model import IOCostModel
from repro.io.layout import (
    BrickChecksums,
    MetacellCodec,
    compute_cum_crcs,
    compute_record_crcs,
)

#: Records serialized per chunk during the layout write, bounding resident
#: memory during preprocessing of large volumes.
WRITE_CHUNK_RECORDS = 8192


@dataclass(frozen=True)
class DatasetMeta:
    """Grid metadata carried alongside the on-disk records.

    Lets the extraction stage place each metacell's triangles in world
    coordinates knowing only the metacell id from its record.
    """

    grid_shape: tuple[int, int, int]
    metacell_shape: tuple[int, int, int]
    volume_shape: tuple[int, int, int]
    spacing: tuple[float, float, float]
    origin: tuple[float, float, float]
    name: str

    def id_to_ijk(self, ids: np.ndarray) -> np.ndarray:
        """Metacell ids -> metacell-grid coordinates, shape (n, 3)."""
        ids = np.asarray(ids, dtype=np.int64)
        gx, gy, gz = self.grid_shape
        i = ids // (gy * gz)
        j = (ids // gz) % gy
        k = ids % gz
        return np.stack([i, j, k], axis=1)

    def vertex_origins(self, ids: np.ndarray) -> np.ndarray:
        """Vertex-index origin of each metacell in the (padded) volume."""
        steps = np.asarray([m - 1 for m in self.metacell_shape], dtype=np.int64)
        return self.id_to_ijk(ids) * steps

    @property
    def n_metacells(self) -> int:
        return int(np.prod(self.grid_shape))


@dataclass
class PreprocessReport:
    """Statistics of one preprocessing run (the paper's Section 7 numbers)."""

    n_metacells_total: int
    n_metacells_culled: int
    n_metacells_stored: int
    original_bytes: int
    stored_bytes: int
    index_bytes: int
    n_distinct_endpoints: int
    n_bricks: int
    tree_height: int

    @property
    def space_saving(self) -> float:
        """Fraction of the raw volume size saved by culling, in [0, 1]."""
        if self.original_bytes == 0:
            return 0.0
        return 1.0 - self.stored_bytes / self.original_bytes


@dataclass
class IndexedDataset:
    """A preprocessed dataset ready for isosurface queries.

    Attributes
    ----------
    tree:
        The (possibly processor-local) compact interval tree.
    device:
        Block device holding the brick layout.
    codec:
        Record codec (defines record size and decoding).
    base_offset:
        Byte offset of record position 0 on the device.
    meta:
        Grid metadata for world placement.
    report:
        Preprocessing statistics (shared across striped nodes).
    node_rank, n_cluster_nodes:
        Placement of this layout in a striped cluster (0/1 for serial).
    checksums:
        Per-record/per-brick CRC32 tables (``None`` for legacy layouts
        written without them); queries verify against these.
    replica_stores:
        ``source_rank -> base_offset`` of replica copies of *other*
        nodes' layouts held on this node's device (chained declustering;
        empty without replication).
    source_dir:
        Directory this dataset was loaded from / persisted to (``None``
        for purely in-memory builds).  Multiprocessing backends ship
        this path to workers, which reopen the store with
        :func:`repro.core.persistence.load_dataset` instead of
        unpickling the whole dataset.
    """

    tree: CompactIntervalTree
    device: object
    codec: MetacellCodec
    base_offset: int
    meta: DatasetMeta
    report: PreprocessReport
    node_rank: int = 0
    n_cluster_nodes: int = 1
    checksums: "BrickChecksums | None" = None
    replica_stores: "dict[int, int]" = field(default_factory=dict)
    source_dir: "str | None" = None

    def record_offset(self, position: int) -> int:
        """Byte offset of a record position (the index entry 'pointer')."""
        return self.base_offset + position * self.codec.record_size

    @property
    def n_records(self) -> int:
        return self.tree.n_records


def _make_meta(volume: Volume, partition: MetacellPartition) -> DatasetMeta:
    return DatasetMeta(
        grid_shape=partition.grid_shape,
        metacell_shape=partition.metacell_shape,
        volume_shape=volume.shape,
        spacing=volume.spacing,
        origin=volume.origin,
        name=volume.name,
    )


def _make_report(
    partition: MetacellPartition,
    intervals: IntervalSet,
    tree: CompactIntervalTree,
    codec: MetacellCodec,
) -> PreprocessReport:
    total = partition.n_metacells
    stored = len(intervals)
    return PreprocessReport(
        n_metacells_total=total,
        n_metacells_culled=total - stored,
        n_metacells_stored=stored,
        original_bytes=partition.volume.nbytes,
        stored_bytes=stored * codec.record_size,
        index_bytes=tree.index_size_bytes(),
        n_distinct_endpoints=len(tree.endpoints),
        n_bricks=tree.n_bricks,
        tree_height=tree.height(),
    )


def _write_records(
    device,
    codec: MetacellCodec,
    partition: MetacellPartition,
    ids: np.ndarray,
    vmins: np.ndarray,
) -> "tuple[int, np.ndarray, np.ndarray]":
    """Serialize records (in the given order) to ``device``.

    Returns ``(base_offset, record_crcs, cum_crcs)``: the CRC32 of every
    record — and the cumulative stream CRC table that makes span
    verification one call — is computed from the exact bytes written, so
    the checksum tables are the layout's ground truth from the moment
    they exist.
    """
    n = len(ids)
    base = device.allocate(n * codec.record_size)
    crcs = np.empty(n, dtype=np.uint32)
    cum = np.empty(n + 1, dtype=np.uint32)
    cum[0] = 0
    for s in range(0, n, WRITE_CHUNK_RECORDS):
        e = min(s + WRITE_CHUNK_RECORDS, n)
        values = partition.extract_values(ids[s:e])
        blob = codec.encode(ids[s:e], vmins[s:e], values)
        device.write(base + s * codec.record_size, blob)
        crcs[s:e] = compute_record_crcs(blob, codec.record_size)
        cum[s + 1 : e + 1] = compute_cum_crcs(
            blob, codec.record_size, initial=int(cum[s])
        )[1:]
    return base, crcs, cum


def build_indexed_dataset(
    volume: Volume,
    metacell_shape: tuple[int, int, int] = (9, 9, 9),
    device=None,
    cost_model: IOCostModel | None = None,
    drop_constant: bool = True,
    checksum: bool = True,
) -> IndexedDataset:
    """Preprocess a volume for serial (single-disk) querying.

    ``checksum=True`` (default) records CRC32 integrity tables alongside
    the layout; pass False to reproduce the paper's bare format.
    """
    partition = partition_metacells(volume, metacell_shape)
    intervals = IntervalSet.from_partition(partition, drop_constant=drop_constant)
    tree = CompactIntervalTree.build(intervals)
    codec = MetacellCodec(partition.metacell_shape, volume.dtype)
    if device is None:
        device = SimulatedBlockDevice(cost_model or IOCostModel())
    base, crcs, cum = _write_records(
        device, codec, partition, tree.record_ids, tree.record_vmins
    )
    return IndexedDataset(
        tree=tree,
        device=device,
        codec=codec,
        base_offset=base,
        meta=_make_meta(volume, partition),
        report=_make_report(partition, intervals, tree, codec),
        checksums=(
            BrickChecksums.from_record_crcs(
                crcs, tree.brick_start, tree.brick_count, cum_crcs=cum
            )
            if checksum
            else None
        ),
    )


def build_striped_datasets(
    volume: Volume,
    p: int,
    metacell_shape: tuple[int, int, int] = (9, 9, 9),
    devices=None,
    cost_model: IOCostModel | None = None,
    drop_constant: bool = True,
    stagger: bool = True,
    checksum: bool = True,
    replication: int = 1,
) -> "list[IndexedDataset]":
    """Preprocess a volume striped across the local disks of ``p`` nodes.

    Returns one :class:`IndexedDataset` per node.  All nodes share the
    same preprocessing report and grid metadata; each holds its own
    processor-local tree and device, exactly as in the paper's cluster
    where every node's index points at bricks on its own disk.

    ``replication=r`` additionally writes, on each node ``q``, full
    replica copies of the layouts of nodes ``q-1 .. q-(r-1)`` (mod p) —
    chained declustering — so any ``r-1`` node losses leave every brick
    readable somewhere.  The primary layout is byte-identical to the
    unreplicated one: healthy-path queries, balance, and I/O counts are
    unchanged; replicas occupy a separate device region reachable
    through :attr:`IndexedDataset.replica_stores`.
    """
    if p < 1:
        raise ValueError(f"node count must be >= 1, got {p}")
    if not 1 <= replication <= p:
        raise ValueError(
            f"replication must be in [1, p={p}], got {replication}"
        )
    partition = partition_metacells(volume, metacell_shape)
    intervals = IntervalSet.from_partition(partition, drop_constant=drop_constant)
    tree = CompactIntervalTree.build(intervals)
    codec = MetacellCodec(partition.metacell_shape, volume.dtype)
    report = _make_report(partition, intervals, tree, codec)
    meta = _make_meta(volume, partition)

    if devices is None:
        devices = [SimulatedBlockDevice(cost_model or IOCostModel()) for _ in range(p)]
    if len(devices) != p:
        raise ValueError(f"expected {p} devices, got {len(devices)}")

    layouts: list[StripedNodeLayout] = stripe_brick_records(tree, p, stagger=stagger)
    out = []
    for lay, device in zip(layouts, devices):
        base, crcs, cum = _write_records(
            device, codec, partition, lay.tree.record_ids, lay.tree.record_vmins
        )
        out.append(
            IndexedDataset(
                tree=lay.tree,
                device=device,
                codec=codec,
                base_offset=base,
                meta=meta,
                report=report,
                node_rank=lay.node_rank,
                n_cluster_nodes=p,
                checksums=(
                    BrickChecksums.from_record_crcs(
                        crcs, lay.tree.brick_start, lay.tree.brick_count,
                        cum_crcs=cum,
                    )
                    if checksum
                    else None
                ),
            )
        )

    # Replica pass, after all primaries: node q hosts copies of the full
    # local layouts of the replication-1 nodes preceding it in rank order.
    for i in range(1, replication):
        for q in range(p):
            src = (q - i) % p
            lay = layouts[src]
            rep_base, _, _ = _write_records(
                devices[q], codec, partition, lay.tree.record_ids, lay.tree.record_vmins
            )
            out[q].replica_stores[src] = rep_base
    return out
