"""Isosurface query execution against block devices (paper Section 5).

The planner (:meth:`CompactIntervalTree.plan_query`) decides *what* to
read; this module performs the reads honestly, at block granularity:

* **Case 1 runs** are one long sequential read, streamed in bounded
  chunks (same block count, one seek).
* **Case 2 brick prefixes** are read incrementally: a block-aligned
  chunk at a time, decoding complete records as they arrive and stopping
  at the first record with ``vmin > lam`` — the reader does not know the
  prefix length in advance, exactly like a real out-of-core consumer.

All I/O is metered by the device, so the resulting
:class:`~repro.io.blockdevice.IOStats` *is* the external-memory cost of
the query, which the cost model converts to the paper's "active metacell
retrieval time".

Resilience (see ``docs/robustness.md``): every read goes through the
bounded retry-with-backoff of :mod:`repro.io.faults`, and — when the
dataset carries CRC32 checksums — every decoded record is verified
against the index before it is trusted.  A mismatch triggers a bounded
number of extent re-reads (which repairs transient torn reads) before
escalating to a typed :class:`~repro.io.faults.BrickCorruptionError`.
All retry costs (repeat blocks/seeks, modeled backoff seconds) land in
the same ``IOStats``, so degraded runs report honest modeled times.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.compact_tree import BrickPrefixScan, QueryPlan, SequentialRun
from repro.core.deadline import QueryClock
from repro.io.blockdevice import IOStats
from repro.io.faults import (
    DEFAULT_RETRY_POLICY,
    BrickCorruptionError,
    RetryPolicy,
    read_with_retry,
)
from repro.io.layout import BrickChecksums, MetacellRecords
from repro.obs.tracer import NULL_TRACER

#: Blocks fetched per incremental read step.  Chunks after the first are
#: block-aligned so no block is charged twice within a run.
DEFAULT_READ_AHEAD_BLOCKS = 8

#: Upper bound on a single sequential read call, in blocks.  Case 1 runs
#: longer than this are streamed in consecutive (seek-free) chunks.
MAX_SEQUENTIAL_CHUNK_BLOCKS = 1024


@dataclass(frozen=True)
class QueryOptions:
    """Everything configurable about one query's execution, in one place.

    Replaces the kwarg sprawl of :func:`execute_query` /
    :func:`execute_plan` (``read_ahead_blocks``, ``retry_policy``,
    ``verify_checksums``, ``time_budget``, plus the new observability
    hooks).  Frozen: derive variants with :func:`dataclasses.replace`.

    Parameters
    ----------
    read_ahead_blocks:
        Blocks fetched per incremental Case-2 read step.
    retry_policy:
        Bounded retry-with-backoff for transient faults (None: the
        module default).
    verify_checksums:
        ``None`` verifies exactly when the dataset carries checksum
        tables; ``True`` demands them; ``False`` skips verification.
    time_budget:
        Modeled-seconds budget; an expired query returns a partial
        result flagged ``deadline_expired`` (see :func:`execute_plan`).
        Zero or negative means *already expired* — every run is skipped
        and the result covers nothing; this is what a serving layer's
        budget re-split produces when queue wait or a preemption delay
        eats the whole deadline (see
        :meth:`~repro.core.deadline.Deadline.consume`).
    tracer:
        A :class:`~repro.obs.tracer.Tracer` receiving per-run read
        spans and fault annotations on the modeled clock (None: the
        shared no-op tracer — zero overhead).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` absorbing the
        query's ``IOStats`` and record counts under ``io.*`` /
        ``query.*`` (None: nothing is published).
    track:
        Trace track label for this query's spans (None: inherit the
        tracer's active track — the cluster sets one per node).
    coalesce_gap_blocks:
        Read-coalescing threshold: adjacent plan runs whose extents are
        separated by at most this many blocks are fetched as one large
        device access, with the *meter charged exactly the per-run
        sequence the uncoalesced reads would have issued* — modeled
        block counts, seeks, and deadline cut points are bit-identical;
        only wall-clock time improves.  ``0`` (default) disables
        coalescing.  Requires a device exposing ``peek``/``charge_read``
        (the raw simulated/file devices); fault-injecting, hedging, and
        caching wrappers fall back to plain per-run reads.
    pipeline:
        A :class:`repro.parallel.pipeline.PipelineOptions` selecting the
        stage-overlapped shared-memory executor for the triangulation
        stage.  Not interpreted by the query executor itself — the
        extraction layers (:class:`repro.pipeline.IsosurfacePipeline`,
        cluster nodes, ``extract_parallel_mp``) read it and feed decoded
        batches to MC workers through shared memory.  ``None`` (default)
        triangulates inline.
    cache:
        A :class:`~repro.io.cache.CacheOptions` describing the cache
        configuration this query runs under.  Like ``pipeline``, it is
        not interpreted by the executor itself — the owning layer
        (cluster constructor, serving front-end) attaches block caches
        and builds the result cache, then threads the live handle
        through ``result_cache``.  ``None`` (default) inherits whatever
        the owning layer configured.
    result_cache:
        A live, epoch-fenced
        :class:`~repro.serve.rcache.ResultCacheView` (duck-typed; this
        module never imports it).  When set, plan runs first consult the
        cached decoded record prefixes at their anchors and only the
        uncovered tail is read from the device — results are
        bit-identical to the cold path because cache entries *are* prior
        verified cold reads.  Enabling it disables the coalesced
        fast-read path (the serial path is the one that can serve
        partial extents from memory; both paths are modeled-identical by
        construction, so nothing is lost).  ``None`` (default) runs
        uncached.
    """

    read_ahead_blocks: int = DEFAULT_READ_AHEAD_BLOCKS
    retry_policy: "RetryPolicy | None" = None
    verify_checksums: "bool | None" = None
    time_budget: "float | None" = None
    tracer: "object | None" = None
    metrics: "object | None" = None
    track: "str | None" = None
    coalesce_gap_blocks: int = 0
    pipeline: "object | None" = None
    cache: "object | None" = None
    result_cache: "object | None" = None
    #: Extraction-kernel backend name, resolved through
    #: :mod:`repro.mc.backends` by the triangulating layer (pipeline,
    #: cluster node, serving front-end).  ``"mc-batch"`` is the exact
    #: default; ``"surface-nets"`` trades exact-MC geometry for ~2x
    #: throughput.  Validated against the registry at construction.
    backend: str = "mc-batch"
    #: Metacells per vectorized triangulation pass (``None``: the
    #: kernel's :data:`~repro.mc.marching_cubes.DEFAULT_BATCH_CHUNK`).
    #: Also the serial-chunk unit the shared-memory pipeline cuts jobs
    #: on; the default preserves the 512-chunk bit-identity contract.
    batch_chunk: "int | None" = None

    def __post_init__(self) -> None:
        if self.read_ahead_blocks < 1:
            raise ValueError(
                f"read_ahead_blocks must be >= 1, got {self.read_ahead_blocks}"
            )
        if self.coalesce_gap_blocks < 0:
            raise ValueError(
                f"coalesce_gap_blocks must be >= 0, got {self.coalesce_gap_blocks}"
            )
        if self.time_budget is not None and self.time_budget != self.time_budget:
            raise ValueError("time_budget must not be NaN")
        if self.backend != "mc-batch":
            # Lazy import: repro.core must stay importable without the
            # triangulation package; the default name needs no registry.
            from repro.mc.backends import validate_backend

            validate_backend(self.backend)
        if self.batch_chunk is not None and self.batch_chunk < 1:
            raise ValueError(
                f"batch_chunk must be >= 1, got {self.batch_chunk}"
            )


#: Options used when a caller passes none.
DEFAULT_QUERY_OPTIONS = QueryOptions()

#: Kwargs the pre-:class:`QueryOptions` API accepted; still honoured
#: through the deprecation shim below.
_LEGACY_QUERY_KWARGS = frozenset(
    {"read_ahead_blocks", "retry_policy", "verify_checksums", "time_budget"}
)

#: Kwargs added after the options-object migration; accepted standalone
#: (no deprecation) as sugar for ``options=QueryOptions(...)``, but never
#: mixed with legacy spellings or an explicit options object.
_MODERN_QUERY_KWARGS = frozenset({"backend", "batch_chunk"})

_legacy_warned: "set[str]" = set()


def reset_legacy_warnings() -> None:
    """Re-arm the warn-once gate of the legacy-kwarg shims (tests)."""
    _legacy_warned.clear()


def warn_legacy_kwargs(fn: str, kwargs: dict, replacement: str,
                       stacklevel: int = 4) -> None:
    """Emit the legacy-kwarg :class:`DeprecationWarning` once per
    (function, kwarg set) per process, attributed to the caller.

    Shared by every options-object shim in the repo (``execute_query``,
    ``execute_plan``, ``SimulatedCluster.extract``) so tests re-arm them
    all through one :func:`reset_legacy_warnings`.
    """
    key = f"{fn}:{','.join(sorted(kwargs))}"
    if key in _legacy_warned:
        return
    _legacy_warned.add(key)
    warnings.warn(
        f"{fn}(..., {', '.join(sorted(kwargs))}) is deprecated; "
        f"pass {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _coerce_options(
    options: "QueryOptions | None", kwargs: dict, fn: str
) -> QueryOptions:
    """Resolve the ``options``-vs-legacy-kwargs call forms.

    Legacy keyword calls keep working but emit a
    :class:`DeprecationWarning` once per (function, kwarg set) per
    process, attributed to the caller.
    """
    if options is not None and not isinstance(options, QueryOptions):
        raise TypeError(
            f"{fn}() third argument must be a QueryOptions (got "
            f"{type(options).__name__}); legacy settings go through "
            f"keywords or QueryOptions fields"
        )
    if kwargs:
        unknown = sorted(set(kwargs) - _LEGACY_QUERY_KWARGS - _MODERN_QUERY_KWARGS)
        if unknown:
            raise TypeError(f"{fn}() got unexpected keyword argument(s) {unknown}")
        if options is not None:
            raise TypeError(
                f"{fn}() got both options= and keyword(s) "
                f"{sorted(kwargs)}; pass everything in QueryOptions"
            )
        legacy = sorted(set(kwargs) & _LEGACY_QUERY_KWARGS)
        modern = sorted(set(kwargs) & _MODERN_QUERY_KWARGS)
        if legacy and modern:
            raise TypeError(
                f"{fn}() got keyword(s) {modern} together with legacy "
                f"keyword(s) {legacy}; both spellings cannot be mixed — "
                f"pass everything in QueryOptions"
            )
        if legacy:
            warn_legacy_kwargs(fn, kwargs, "options=QueryOptions(...)", stacklevel=4)
        return QueryOptions(**kwargs)
    return options if options is not None else DEFAULT_QUERY_OPTIONS


@dataclass
class QueryResult:
    """Everything produced by one isosurface query on one node.

    Attributes
    ----------
    lam:
        The isovalue.
    records:
        The active metacell records, in retrieval order.
    plan:
        The I/O plan that was executed.
    io_stats:
        Device accounting for this query only (including any retries,
        checksum failures, and fault-injected delay).
    n_records_read:
        Records decoded from disk (``>= len(records)``: Case-2 bricks may
        read one terminator record past the active prefix, and block
        granularity may pull in trailing bytes).
    deadline_expired:
        True when a ``time_budget`` ran out before the plan finished:
        ``records`` then covers a *prefix* of the plan and the result is
        partial.
    skipped_runs:
        The plan runs that were skipped entirely or cut short by the
        budget (in plan order); their span-space bricks are in
        :attr:`skipped_bricks`.
    n_records_skipped:
        Upper bound on the records the budget left unread (prefix scans
        count their full ``max_count`` since the active prefix length is
        unknown without reading).
    """

    lam: float
    records: MetacellRecords
    plan: QueryPlan
    io_stats: IOStats
    n_records_read: int
    deadline_expired: bool = False
    skipped_runs: "list" = field(default_factory=list)
    n_records_skipped: int = 0

    @property
    def n_active(self) -> int:
        return len(self.records)

    @property
    def skipped_bricks(self) -> "list[int]":
        """Span-space brick ids the budget prevented from being scanned
        (Case-2 prefix scans only; Case-1 runs are reported per run)."""
        return [
            r.brick_id for r in self.skipped_runs if isinstance(r, BrickPrefixScan)
        ]

    def io_time(self, cost_model) -> float:
        """Modeled retrieval time under a disk cost model."""
        return self.io_stats.read_time(cost_model)


def _stream_extent(device, start: int, length: int, chunk_blocks: int,
                   policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                   tracer=NULL_TRACER):
    """Yield buffers covering ``[start, start+length)`` without charging any
    block twice: the first chunk ends on a block boundary, later chunks are
    block-aligned.  Transient read errors are retried per ``policy``."""
    bs = device.cost_model.block_size
    end = start + length
    pos = start
    while pos < end:
        # End of the current chunk: a block boundary at most chunk_blocks away.
        boundary = ((pos // bs) + chunk_blocks) * bs
        stop = min(boundary, end)
        yield read_with_retry(device, pos, stop - pos, policy, tracer)
        pos = stop


def _verify_or_repair(
    dataset: IndexedDataset,
    start_pos: int,
    chunk: memoryview,
    policy: RetryPolicy,
    checks: BrickChecksums,
    tracer=NULL_TRACER,
) -> None:
    """Verify a run of complete records, re-reading corrupted spans.

    ``chunk`` is a *writable* view of the records at layout positions
    ``start_pos ..``; repairs splice the re-read bytes in place instead
    of rebuilding the buffer (the former ``head + repaired + tail``
    concatenation copied the whole chunk per repair attempt).

    The clean case is a single ``zlib.crc32`` over the span when the
    dataset carries a cumulative table (:meth:`BrickChecksums.verify_span`);
    only a failed or unavailable span check pays for per-record CRCs.
    Each checksum mismatch is counted in ``stats.checksum_failures``;
    the corrupted span is then re-read (with retry and backoff) up to
    ``policy.max_read_repairs`` times — which heals transient torn reads
    — before the query gives up with :class:`BrickCorruptionError`.
    """
    rec = dataset.codec.record_size
    device = dataset.device
    if checks.verify_span(start_pos, chunk, rec):
        return
    bad = checks.find_corrupt(start_pos, chunk, rec)
    if not len(bad):
        return
    for attempt in range(policy.max_read_repairs):
        device.stats.checksum_failures += len(bad)
        device.stats.retries += 1
        device.stats.charge_delay(policy.backoff_for(attempt))
        lo, hi = int(bad[0]), int(bad[-1]) + 1
        tracer.instant(
            "checksum.repair", category="fault",
            args={"records": [start_pos + lo, start_pos + hi],
                  "corrupt": len(bad), "attempt": attempt + 1},
        )
        repaired = read_with_retry(
            device, dataset.record_offset(start_pos + lo), (hi - lo) * rec, policy
        )
        chunk[lo * rec : hi * rec] = repaired
        bad = checks.find_corrupt(start_pos, chunk, rec)
        if not len(bad):
            return
    device.stats.checksum_failures += len(bad)
    lo, hi = int(bad[0]), int(bad[-1]) + 1
    raise BrickCorruptionError(
        f"records [{start_pos + lo}, {start_pos + hi}) on node "
        f"{dataset.node_rank} failed CRC32 verification after "
        f"{policy.max_read_repairs} re-read(s): persistent corruption"
    )


def _stream_records(
    dataset: IndexedDataset,
    start_pos: int,
    max_records: int,
    chunk_blocks: int,
    policy: RetryPolicy,
    checks: "BrickChecksums | None",
    tracer=NULL_TRACER,
):
    """Yield verified :class:`MetacellRecords` batches for the records at
    layout positions ``[start_pos, start_pos + max_records)``.

    Buffer management is O(total bytes): arriving chunks extend one
    reusable ``bytearray`` and complete records are decoded through a
    ``memoryview`` straight off it (``np.frombuffer`` in the codec), so
    the only copies are the decoded field arrays themselves.  The former
    implementation re-built the carry buffer with ``pending += buf`` /
    slicing, which is quadratic in the run length.

    Consumers may stop early (Case 2); blocks already fetched stay
    charged, exactly like the former raw byte stream.
    """
    codec = dataset.codec
    rec = codec.record_size
    pending = bytearray()
    pos = start_pos
    for buf in _stream_extent(
        dataset.device, dataset.record_offset(start_pos), max_records * rec,
        chunk_blocks, policy, tracer,
    ):
        pending.extend(buf)
        n_complete = len(pending) // rec
        if not n_complete:
            continue
        nbytes = n_complete * rec
        chunk = memoryview(pending)[:nbytes]
        try:
            if checks is not None:
                _verify_or_repair(dataset, pos, chunk, policy, checks, tracer)
            batch = codec.decode(chunk)
        finally:
            # Release the export before the bytearray is resized below
            # (a live view would make `del pending[:nbytes]` raise
            # BufferError).  The decoded batch owns copies.
            chunk.release()
        yield batch
        del pending[:nbytes]
        pos += n_complete
    if pending:
        raise IOError(
            f"record run at position {start_pos} ended mid-record "
            f"({len(pending)} trailing bytes): layout corrupted"
        )


def execute_query(
    dataset: IndexedDataset,
    lam: float,
    options: "QueryOptions | None" = None,
    **legacy_kwargs,
) -> QueryResult:
    """Run the full out-of-core query for isovalue ``lam`` on one node.

    Configuration goes through ``options``
    (:class:`QueryOptions`); the pre-1.1 keyword arguments
    (``read_ahead_blocks``, ``retry_policy``, ``verify_checksums``,
    ``time_budget``) still work via a deprecation shim that warns once.
    """
    opts = _coerce_options(options, legacy_kwargs, "execute_query")
    tracer = opts.tracer or NULL_TRACER
    with tracer.span(
        "query.plan", track=opts.track, category="plan",
        args={"lam": float(lam)},
    ) as sp:
        plan = dataset.tree.plan_query(lam)
        sp.merge_args(
            runs=len(plan.runs),
            bricks_skipped=plan.bricks_skipped,
        )
    return execute_plan(dataset, plan, opts)


def execute_plan(
    dataset: IndexedDataset,
    plan: QueryPlan,
    options: "QueryOptions | None" = None,
    **legacy_kwargs,
) -> QueryResult:
    """Execute an already-computed I/O plan against the dataset's device.

    Separated from :func:`execute_query` so alternative planners — e.g.
    the external blocked index of
    :mod:`repro.core.external_tree` — can reuse the exact same record
    retrieval machinery and accounting.

    ``options`` is a :class:`QueryOptions`; legacy keyword calls go
    through the same deprecation shim as :func:`execute_query`.

    ``options.verify_checksums=None`` (default) verifies exactly when
    the dataset carries checksum tables; ``True`` demands them (raising
    if absent); ``False`` skips verification.

    ``options.time_budget`` bounds the query in *modeled* seconds (the
    device meter's clock, which includes injected latency, retry
    backoff, and hedge waits).  When the budget runs out the remaining
    runs are skipped and the result comes back partial with
    ``deadline_expired=True`` — already-read records are kept, blocks
    already fetched stay charged, and no exception is raised.
    """
    opts = _coerce_options(options, legacy_kwargs, "execute_plan")
    policy = opts.retry_policy or DEFAULT_RETRY_POLICY
    tracer = opts.tracer or NULL_TRACER
    read_ahead_blocks = opts.read_ahead_blocks
    verify_checksums = opts.verify_checksums
    # getattr: duck-typed datasets (e.g. the unstructured pipeline) may
    # predate checksum tables entirely.
    checksums = getattr(dataset, "checksums", None)
    if verify_checksums and checksums is None:
        raise ValueError(
            "verify_checksums=True but the dataset has no checksum tables "
            "(built with checksum=False or loaded from a format-1 store)"
        )
    checks = checksums if verify_checksums in (None, True) else None
    codec = dataset.codec
    device = dataset.device
    lam = plan.lam

    stats_before = device.stats.copy()
    clock = QueryClock(device, opts.time_budget)
    runner = _PlanRunner(
        dataset, float(lam), read_ahead_blocks, policy, checks, clock, tracer,
        opts.track, rcache=opts.result_cache,
    )
    # The coalescer needs the raw-device escape hatch; wrapped devices
    # (faults, hedging, caching) define their behavior per read call and
    # deliberately do not expose it — they take the plain per-run path.
    # A live result cache also forces the serial path: it serves covered
    # prefixes from memory, which the whole-extent peek cannot express
    # (the two paths are modeled-identical, so only wall time is traded).
    use_fast = (
        opts.coalesce_gap_blocks > 0
        and opts.result_cache is None
        and hasattr(device, "peek")
        and hasattr(device, "charge_read")
    )
    groups = (
        _coalesce_runs(plan.runs, dataset, opts.coalesce_gap_blocks)
        if use_fast
        else [[r] for r in plan.runs]
    )

    qspan = tracer.span(
        "query.execute", track=opts.track, category="query",
        args={"lam": float(lam), "runs": len(plan.runs),
              "coalesced_groups": sum(1 for g in groups if len(g) > 1)},
    )
    runner.qspan = qspan
    try:
        for group in groups:
            if len(group) > 1 and runner.run_group_fast(group):
                continue
            for run in group:
                if clock.expired():
                    runner.skip(run)
                    continue
                runner.run_serial(run)
    finally:
        qspan.close()

    io_stats = device.stats.copy() - stats_before

    records = (
        MetacellRecords.concat(runner.batches)
        if runner.batches
        else MetacellRecords.empty(codec)
    )
    result = QueryResult(
        lam=float(lam),
        records=records,
        plan=plan,
        io_stats=io_stats,
        n_records_read=runner.n_read,
        deadline_expired=bool(runner.skipped_runs),
        skipped_runs=runner.skipped_runs,
        n_records_skipped=runner.n_skipped,
    )
    if opts.metrics is not None:
        _publish_query_metrics(opts.metrics, result, device)
    return result


def _run_byte_extent(dataset: IndexedDataset, run) -> "tuple[int, int]":
    """Device byte range ``[start, end)`` a plan run may touch (a prefix
    scan is bounded by its ``max_count`` even though it usually stops
    early)."""
    rec = dataset.codec.record_size
    start = dataset.record_offset(run.start)
    count = run.count if isinstance(run, SequentialRun) else run.max_count
    return start, start + count * rec


def _coalesce_runs(runs, dataset: IndexedDataset, gap_blocks: int) -> "list[list]":
    """Group plan runs whose extents are within ``gap_blocks`` blocks of
    each other (in plan order) for single-access fetching.

    Only the *data movement* is merged — the meter is charged per run by
    the replay in :meth:`_PlanRunner.run_group_fast`, so grouping never
    changes modeled cost.
    """
    max_gap = gap_blocks * dataset.device.cost_model.block_size
    groups: "list[list]" = []
    cur: "list" = []
    cur_end = 0
    for run in runs:
        s, e = _run_byte_extent(dataset, run)
        if cur and 0 <= s - cur_end <= max_gap:
            cur.append(run)
            cur_end = max(cur_end, e)
        else:
            if cur:
                groups.append(cur)
            cur = [run]
            cur_end = e
    if cur:
        groups.append(cur)
    return groups


class _PlanRunner:
    """Mutable execution state for one :func:`execute_plan` call.

    Owns the decoded batches and skip accounting, and implements the two
    read strategies over them:

    * :meth:`run_serial` — the per-run incremental path (one metered
      device read per chunk), used for singleton groups and whenever the
      fast path bows out;
    * :meth:`run_group_fast` — one unmetered ``peek`` of a coalesced
      extent followed by an *exact replay* of the serial charge
      sequence (same chunk boundaries, same early-stop decisions, same
      deadline checks against the same modeled clock), so ``IOStats``
      and deadline cut points are bit-identical to the serial path by
      construction.
    """

    def __init__(self, dataset, lam, read_ahead_blocks, policy, checks, clock,
                 tracer, track, rcache=None) -> None:
        self.dataset = dataset
        self.lam = lam
        self.read_ahead_blocks = read_ahead_blocks
        self.policy = policy
        self.checks = checks
        self.clock = clock
        self.tracer = tracer
        self.track = track
        #: Epoch-fenced ResultCacheView (duck-typed) or None.  Decoded
        #: record prefixes are only *stored* when checksum verification
        #: ran (``checks``), so cache contents are always verified bytes.
        self.rcache = rcache
        self.qspan = None
        self.batches: "list[MetacellRecords]" = []
        self.n_read = 0
        self.skipped_runs: "list" = []
        self.n_skipped = 0

    def skip(self, run) -> None:
        self.skipped_runs.append(run)
        n = run.count if isinstance(run, SequentialRun) else run.max_count
        self.n_skipped += n
        self.qspan.annotate(
            "query.run_skipped",
            {"records": n, "reason": "time budget expired"},
        )

    # -- serial path -------------------------------------------------------

    def run_serial(self, run) -> None:
        if isinstance(run, SequentialRun):
            self._serial_sequential(run)
        elif isinstance(run, BrickPrefixScan):
            self._serial_prefix_scan(run)
        else:  # pragma: no cover - future run types
            raise TypeError(f"unknown run type {type(run).__name__}")

    def _cached_prefix(self, anchor: int) -> "MetacellRecords | None":
        """Cached decoded records at a plan anchor (None without a cache
        hit).  Anchors are shared between Case-1 runs and Case-2 brick
        starts that begin at the same position, so either run kind can
        extend — and be served by — the other's entries."""
        if self.rcache is None:
            return None
        return self.rcache.record_prefix(self.dataset.node_rank, anchor)

    def _store_prefix(self, anchor: int, cached, new_batches) -> None:
        """Extend the cache entry at ``anchor`` with freshly decoded
        batches.  Only verified streams populate (the stream raised on
        persistent corruption before we got here; unchecksummed reads
        are never admitted)."""
        if self.rcache is None or self.checks is None or not new_batches:
            return
        parts = ([cached] if cached is not None and len(cached) else []) + new_batches
        self.rcache.store_record_prefix(
            self.dataset.node_rank, anchor, MetacellRecords.concat(parts)
        )

    def _serial_sequential(self, run) -> None:
        dataset, tracer, clock = self.dataset, self.tracer, self.clock
        cached = self._cached_prefix(run.start)
        k = min(len(cached), run.count) if cached is not None else 0
        got = 0
        new_batches: "list[MetacellRecords]" = []
        with tracer.io_span(
            "read.sequential_run", dataset.device, track=self.track,
            args={"start": run.start, "count": run.count, "cached": k},
        ):
            if k:
                head = cached if k == len(cached) else MetacellRecords(
                    ids=cached.ids[:k], vmins=cached.vmins[:k],
                    values=cached.values[:k],
                )
                self.batches.append(head)
                self.n_read += k
                got = k
            if got < run.count and not clock.expired():
                for batch in _stream_records(
                    dataset, run.start + got, run.count - got,
                    MAX_SEQUENTIAL_CHUNK_BLOCKS, self.policy, self.checks,
                    tracer,
                ):
                    self.batches.append(batch)
                    new_batches.append(batch)
                    self.n_read += len(batch)
                    got += len(batch)
                    if clock.expired():
                        break
        self._store_prefix(run.start, cached, new_batches)
        if got < run.count:
            self.skipped_runs.append(run)
            self.n_skipped += run.count - got
            self.qspan.annotate(
                "query.run_cut",
                {"records_left": run.count - got,
                 "reason": "time budget expired"},
            )

    def _serial_prefix_scan(self, run) -> None:
        dataset, tracer, clock = self.dataset, self.tracer, self.clock
        cached = self._cached_prefix(run.start)
        # Clamp to the brick: a Case-1 entry at the same anchor may span
        # brick boundaries, past which vmins are no longer sorted.
        m = min(len(cached), run.max_count) if cached is not None else 0
        with tracer.io_span(
            "read.brick_prefix", dataset.device, track=self.track,
            args={"brick": run.brick_id, "max_count": run.max_count,
                  "cached": m},
        ):
            if m:
                # Records within a brick are vmin-sorted, so the active
                # prefix ends where vmin first exceeds lam.
                k = int(np.searchsorted(
                    cached.vmins[:m].astype(np.float64), self.lam,
                    side="right",
                ))
                if k < m or m == run.max_count:
                    # Terminator (or brick end) inside the cache: the
                    # whole scan is answered without touching the device.
                    if k:
                        self.batches.append(MetacellRecords(
                            ids=cached.ids[:k], vmins=cached.vmins[:k],
                            values=cached.values[:k],
                        ))
                    self.n_read += k
                    return
                # Everything cached is active and the brick continues:
                # serve the cached prefix and scan on from there.
                self.batches.append(
                    cached if m == len(cached) else MetacellRecords(
                        ids=cached.ids[:m], vmins=cached.vmins[:m],
                        values=cached.values[:m],
                    )
                )
                self.n_read += m
            batch, full, decoded, aborted = _scan_brick_prefix(
                dataset, run, self.lam, self.read_ahead_blocks,
                self.policy, self.checks, clock, tracer, skip=m,
            )
        self.n_read += decoded
        if batch is not None and len(batch):
            self.batches.append(batch)
        self._store_prefix(run.start, cached if m else None, full)
        if aborted:
            self.skipped_runs.append(run)
            self.n_skipped += run.max_count - m - decoded
            self.qspan.annotate(
                "query.brick_cut",
                {"brick": run.brick_id,
                 "records_left": run.max_count - m - decoded,
                 "reason": "time budget expired"},
            )

    # -- coalesced fast path -----------------------------------------------

    def run_group_fast(self, group) -> bool:
        """Fetch a whole group in one access and replay per-run charges.

        Returns False (having charged *nothing*) when the group cannot
        be served bit-identically — no cumulative checksum table to
        pre-verify against, or a span that fails verification and needs
        the serial path's repair accounting.  The caller then executes
        the group serially.
        """
        dataset = self.dataset
        device = dataset.device
        rec = dataset.codec.record_size
        g_start = _run_byte_extent(dataset, group[0])[0]
        g_end = max(_run_byte_extent(dataset, r)[1] for r in group)
        view = device.peek(g_start, g_end - g_start)
        try:
            if self.checks is not None:
                for run in group:
                    s, e = _run_byte_extent(dataset, run)
                    ok = self.checks.verify_span(
                        run.start, view[s - g_start : e - g_start], rec
                    )
                    if not ok:  # False (corrupt) or None (no cum table)
                        return False
            self.tracer.instant(
                "read.coalesced", category="io",
                args={"runs": len(group), "bytes": g_end - g_start},
            )
            for run in group:
                if self.clock.expired():
                    self.skip(run)
                    continue
                if isinstance(run, SequentialRun):
                    self._fast_sequential(run, view, g_start)
                elif isinstance(run, BrickPrefixScan):
                    self._fast_prefix_scan(run, view, g_start)
                else:  # pragma: no cover - future run types
                    raise TypeError(f"unknown run type {type(run).__name__}")
            return True
        finally:
            view.release()

    def _charge_chunks(self, start: int, length: int, chunk_blocks: int,
                       stop_after):
        """Replay the serial chunk-charge sequence for one extent.

        ``stop_after(n_decoded)`` is consulted exactly where the serial
        consumer loop would run (after each chunk that completes at
        least one record, except the final one); returning True stops
        before the next chunk is charged.  Returns total records whose
        bytes were charged.
        """
        device = self.dataset.device
        bs = device.cost_model.block_size
        rec = self.dataset.codec.record_size
        end = start + length
        pos = start
        charged = 0
        decoded = 0
        while pos < end:
            boundary = ((pos // bs) + chunk_blocks) * bs
            stop = min(boundary, end)
            device.charge_read(pos, stop - pos)
            charged += stop - pos
            pos = stop
            n_new = charged // rec - decoded
            if not n_new:
                continue
            decoded += n_new
            if pos < end and stop_after(decoded):
                break
        return decoded

    def _fast_sequential(self, run, view, g_base) -> None:
        dataset = self.dataset
        rec = dataset.codec.record_size
        start = dataset.record_offset(run.start)
        with self.tracer.io_span(
            "read.sequential_run", dataset.device, track=self.track,
            args={"start": run.start, "count": run.count, "coalesced": True},
        ):
            decoded = self._charge_chunks(
                start, run.count * rec, MAX_SEQUENTIAL_CHUNK_BLOCKS,
                lambda _n: self.clock.expired(),
            )
        if decoded:
            off = start - g_base
            self.batches.append(
                dataset.codec.decode(view[off : off + decoded * rec])
            )
            self.n_read += decoded
        if decoded < run.count:
            self.skipped_runs.append(run)
            self.n_skipped += run.count - decoded
            self.qspan.annotate(
                "query.run_cut",
                {"records_left": run.count - decoded,
                 "reason": "time budget expired"},
            )

    def _fast_prefix_scan(self, run, view, g_base) -> None:
        dataset = self.dataset
        rec = dataset.codec.record_size
        start = dataset.record_offset(run.start)
        off = start - g_base
        length = run.max_count * rec
        vmins = dataset.codec.decode_vmins(view[off : off + length])
        state = {"stop_at": None, "aborted": False, "seen": 0}

        def stop_after(decoded: int) -> bool:
            # Mirror of _scan_brick_prefix: first look for the
            # terminator record in the newly decoded span, then (only if
            # the brick might continue) consult the clock.
            over = np.flatnonzero(
                vmins[state["seen"] : decoded].astype(np.float64) > self.lam
            )
            if len(over):
                state["stop_at"] = state["seen"] + int(over[0])
                state["seen"] = decoded
                return True
            state["seen"] = decoded
            if decoded < run.max_count and self.clock.expired():
                state["aborted"] = True
                return True
            return False

        with self.tracer.io_span(
            "read.brick_prefix", dataset.device, track=self.track,
            args={"brick": run.brick_id, "max_count": run.max_count,
                  "coalesced": True},
        ):
            decoded = self._charge_chunks(
                start, length, self.read_ahead_blocks, stop_after
            )
        # The final chunk never consults stop_after; scan it for the
        # terminator the way the serial consumer does.
        if state["stop_at"] is None and state["seen"] < decoded:
            over = np.flatnonzero(
                vmins[state["seen"] : decoded].astype(np.float64) > self.lam
            )
            if len(over):
                state["stop_at"] = state["seen"] + int(over[0])
        n_active = state["stop_at"] if state["stop_at"] is not None else decoded
        self.n_read += decoded
        if n_active:
            self.batches.append(
                dataset.codec.decode(view[off : off + n_active * rec])
            )
        if state["aborted"]:
            self.skipped_runs.append(run)
            self.n_skipped += run.max_count - decoded
            self.qspan.annotate(
                "query.brick_cut",
                {"brick": run.brick_id,
                 "records_left": run.max_count - decoded,
                 "reason": "time budget expired"},
            )


def _publish_query_metrics(registry, result: QueryResult, device) -> None:
    """Fold one query's accounting into the unified metrics namespace."""
    registry.absorb_io_stats(result.io_stats)
    registry.inc("query.count")
    registry.inc("query.records_read", result.n_records_read)
    registry.inc("query.active_metacells", result.n_active)
    registry.inc("query.records_skipped", result.n_records_skipped)
    registry.inc("query.runs_skipped", len(result.skipped_runs))
    if result.deadline_expired:
        registry.inc("query.deadline_expired")
    registry.observe(
        "query.io_seconds", result.io_stats.read_time(device.cost_model)
    )


def _scan_brick_prefix(
    dataset: IndexedDataset,
    run: BrickPrefixScan,
    lam: float,
    read_ahead_blocks: int,
    policy: RetryPolicy,
    checks: "BrickChecksums | None",
    clock: "QueryClock | None" = None,
    tracer=NULL_TRACER,
    skip: int = 0,
):
    """Incrementally read one brick until ``vmin > lam``, brick end, or
    the time budget expires.

    ``skip`` starts the scan that many records into the brick — the
    result-cache path, which already holds a verified (all-active)
    prefix of that length, resumes from there instead of re-reading.

    Returns ``(active_records_or_None, decoded_batches, n_records_decoded,
    aborted)``.  ``decoded_batches`` is every verified batch the stream
    produced *including* records past the active cut (the terminator
    record and its batch-mates) — valid bytes a result cache may keep
    for higher isovalues.  ``aborted`` is True when the clock cut the
    scan before the active prefix was fully determined (the decoded
    records are still valid actives — the tail of the prefix is what
    was lost).
    """
    decoded = 0
    actives: list[MetacellRecords] = []
    full: list[MetacellRecords] = []
    aborted = False
    for batch in _stream_records(
        dataset, run.start + skip, run.max_count - skip, read_ahead_blocks,
        policy, checks, tracer,
    ):
        decoded += len(batch)
        full.append(batch)
        over = np.flatnonzero(batch.vmins.astype(np.float64) > lam)
        if len(over):
            cut = int(over[0])
            if cut:
                actives.append(
                    MetacellRecords(
                        ids=batch.ids[:cut],
                        vmins=batch.vmins[:cut],
                        values=batch.values[:cut],
                    )
                )
            break
        actives.append(batch)
        if skip + decoded < run.max_count and clock is not None and clock.expired():
            aborted = True
            break
    if not actives:
        return None, full, decoded, aborted
    return MetacellRecords.concat(actives), full, decoded, aborted
