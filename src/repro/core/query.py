"""Isosurface query execution against block devices (paper Section 5).

The planner (:meth:`CompactIntervalTree.plan_query`) decides *what* to
read; this module performs the reads honestly, at block granularity:

* **Case 1 runs** are one long sequential read, streamed in bounded
  chunks (same block count, one seek).
* **Case 2 brick prefixes** are read incrementally: a block-aligned
  chunk at a time, decoding complete records as they arrive and stopping
  at the first record with ``vmin > lam`` — the reader does not know the
  prefix length in advance, exactly like a real out-of-core consumer.

All I/O is metered by the device, so the resulting
:class:`~repro.io.blockdevice.IOStats` *is* the external-memory cost of
the query, which the cost model converts to the paper's "active metacell
retrieval time".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.compact_tree import BrickPrefixScan, QueryPlan, SequentialRun
from repro.io.blockdevice import IOStats
from repro.io.layout import MetacellRecords

#: Blocks fetched per incremental read step.  Chunks after the first are
#: block-aligned so no block is charged twice within a run.
DEFAULT_READ_AHEAD_BLOCKS = 8

#: Upper bound on a single sequential read call, in blocks.  Case 1 runs
#: longer than this are streamed in consecutive (seek-free) chunks.
MAX_SEQUENTIAL_CHUNK_BLOCKS = 1024


@dataclass
class QueryResult:
    """Everything produced by one isosurface query on one node.

    Attributes
    ----------
    lam:
        The isovalue.
    records:
        The active metacell records, in retrieval order.
    plan:
        The I/O plan that was executed.
    io_stats:
        Device accounting for this query only.
    n_records_read:
        Records decoded from disk (``>= len(records)``: Case-2 bricks may
        read one terminator record past the active prefix, and block
        granularity may pull in trailing bytes).
    """

    lam: float
    records: MetacellRecords
    plan: QueryPlan
    io_stats: IOStats
    n_records_read: int

    @property
    def n_active(self) -> int:
        return len(self.records)

    def io_time(self, cost_model) -> float:
        """Modeled retrieval time under a disk cost model."""
        return self.io_stats.read_time(cost_model)


def _stream_extent(device, start: int, length: int, chunk_blocks: int):
    """Yield buffers covering ``[start, start+length)`` without charging any
    block twice: the first chunk ends on a block boundary, later chunks are
    block-aligned."""
    bs = device.cost_model.block_size
    end = start + length
    pos = start
    while pos < end:
        # End of the current chunk: a block boundary at most chunk_blocks away.
        boundary = ((pos // bs) + chunk_blocks) * bs
        stop = min(boundary, end)
        yield device.read(pos, stop - pos)
        pos = stop


def execute_query(
    dataset: IndexedDataset,
    lam: float,
    read_ahead_blocks: int = DEFAULT_READ_AHEAD_BLOCKS,
) -> QueryResult:
    """Run the full out-of-core query for isovalue ``lam`` on one node."""
    plan = dataset.tree.plan_query(lam)
    return execute_plan(dataset, plan, read_ahead_blocks=read_ahead_blocks)


def execute_plan(
    dataset: IndexedDataset,
    plan: QueryPlan,
    read_ahead_blocks: int = DEFAULT_READ_AHEAD_BLOCKS,
) -> QueryResult:
    """Execute an already-computed I/O plan against the dataset's device.

    Separated from :func:`execute_query` so alternative planners — e.g.
    the external blocked index of
    :mod:`repro.core.external_tree` — can reuse the exact same record
    retrieval machinery and accounting.
    """
    if read_ahead_blocks < 1:
        raise ValueError(f"read_ahead_blocks must be >= 1, got {read_ahead_blocks}")
    codec = dataset.codec
    rec_size = codec.record_size
    device = dataset.device
    lam = plan.lam

    stats_before = device.stats.copy()
    batches: list[MetacellRecords] = []
    n_read = 0

    for run in plan.runs:
        if isinstance(run, SequentialRun):
            start_byte = dataset.record_offset(run.start)
            length = run.count * rec_size
            pending = b""
            for buf in _stream_extent(device, start_byte, length, MAX_SEQUENTIAL_CHUNK_BLOCKS):
                pending += buf
                n_complete = codec.decode_count(pending)
                if n_complete:
                    batches.append(codec.decode(pending[: n_complete * rec_size]))
                    n_read += n_complete
                    pending = pending[n_complete * rec_size :]
            if pending:
                raise IOError(
                    f"sequential run at record {run.start} ended mid-record "
                    f"({len(pending)} trailing bytes): layout corrupted"
                )
        elif isinstance(run, BrickPrefixScan):
            batch, decoded = _scan_brick_prefix(
                dataset, run, lam, read_ahead_blocks
            )
            n_read += decoded
            if batch is not None and len(batch):
                batches.append(batch)
        else:  # pragma: no cover - future run types
            raise TypeError(f"unknown run type {type(run).__name__}")

    io_stats = device.stats.copy() - stats_before

    records = (
        MetacellRecords.concat(batches) if batches else MetacellRecords.empty(codec)
    )
    return QueryResult(
        lam=float(lam),
        records=records,
        plan=plan,
        io_stats=io_stats,
        n_records_read=n_read,
    )


def _scan_brick_prefix(
    dataset: IndexedDataset,
    run: BrickPrefixScan,
    lam: float,
    read_ahead_blocks: int,
):
    """Incrementally read one brick until ``vmin > lam`` or brick end.

    Returns ``(active_records_or_None, n_records_decoded)``.
    """
    codec = dataset.codec
    rec_size = codec.record_size
    device = dataset.device
    start_byte = dataset.record_offset(run.start)
    max_bytes = run.max_count * rec_size

    pending = b""
    decoded = 0
    actives: list[MetacellRecords] = []
    for buf in _stream_extent(device, start_byte, max_bytes, read_ahead_blocks):
        pending += buf
        n_complete = codec.decode_count(pending)
        if not n_complete:
            continue
        batch = codec.decode(pending[: n_complete * rec_size])
        pending = pending[n_complete * rec_size :]
        decoded += n_complete
        over = np.flatnonzero(batch.vmins.astype(np.float64) > lam)
        if len(over):
            cut = int(over[0])
            if cut:
                actives.append(
                    MetacellRecords(
                        ids=batch.ids[:cut],
                        vmins=batch.vmins[:cut],
                        values=batch.values[:cut],
                    )
                )
            break
        actives.append(batch)
    else:
        if pending:
            raise IOError(
                f"brick at record {run.start} ended mid-record "
                f"({len(pending)} trailing bytes): layout corrupted"
            )
    if not actives:
        return None, decoded
    return MetacellRecords.concat(actives), decoded
