"""Isosurface query execution against block devices (paper Section 5).

The planner (:meth:`CompactIntervalTree.plan_query`) decides *what* to
read; this module performs the reads honestly, at block granularity:

* **Case 1 runs** are one long sequential read, streamed in bounded
  chunks (same block count, one seek).
* **Case 2 brick prefixes** are read incrementally: a block-aligned
  chunk at a time, decoding complete records as they arrive and stopping
  at the first record with ``vmin > lam`` — the reader does not know the
  prefix length in advance, exactly like a real out-of-core consumer.

All I/O is metered by the device, so the resulting
:class:`~repro.io.blockdevice.IOStats` *is* the external-memory cost of
the query, which the cost model converts to the paper's "active metacell
retrieval time".

Resilience (see ``docs/robustness.md``): every read goes through the
bounded retry-with-backoff of :mod:`repro.io.faults`, and — when the
dataset carries CRC32 checksums — every decoded record is verified
against the index before it is trusted.  A mismatch triggers a bounded
number of extent re-reads (which repairs transient torn reads) before
escalating to a typed :class:`~repro.io.faults.BrickCorruptionError`.
All retry costs (repeat blocks/seeks, modeled backoff seconds) land in
the same ``IOStats``, so degraded runs report honest modeled times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.compact_tree import BrickPrefixScan, QueryPlan, SequentialRun
from repro.core.deadline import QueryClock
from repro.io.blockdevice import IOStats
from repro.io.faults import (
    DEFAULT_RETRY_POLICY,
    BrickCorruptionError,
    RetryPolicy,
    read_with_retry,
)
from repro.io.layout import BrickChecksums, MetacellRecords

#: Blocks fetched per incremental read step.  Chunks after the first are
#: block-aligned so no block is charged twice within a run.
DEFAULT_READ_AHEAD_BLOCKS = 8

#: Upper bound on a single sequential read call, in blocks.  Case 1 runs
#: longer than this are streamed in consecutive (seek-free) chunks.
MAX_SEQUENTIAL_CHUNK_BLOCKS = 1024


@dataclass
class QueryResult:
    """Everything produced by one isosurface query on one node.

    Attributes
    ----------
    lam:
        The isovalue.
    records:
        The active metacell records, in retrieval order.
    plan:
        The I/O plan that was executed.
    io_stats:
        Device accounting for this query only (including any retries,
        checksum failures, and fault-injected delay).
    n_records_read:
        Records decoded from disk (``>= len(records)``: Case-2 bricks may
        read one terminator record past the active prefix, and block
        granularity may pull in trailing bytes).
    deadline_expired:
        True when a ``time_budget`` ran out before the plan finished:
        ``records`` then covers a *prefix* of the plan and the result is
        partial.
    skipped_runs:
        The plan runs that were skipped entirely or cut short by the
        budget (in plan order); their span-space bricks are in
        :attr:`skipped_bricks`.
    n_records_skipped:
        Upper bound on the records the budget left unread (prefix scans
        count their full ``max_count`` since the active prefix length is
        unknown without reading).
    """

    lam: float
    records: MetacellRecords
    plan: QueryPlan
    io_stats: IOStats
    n_records_read: int
    deadline_expired: bool = False
    skipped_runs: "list" = field(default_factory=list)
    n_records_skipped: int = 0

    @property
    def n_active(self) -> int:
        return len(self.records)

    @property
    def skipped_bricks(self) -> "list[int]":
        """Span-space brick ids the budget prevented from being scanned
        (Case-2 prefix scans only; Case-1 runs are reported per run)."""
        return [
            r.brick_id for r in self.skipped_runs if isinstance(r, BrickPrefixScan)
        ]

    def io_time(self, cost_model) -> float:
        """Modeled retrieval time under a disk cost model."""
        return self.io_stats.read_time(cost_model)


def _stream_extent(device, start: int, length: int, chunk_blocks: int,
                   policy: RetryPolicy = DEFAULT_RETRY_POLICY):
    """Yield buffers covering ``[start, start+length)`` without charging any
    block twice: the first chunk ends on a block boundary, later chunks are
    block-aligned.  Transient read errors are retried per ``policy``."""
    bs = device.cost_model.block_size
    end = start + length
    pos = start
    while pos < end:
        # End of the current chunk: a block boundary at most chunk_blocks away.
        boundary = ((pos // bs) + chunk_blocks) * bs
        stop = min(boundary, end)
        yield read_with_retry(device, pos, stop - pos, policy)
        pos = stop


def _verify_or_repair(
    dataset: IndexedDataset,
    start_pos: int,
    chunk: bytes,
    policy: RetryPolicy,
    checks: BrickChecksums,
) -> bytes:
    """Verify a run of complete records, re-reading corrupted spans.

    ``chunk`` holds the records at layout positions ``start_pos ..``.
    Each checksum mismatch is counted in ``stats.checksum_failures``;
    the corrupted span is then re-read (with retry and backoff) up to
    ``policy.max_read_repairs`` times — which heals transient torn reads
    — before the query gives up with :class:`BrickCorruptionError`.
    """
    rec = dataset.codec.record_size
    device = dataset.device
    bad = checks.find_corrupt(start_pos, chunk, rec)
    if not len(bad):
        return chunk
    for attempt in range(policy.max_read_repairs):
        device.stats.checksum_failures += len(bad)
        device.stats.retries += 1
        device.stats.charge_delay(policy.backoff_for(attempt))
        lo, hi = int(bad[0]), int(bad[-1]) + 1
        repaired = read_with_retry(
            device, dataset.record_offset(start_pos + lo), (hi - lo) * rec, policy
        )
        chunk = chunk[: lo * rec] + repaired + chunk[hi * rec :]
        bad = checks.find_corrupt(start_pos, chunk, rec)
        if not len(bad):
            return chunk
    device.stats.checksum_failures += len(bad)
    lo, hi = int(bad[0]), int(bad[-1]) + 1
    raise BrickCorruptionError(
        f"records [{start_pos + lo}, {start_pos + hi}) on node "
        f"{dataset.node_rank} failed CRC32 verification after "
        f"{policy.max_read_repairs} re-read(s): persistent corruption"
    )


def _stream_records(
    dataset: IndexedDataset,
    start_pos: int,
    max_records: int,
    chunk_blocks: int,
    policy: RetryPolicy,
    checks: "BrickChecksums | None",
):
    """Yield verified :class:`MetacellRecords` batches for the records at
    layout positions ``[start_pos, start_pos + max_records)``.

    Consumers may stop early (Case 2); blocks already fetched stay
    charged, exactly like the former raw byte stream.
    """
    codec = dataset.codec
    rec = codec.record_size
    pending = b""
    pos = start_pos
    for buf in _stream_extent(
        dataset.device, dataset.record_offset(start_pos), max_records * rec,
        chunk_blocks, policy,
    ):
        pending += buf
        n_complete = len(pending) // rec
        if not n_complete:
            continue
        chunk = pending[: n_complete * rec]
        pending = pending[n_complete * rec :]
        if checks is not None:
            chunk = _verify_or_repair(dataset, pos, chunk, policy, checks)
        yield codec.decode(chunk)
        pos += n_complete
    if pending:
        raise IOError(
            f"record run at position {start_pos} ended mid-record "
            f"({len(pending)} trailing bytes): layout corrupted"
        )


def execute_query(
    dataset: IndexedDataset,
    lam: float,
    read_ahead_blocks: int = DEFAULT_READ_AHEAD_BLOCKS,
    retry_policy: RetryPolicy | None = None,
    verify_checksums: "bool | None" = None,
    time_budget: "float | None" = None,
) -> QueryResult:
    """Run the full out-of-core query for isovalue ``lam`` on one node."""
    plan = dataset.tree.plan_query(lam)
    return execute_plan(
        dataset,
        plan,
        read_ahead_blocks=read_ahead_blocks,
        retry_policy=retry_policy,
        verify_checksums=verify_checksums,
        time_budget=time_budget,
    )


def execute_plan(
    dataset: IndexedDataset,
    plan: QueryPlan,
    read_ahead_blocks: int = DEFAULT_READ_AHEAD_BLOCKS,
    retry_policy: RetryPolicy | None = None,
    verify_checksums: "bool | None" = None,
    time_budget: "float | None" = None,
) -> QueryResult:
    """Execute an already-computed I/O plan against the dataset's device.

    Separated from :func:`execute_query` so alternative planners — e.g.
    the external blocked index of
    :mod:`repro.core.external_tree` — can reuse the exact same record
    retrieval machinery and accounting.

    ``verify_checksums=None`` (default) verifies exactly when the
    dataset carries checksum tables; ``True`` demands them (raising if
    absent); ``False`` skips verification.

    ``time_budget`` bounds the query in *modeled* seconds (the device
    meter's clock, which includes injected latency, retry backoff, and
    hedge waits).  When the budget runs out the remaining runs are
    skipped and the result comes back partial with
    ``deadline_expired=True`` — already-read records are kept, blocks
    already fetched stay charged, and no exception is raised.
    """
    if read_ahead_blocks < 1:
        raise ValueError(f"read_ahead_blocks must be >= 1, got {read_ahead_blocks}")
    policy = retry_policy or DEFAULT_RETRY_POLICY
    # getattr: duck-typed datasets (e.g. the unstructured pipeline) may
    # predate checksum tables entirely.
    checksums = getattr(dataset, "checksums", None)
    if verify_checksums and checksums is None:
        raise ValueError(
            "verify_checksums=True but the dataset has no checksum tables "
            "(built with checksum=False or loaded from a format-1 store)"
        )
    checks = checksums if verify_checksums in (None, True) else None
    codec = dataset.codec
    device = dataset.device
    lam = plan.lam

    stats_before = device.stats.copy()
    clock = QueryClock(device, time_budget)
    batches: list[MetacellRecords] = []
    n_read = 0
    skipped_runs: list = []
    n_skipped = 0

    for run in plan.runs:
        if clock.expired():
            skipped_runs.append(run)
            n_skipped += (
                run.count if isinstance(run, SequentialRun) else run.max_count
            )
            continue
        if isinstance(run, SequentialRun):
            got = 0
            for batch in _stream_records(
                dataset, run.start, run.count, MAX_SEQUENTIAL_CHUNK_BLOCKS,
                policy, checks,
            ):
                batches.append(batch)
                n_read += len(batch)
                got += len(batch)
                if clock.expired():
                    break
            if got < run.count:
                skipped_runs.append(run)
                n_skipped += run.count - got
        elif isinstance(run, BrickPrefixScan):
            batch, decoded, aborted = _scan_brick_prefix(
                dataset, run, lam, read_ahead_blocks, policy, checks, clock
            )
            n_read += decoded
            if batch is not None and len(batch):
                batches.append(batch)
            if aborted:
                skipped_runs.append(run)
                n_skipped += run.max_count - decoded
        else:  # pragma: no cover - future run types
            raise TypeError(f"unknown run type {type(run).__name__}")

    io_stats = device.stats.copy() - stats_before

    records = (
        MetacellRecords.concat(batches) if batches else MetacellRecords.empty(codec)
    )
    return QueryResult(
        lam=float(lam),
        records=records,
        plan=plan,
        io_stats=io_stats,
        n_records_read=n_read,
        deadline_expired=bool(skipped_runs),
        skipped_runs=skipped_runs,
        n_records_skipped=n_skipped,
    )


def _scan_brick_prefix(
    dataset: IndexedDataset,
    run: BrickPrefixScan,
    lam: float,
    read_ahead_blocks: int,
    policy: RetryPolicy,
    checks: "BrickChecksums | None",
    clock: "QueryClock | None" = None,
):
    """Incrementally read one brick until ``vmin > lam``, brick end, or
    the time budget expires.

    Returns ``(active_records_or_None, n_records_decoded, aborted)``;
    ``aborted`` is True when the clock cut the scan before the active
    prefix was fully determined (the decoded records are still valid
    actives — the tail of the prefix is what was lost).
    """
    decoded = 0
    actives: list[MetacellRecords] = []
    aborted = False
    for batch in _stream_records(
        dataset, run.start, run.max_count, read_ahead_blocks, policy, checks
    ):
        decoded += len(batch)
        over = np.flatnonzero(batch.vmins.astype(np.float64) > lam)
        if len(over):
            cut = int(over[0])
            if cut:
                actives.append(
                    MetacellRecords(
                        ids=batch.ids[:cut],
                        vmins=batch.vmins[:cut],
                        values=batch.values[:cut],
                    )
                )
            break
        actives.append(batch)
        if decoded < run.max_count and clock is not None and clock.expired():
            aborted = True
            break
    if not actives:
        return None, decoded, aborted
    return MetacellRecords.concat(actives), decoded, aborted
