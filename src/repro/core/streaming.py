"""Streaming (slab-based) preprocessing for volumes larger than memory.

The in-memory builder assumes the whole time step fits in RAM; the
paper's 7.5 GB steps do not (and 2048^2 x 1920 barely fits anywhere in
2006).  The paper's preprocessing "scans the data once"; this module
implements that scan in two out-of-core passes over *z-slabs*, each one
metacell layer thick (``m`` vertex planes plus the shared boundary
plane):

* **pass 1** computes every metacell's (vmin, vmax) — a few bytes per
  metacell — and builds the compact interval tree;
* **pass 2** re-streams the slabs and writes each surviving metacell's
  record directly at its final layout offset (records of one slab land
  in bulk; the device sees one write per record run).

Peak memory is one slab plus the interval arrays — independent of the
volume's depth.  The result is byte-identical in content to the
in-memory builder's output (asserted by the tests).

A :class:`SlabSource` is anything that can yield the volume's z-slabs
twice (two passes); :class:`VolumeSlabSource` adapts an in-memory
volume (for tests), :class:`FunctionSlabSource` evaluates a field
lazily per slab — e.g. the RM generator — so *no* full-volume array
ever exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.core.builder import (
    DatasetMeta,
    IndexedDataset,
    PreprocessReport,
)
from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.grid.metacell import metacell_grid_shape
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cost_model import IOCostModel
from repro.io.layout import MetacellCodec


class SlabSource(Protocol):
    """A re-iterable source of z-slabs of a scalar volume."""

    @property
    def shape(self) -> tuple[int, int, int]: ...

    @property
    def dtype(self) -> np.dtype: ...

    @property
    def spacing(self) -> tuple[float, float, float]: ...

    @property
    def origin(self) -> tuple[float, float, float]: ...

    @property
    def name(self) -> str: ...

    def slabs(self, thickness: int, overlap: int) -> "Iterator[tuple[int, np.ndarray]]":
        """Yield ``(z_start, data)`` slabs covering the volume.

        Successive slabs start ``thickness - overlap`` planes apart; the
        final slab may be thinner.
        """
        ...


@dataclass
class VolumeSlabSource:
    """Slab view of an in-memory volume (testing / small data)."""

    volume: object

    @property
    def shape(self):
        return self.volume.shape

    @property
    def dtype(self):
        return self.volume.dtype

    @property
    def spacing(self):
        return self.volume.spacing

    @property
    def origin(self):
        return self.volume.origin

    @property
    def name(self):
        return self.volume.name

    def slabs(self, thickness: int, overlap: int):
        nz = self.shape[2]
        step = thickness - overlap
        z = 0
        while z < nz - overlap or z == 0:
            yield z, np.ascontiguousarray(self.volume.data[:, :, z : z + thickness])
            z += step


@dataclass
class FunctionSlabSource:
    """Lazy slab evaluation: ``fn(z_start, z_stop) -> (nx, ny, dz) array``.

    The full volume never materializes; this is how a terabyte-scale
    simulation output (or the RM generator) streams into preprocessing.
    """

    fn: Callable[[int, int], np.ndarray]
    shape: tuple[int, int, int]
    dtype: np.dtype
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0)
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0)
    name: str = "streamed"

    def slabs(self, thickness: int, overlap: int):
        nz = self.shape[2]
        step = thickness - overlap
        z = 0
        while z < nz - overlap or z == 0:
            stop = min(z + thickness, nz)
            data = np.asarray(self.fn(z, stop))
            expect = (self.shape[0], self.shape[1], stop - z)
            if data.shape != expect:
                raise ValueError(
                    f"slab fn returned shape {data.shape}, expected {expect}"
                )
            yield z, data
            z += step


def _slab_metacell_stats(slab: np.ndarray, m: tuple[int, int, int]):
    """Metacell partition of one slab (edge-replicated padding as needed)."""
    from repro.grid.metacell import partition_metacells
    from repro.grid.volume import Volume

    if min(slab.shape) < 2:  # final slab one plane thick: replicate it
        slab = np.pad(slab, [(0, max(0, 2 - s)) for s in slab.shape], mode="edge")
    return partition_metacells(Volume(slab), m)


def build_indexed_dataset_streaming(
    source: SlabSource,
    metacell_shape: tuple[int, int, int] = (9, 9, 9),
    device=None,
    cost_model: IOCostModel | None = None,
    drop_constant: bool = True,
) -> IndexedDataset:
    """Two-pass streaming preprocessing over a slab source."""
    mx, my, mz = metacell_shape
    nx, ny, nz = source.shape
    grid = metacell_grid_shape(source.shape, metacell_shape)
    gx, gy, gz = grid
    n_total = gx * gy * gz

    # ---- pass 1: per-metacell extrema ------------------------------------
    vmin = np.empty(n_total, dtype=source.dtype)
    vmax = np.empty(n_total, dtype=source.dtype)
    seen = np.zeros(gz, dtype=bool)
    for z_start, slab in source.slabs(thickness=mz, overlap=1):
        layer = z_start // (mz - 1)
        if layer >= gz:
            break
        part = _slab_metacell_stats(slab, (mx, my, mz))
        if part.grid_shape[:2] != (gx, gy) or part.grid_shape[2] != 1:
            raise ValueError(
                f"slab at z={z_start} produced metacell grid {part.grid_shape}, "
                f"expected ({gx}, {gy}, 1) — slab thickness/overlap mismatch"
            )
        # Slab-local flat order (i*gy + j) maps to global id local*gz + layer.
        idx = np.arange(gx * gy, dtype=np.int64) * gz + layer
        vmin[idx] = part.vmin
        vmax[idx] = part.vmax
        seen[layer] = True
    if not seen.all():
        missing = np.flatnonzero(~seen)
        raise ValueError(f"slab source skipped metacell layers {missing.tolist()}")

    ids = np.arange(n_total, dtype=np.uint32)
    if drop_constant:
        keep = vmin != vmax
        intervals = IntervalSet(vmin=vmin[keep], vmax=vmax[keep], ids=ids[keep])
    else:
        intervals = IntervalSet(vmin=vmin.copy(), vmax=vmax.copy(), ids=ids)
    tree = CompactIntervalTree.build(intervals)
    codec = MetacellCodec(metacell_shape, source.dtype)
    if device is None:
        device = SimulatedBlockDevice(cost_model or IOCostModel())
    base = device.allocate(tree.n_records * codec.record_size)

    # Layout position of each metacell id (for pass-2 scatter writes).
    position_of_id = np.full(n_total, -1, dtype=np.int64)
    position_of_id[tree.record_ids] = np.arange(tree.n_records)

    # ---- pass 2: write records at their layout offsets --------------------
    for z_start, slab in source.slabs(thickness=mz, overlap=1):
        layer = z_start // (mz - 1)
        if layer >= gz:
            break
        part = _slab_metacell_stats(slab, (mx, my, mz))
        slab_ids = (np.arange(gx * gy, dtype=np.int64) * gz + layer).astype(np.uint32)
        pos = position_of_id[slab_ids]
        live = pos >= 0
        if not live.any():
            continue
        live_local = np.flatnonzero(live)
        values = part.extract_values(live_local.astype(np.uint32))
        live_ids = slab_ids[live]
        live_pos = pos[live]
        order = np.argsort(live_pos)
        live_ids, live_pos, values = live_ids[order], live_pos[order], values[order]
        # Coalesce runs of consecutive layout positions into bulk writes.
        breaks = np.flatnonzero(np.diff(live_pos) != 1) + 1
        starts = np.concatenate([[0], breaks])
        stops = np.concatenate([breaks, [len(live_pos)]])
        for s_run, e_run in zip(starts, stops):
            blob = codec.encode(
                live_ids[s_run:e_run],
                vmin[live_ids[s_run:e_run]],
                values[s_run:e_run],
            )
            device.write(
                base + int(live_pos[s_run]) * codec.record_size, blob
            )

    report = PreprocessReport(
        n_metacells_total=n_total,
        n_metacells_culled=n_total - len(intervals),
        n_metacells_stored=len(intervals),
        original_bytes=int(np.prod(source.shape)) * np.dtype(source.dtype).itemsize,
        stored_bytes=len(intervals) * codec.record_size,
        index_bytes=tree.index_size_bytes(),
        n_distinct_endpoints=len(tree.endpoints),
        n_bricks=tree.n_bricks,
        tree_height=tree.height(),
    )
    meta = DatasetMeta(
        grid_shape=grid,
        metacell_shape=tuple(metacell_shape),
        volume_shape=source.shape,
        spacing=source.spacing,
        origin=source.origin,
        name=source.name,
    )
    return IndexedDataset(
        tree=tree, device=device, codec=codec, base_offset=base,
        meta=meta, report=report,
    )
