"""Out-of-core indexing of unstructured (tetrahedral) grids.

The index layer is grid-agnostic — it sees only (vmin, vmax) intervals
and fixed-size records — so the unstructured pipeline reuses the compact
interval tree, brick layout, striping, and query execution unchanged.
What differs is the record payload: a *denormalized cluster* of K
tetrahedra (each with its four vertex positions and values), so a query
can triangulate straight from the record with no global mesh in memory,
as in the out-of-core unstructured systems the paper cites [10, 17].

Record layout (float32): per cell slot, ``x0 y0 z0 ... x3 y3 z3`` then
``v0 v1 v2 v3`` (16 floats).  Clusters shorter than K are padded with
degenerate all-zero cells, which can never produce a crossing under the
strict ``value > iso`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.query import QueryResult, execute_query
from repro.core.striping import stripe_brick_records
from repro.grid.unstructured import CellClusters, TetMesh, cluster_cells
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cost_model import IOCostModel
from repro.io.layout import MetacellCodec, MetacellRecords
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_tets import marching_tets_generic

#: Floats per denormalized cell: 4 vertices x 3 coords + 4 values.
FLOATS_PER_CELL = 16


@dataclass
class UnstructuredReport:
    """Preprocessing statistics for an unstructured build."""

    n_cells: int
    n_clusters_total: int
    n_clusters_culled: int
    n_clusters_stored: int
    stored_bytes: int
    index_bytes: int
    cells_per_cluster: int


@dataclass
class UnstructuredDataset:
    """Duck-type of :class:`~repro.core.builder.IndexedDataset` for
    unstructured data: works with ``execute_query`` /
    ``execute_plan`` unchanged."""

    tree: CompactIntervalTree
    device: object
    codec: MetacellCodec
    base_offset: int
    report: UnstructuredReport
    cells_per_cluster: int
    node_rank: int = 0
    n_cluster_nodes: int = 1

    def record_offset(self, position: int) -> int:
        return self.base_offset + position * self.codec.record_size

    @property
    def n_records(self) -> int:
        return self.tree.n_records


def _cluster_payloads(clusters: CellClusters, ids: np.ndarray) -> np.ndarray:
    """Denormalize the requested clusters into flat float32 payload rows."""
    mesh = clusters.mesh
    K = clusters.cells_per_cluster
    out = np.zeros((len(ids), K, FLOATS_PER_CELL), dtype=np.float32)
    cp = mesh.cell_points()
    cv = mesh.cell_values()
    for row, cid in enumerate(np.asarray(ids, dtype=np.int64)):
        m = clusters.members[cid]
        real = m[m >= 0]
        out[row, : len(real), :12] = cp[real].reshape(len(real), 12)
        out[row, : len(real), 12:] = cv[real]
    return out.reshape(len(ids), K * FLOATS_PER_CELL)


def _write_cluster_records(device, codec, clusters, ids, vmins) -> int:
    base = device.allocate(len(ids) * codec.record_size)
    chunk = 2048
    for s in range(0, len(ids), chunk):
        e = min(s + chunk, len(ids))
        payload = _cluster_payloads(clusters, ids[s:e])
        blob = codec.encode(ids[s:e], vmins[s:e], payload)
        device.write(base + s * codec.record_size, blob)
    return base


def _intervals_of(clusters: CellClusters, drop_constant: bool) -> IntervalSet:
    vmin = clusters.vmin.astype(np.float32)
    vmax = clusters.vmax.astype(np.float32)
    ids = clusters.ids
    if drop_constant:
        keep = vmin != vmax
        vmin, vmax, ids = vmin[keep], vmax[keep], ids[keep]
    return IntervalSet(vmin=vmin, vmax=vmax, ids=ids)


def build_unstructured_dataset(
    mesh: TetMesh,
    cells_per_cluster: int = 64,
    device=None,
    cost_model: IOCostModel | None = None,
    drop_constant: bool = True,
) -> UnstructuredDataset:
    """Cluster, index, and lay out a tetrahedral mesh for querying."""
    clusters = cluster_cells(mesh, cells_per_cluster)
    intervals = _intervals_of(clusters, drop_constant)
    tree = CompactIntervalTree.build(intervals)
    codec = MetacellCodec.flat(cells_per_cluster * FLOATS_PER_CELL, np.float32)
    if device is None:
        device = SimulatedBlockDevice(cost_model or IOCostModel())
    base = _write_cluster_records(device, codec, clusters, tree.record_ids, tree.record_vmins)
    report = UnstructuredReport(
        n_cells=mesh.n_cells,
        n_clusters_total=clusters.n_clusters,
        n_clusters_culled=clusters.n_clusters - len(intervals),
        n_clusters_stored=len(intervals),
        stored_bytes=len(intervals) * codec.record_size,
        index_bytes=tree.index_size_bytes(),
        cells_per_cluster=cells_per_cluster,
    )
    return UnstructuredDataset(
        tree=tree,
        device=device,
        codec=codec,
        base_offset=base,
        report=report,
        cells_per_cluster=cells_per_cluster,
    )


def build_striped_unstructured(
    mesh: TetMesh,
    p: int,
    cells_per_cluster: int = 64,
    devices=None,
    cost_model: IOCostModel | None = None,
    drop_constant: bool = True,
    stagger: bool = True,
) -> "list[UnstructuredDataset]":
    """Stripe an unstructured layout across ``p`` node-local disks."""
    if p < 1:
        raise ValueError(f"node count must be >= 1, got {p}")
    clusters = cluster_cells(mesh, cells_per_cluster)
    intervals = _intervals_of(clusters, drop_constant)
    tree = CompactIntervalTree.build(intervals)
    codec = MetacellCodec.flat(cells_per_cluster * FLOATS_PER_CELL, np.float32)
    report = UnstructuredReport(
        n_cells=mesh.n_cells,
        n_clusters_total=clusters.n_clusters,
        n_clusters_culled=clusters.n_clusters - len(intervals),
        n_clusters_stored=len(intervals),
        stored_bytes=len(intervals) * codec.record_size,
        index_bytes=tree.index_size_bytes(),
        cells_per_cluster=cells_per_cluster,
    )
    if devices is None:
        devices = [SimulatedBlockDevice(cost_model or IOCostModel()) for _ in range(p)]
    if len(devices) != p:
        raise ValueError(f"expected {p} devices, got {len(devices)}")
    out = []
    for lay, device in zip(stripe_brick_records(tree, p, stagger=stagger), devices):
        base = _write_cluster_records(
            device, codec, clusters, lay.tree.record_ids, lay.tree.record_vmins
        )
        out.append(
            UnstructuredDataset(
                tree=lay.tree,
                device=device,
                codec=codec,
                base_offset=base,
                report=report,
                cells_per_cluster=cells_per_cluster,
                node_rank=lay.node_rank,
                n_cluster_nodes=p,
            )
        )
    return out


def triangulate_unstructured_records(
    records: MetacellRecords, cells_per_cluster: int, iso: float
) -> TriangleMesh:
    """Marching tetrahedra over the denormalized cells of query results."""
    n = len(records)
    if n == 0:
        return TriangleMesh()
    payload = records.values.astype(np.float64).reshape(
        n * cells_per_cluster, FLOATS_PER_CELL
    )
    pts = payload[:, :12].reshape(-1, 4, 3)
    vals = payload[:, 12:]
    return marching_tets_generic(pts, vals, iso)


def extract_unstructured(dataset: UnstructuredDataset, iso: float):
    """Out-of-core query + triangulation on one (node-local) dataset.

    Returns ``(mesh, query_result)``.
    """
    qr: QueryResult = execute_query(dataset, iso)
    mesh = triangulate_unstructured_records(qr.records, dataset.cells_per_cluster, iso)
    return mesh, qr
