"""Deadline and time-budget primitives on the modeled clock.

The paper's load-balance theorem bounds *work* per node; nothing bounds
*time* — one latency-spiked disk stalls the whole sort-last barrier.
This module gives every layer a shared notion of "how long has this
query taken and how long may it still take", expressed in **modeled
seconds**: the same clock the cost model derives from counted blocks,
seeks, and injected fault delay.  Using the modeled clock (never Python
wall time) keeps every deadline decision — cutting a query short,
firing a hedge, launching a speculative re-execution — fully
deterministic and unit-testable.

Pieces:

* :class:`Deadline` — the per-query budget and its split between the
  primary node stage and the speculative re-execution window.
* :class:`QueryClock` — elapsed modeled time of one node query, read
  off the device meter it is attached to (which already accumulates
  spike + backoff + hedge delay through
  :meth:`~repro.io.blockdevice.IOStats.charge_delay`).
* :class:`DeadlineReport` — what a deadline-bounded cluster extraction
  reports back: whether the budget held, which nodes expired, and who
  was rescued by speculation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Deadline:
    """A total modeled-time budget for one cluster query.

    Parameters
    ----------
    budget:
        Total modeled seconds the query may take, end to end (per-node
        stages run in parallel; the composite rides on top).  A zero or
        negative budget is legal and means *already expired*: every read
        is cut off immediately, the extraction comes back with
        ``coverage == 0.0`` and a well-formed
        :class:`DeadlineReport` — callers that re-split a budget after
        queue wait or a preemption delay (:meth:`consume`) must not have
        to special-case the moment the budget runs dry.
    node_fraction:
        Share of the budget a node's *primary* attempt gets before it is
        declared a straggler.  The remainder is the speculation window:
        a straggler's work is re-issued on its replica host at the
        ``node_budget`` mark and must finish inside
        ``speculation_budget``.
    """

    budget: float
    node_fraction: float = 0.6

    def __post_init__(self) -> None:
        if math.isnan(self.budget):
            raise ValueError("deadline budget must not be NaN")
        if not 0.0 < self.node_fraction <= 1.0:
            raise ValueError(
                f"node_fraction must be in (0, 1], got {self.node_fraction}"
            )

    @property
    def expired(self) -> bool:
        """True when no budget remains (zero or negative)."""
        return self.budget <= 0.0

    @property
    def node_budget(self) -> float:
        """Modeled seconds a node's primary attempt may consume
        (clamped at zero for an already-expired deadline)."""
        return max(0.0, self.budget * self.node_fraction)

    @property
    def speculation_budget(self) -> float:
        """Modeled seconds available to a speculative re-execution
        launched at the ``node_budget`` mark."""
        return max(0.0, self.budget - self.node_budget)

    def consume(self, elapsed: float) -> "Deadline":
        """Re-split the budget after ``elapsed`` modeled seconds have
        already been spent outside the query itself.

        This is how the serving layer charges queue wait and preemption
        delay against a request's end-to-end contract: the query that
        finally runs gets ``budget - elapsed`` (possibly expired), with
        the same node/speculation split fractions.
        """
        if elapsed < 0:
            raise ValueError(f"elapsed must be >= 0, got {elapsed}")
        return replace(self, budget=self.budget - elapsed)

    @classmethod
    def coerce(cls, value: "Deadline | float | int | None") -> "Deadline | None":
        """Accept a Deadline, a plain seconds number, or None."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls(float(value))


class QueryClock:
    """Elapsed modeled time of one node query, read off a device meter.

    Constructed at query start against the device the query reads from;
    :meth:`elapsed` is the modeled read time of everything charged to
    that meter since — block transfers, seeks, latency spikes, retry
    backoff, and hedge waits all included, because they all land in the
    same :class:`~repro.io.blockdevice.IOStats`.

    ``limit=None`` makes a clock that never expires (the healthy,
    deadline-free path pays only two attribute loads per check).
    """

    def __init__(self, device, limit: "float | None" = None) -> None:
        self._device = device
        self._model = device.cost_model
        self._start = device.stats.copy()
        self.limit = limit

    def elapsed(self) -> float:
        return (self._device.stats - self._start).read_time(self._model)

    def remaining(self) -> float:
        if self.limit is None:
            return float("inf")
        return self.limit - self.elapsed()

    def expired(self) -> bool:
        return self.limit is not None and self.elapsed() >= self.limit


@dataclass
class DeadlineReport:
    """Outcome of a deadline-bounded cluster extraction.

    ``met`` is True only when the modeled end-to-end time fit the budget
    *and* every active metacell was covered — a fast-but-partial answer
    does not count as meeting the deadline.
    """

    budget: float
    node_budget: float
    modeled_total: float = 0.0
    coverage: float = 1.0
    met: bool = True
    #: Ranks whose primary attempt blew its stage budget (before any
    #: speculative rescue).
    expired_nodes: "list[int]" = field(default_factory=list)
    #: Ranks whose work was speculatively re-executed on a replica host.
    speculated_nodes: "list[int]" = field(default_factory=list)

    @property
    def over_budget_by(self) -> float:
        """Modeled seconds past the budget (0 when the deadline held)."""
        return max(0.0, self.modeled_total - self.budget)
