"""Interval sets: the (vmin, vmax) spans of metacells.

Every indexing structure in this package — the compact interval tree, the
standard interval tree baseline, the BBIO-style external tree — is built
from an :class:`IntervalSet`.  The class also provides the brute-force
stabbing query that serves as the correctness oracle in the test suite:
an isovalue ``lam`` *stabs* interval ``i`` iff ``vmin[i] <= lam <=
vmax[i]``, which for metacells is exactly the "possibly active" predicate
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class IntervalSet:
    """A set of closed scalar intervals with attached ids.

    Attributes
    ----------
    vmin, vmax:
        Interval endpoints, ``vmin[i] <= vmax[i]``.
    ids:
        Opaque uint32 payload ids (metacell ids in the pipeline).
    """

    vmin: np.ndarray
    vmax: np.ndarray
    ids: np.ndarray

    def __post_init__(self) -> None:
        self.vmin = np.asarray(self.vmin)
        self.vmax = np.asarray(self.vmax)
        self.ids = np.asarray(self.ids, dtype=np.uint32)
        if not (len(self.vmin) == len(self.vmax) == len(self.ids)):
            raise ValueError(
                f"length mismatch: {len(self.vmin)} vmin, {len(self.vmax)} vmax, "
                f"{len(self.ids)} ids"
            )
        if self.vmin.dtype != self.vmax.dtype:
            raise ValueError(
                f"vmin dtype {self.vmin.dtype} != vmax dtype {self.vmax.dtype}"
            )
        if self.vmin.dtype.kind == "f" and (
            bool(np.isnan(self.vmin).any()) or bool(np.isnan(self.vmax).any())
        ):
            raise ValueError("interval endpoints must not be NaN")
        if len(self.vmin) and bool(np.any(self.vmin > self.vmax)):
            bad = int(np.argmax(self.vmin > self.vmax))
            raise ValueError(
                f"interval {bad} has vmin {self.vmin[bad]} > vmax {self.vmax[bad]}"
            )

    def __len__(self) -> int:
        return len(self.vmin)

    @property
    def dtype(self) -> np.dtype:
        return self.vmin.dtype

    @staticmethod
    def from_partition(partition, drop_constant: bool = True) -> "IntervalSet":
        """Build the interval set of a metacell partition.

        With ``drop_constant=True`` (the paper's preprocessing), metacells
        whose scalar field is constant are removed — they can never
        contain an isovalue crossing.
        """
        vmin, vmax, ids = partition.vmin, partition.vmax, partition.ids
        if drop_constant:
            keep = vmin != vmax
            vmin, vmax, ids = vmin[keep], vmax[keep], ids[keep]
        return IntervalSet(vmin=vmin.copy(), vmax=vmax.copy(), ids=ids.copy())

    # -- analysis ------------------------------------------------------------

    def distinct_endpoints(self) -> np.ndarray:
        """Sorted distinct endpoint values: the ``n`` of the paper's bounds."""
        return np.unique(np.concatenate([self.vmin, self.vmax]))

    @property
    def n_distinct_endpoints(self) -> int:
        return len(self.distinct_endpoints())

    def n_distinct_pairs(self) -> int:
        """Number of distinct (vmin, vmax) pairs: the paper's ``N`` can be
        as large as ``n^2``; this measures where the dataset actually sits."""
        if len(self) == 0:
            return 0
        pairs = np.stack([self.vmin, self.vmax], axis=1)
        return len(np.unique(pairs, axis=0))

    # -- oracle ---------------------------------------------------------------

    def stabbing_mask(self, lam: float) -> np.ndarray:
        """Boolean mask of intervals containing ``lam`` (brute force)."""
        return (self.vmin <= lam) & (lam <= self.vmax)

    def stabbing_ids(self, lam: float) -> np.ndarray:
        """Sorted ids of intervals containing ``lam`` (brute force oracle)."""
        return np.sort(self.ids[self.stabbing_mask(lam)])

    def stabbing_count(self, lam: float) -> int:
        """Number of intervals containing ``lam`` (brute force)."""
        return int(self.stabbing_mask(lam).sum())
