"""Self-healing storage: rebuild CRC-failing records in place.

Detection lives in :mod:`repro.core.validation` (fsck) and
:mod:`repro.io.scrub` (background scrubber); this module is the *repair*
half.  A record whose bytes no longer match its CRC32 can be
reconstructed from two independent sources:

* the **source volume** — preprocessing is deterministic, so re-encoding
  the metacell from the original field reproduces the record
  bit-identically (the record CRC in the index proves it before a single
  byte is written back);
* a **chained-declustering replica** — when the cluster was built with
  ``replication >= 2``, some peer node holds a byte-identical copy of
  this node's layout (:attr:`IndexedDataset.replica_stores`), so the
  record can be copied back even when the source volume is gone.

Either way, the candidate bytes are verified against the stored record
CRC *before* the write-back and read back *after* it — a repair can fail
(both sources corrupt, device refuses the write) but can never make the
store worse.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import NULL_TRACER

#: Records examined per chunk while sweeping the store for corruption.
REPAIR_SCAN_CHUNK = 4096


@dataclass
class RepairReport:
    """Outcome of one :func:`repair_dataset` pass."""

    #: Layout positions found (or given) as corrupt.
    corrupt: "list[int]" = field(default_factory=list)
    #: Positions rebuilt by re-encoding the source volume.
    repaired_from_source: "list[int]" = field(default_factory=list)
    #: Positions copied back from a replica host (``(pos, host_rank)``).
    repaired_from_replica: "list[tuple[int, int]]" = field(default_factory=list)
    #: Positions no source could reconstruct.
    unrepaired: "list[int]" = field(default_factory=list)

    @property
    def n_repaired(self) -> int:
        return len(self.repaired_from_source) + len(self.repaired_from_replica)

    @property
    def ok(self) -> bool:
        return not self.unrepaired

    def as_dict(self) -> dict:
        return {
            "corrupt": [int(p) for p in self.corrupt],
            "repaired_from_source": [int(p) for p in self.repaired_from_source],
            "repaired_from_replica": [
                [int(p), int(r)] for p, r in self.repaired_from_replica
            ],
            "unrepaired": [int(p) for p in self.unrepaired],
        }

    def summary(self) -> str:
        if not self.corrupt:
            return "repair: store clean, nothing to do"
        return (
            f"repair: {len(self.corrupt)} corrupt record(s) — "
            f"{len(self.repaired_from_source)} rebuilt from source, "
            f"{len(self.repaired_from_replica)} from replicas, "
            f"{len(self.unrepaired)} unrepaired"
        )


def find_corrupt_records(dataset) -> "list[int]":
    """Layout positions of every record whose CRC32 fails (CRC-only sweep).

    Cheaper than :func:`repro.core.validation.verify_dataset`: no
    decoding, no invariant checks — just the checksum comparison repair
    needs.
    """
    checks = dataset.checksums
    if checks is None:
        raise ValueError("dataset carries no checksum tables; cannot scan")
    rec = dataset.codec.record_size
    n = dataset.n_records
    out: "list[int]" = []
    for start in range(0, n, REPAIR_SCAN_CHUNK):
        stop = min(start + REPAIR_SCAN_CHUNK, n)
        buf = dataset.device.read(dataset.record_offset(start), (stop - start) * rec)
        out.extend(start + int(i) for i in checks.find_corrupt(start, buf, rec))
    return out


def encode_record_from_source(dataset, partition, position: int) -> bytes:
    """Re-encode the record at ``position`` from the source partition.

    Deterministic preprocessing makes this bit-identical to the original
    layout write: same metacell id, same stored vmin, same codec.
    """
    rid = np.asarray([dataset.tree.record_ids[position]], dtype=np.uint32)
    vmin = dataset.tree.record_vmins[position : position + 1]
    values = partition.extract_values(rid)
    return dataset.codec.encode(rid, vmin, values)


def read_replica_record(host, src_rank: int, position: int, record_size: int) -> bytes:
    """Read one record of node ``src_rank``'s layout from ``host``'s replica."""
    base = host.replica_stores[src_rank]
    return host.device.read(base + position * record_size, record_size)


def repair_dataset(
    dataset,
    source_volume=None,
    replica_hosts=(),
    positions: "list[int] | None" = None,
    tracer=NULL_TRACER,
    metrics=None,
) -> RepairReport:
    """Reconstruct corrupt records of ``dataset`` in place.

    Parameters
    ----------
    source_volume:
        The original :class:`~repro.grid.volume.Volume`; when given,
        corrupt records are rebuilt by re-running the (deterministic)
        encode for just those metacells.
    replica_hosts:
        Peer :class:`~repro.core.builder.IndexedDataset` objects whose
        :attr:`replica_stores` may hold a copy of this node's layout
        (chained declustering).  Tried when the source volume is absent
        or its reconstruction fails verification.
    positions:
        Explicit corrupt positions; default: scan the store
        (:func:`find_corrupt_records`).

    Every candidate is CRC-verified against the index *before* the
    write-back, and the written bytes are read back and verified after —
    so repairs are bit-exact or reported as ``unrepaired``, never
    guessed.
    """
    checks = dataset.checksums
    if checks is None:
        raise ValueError("dataset carries no checksum tables; cannot repair")
    rec = dataset.codec.record_size
    report = RepairReport(
        corrupt=sorted(positions) if positions is not None else find_corrupt_records(dataset)
    )
    if not report.corrupt:
        return report

    partition = None
    if source_volume is not None:
        from repro.grid.metacell import partition_metacells

        partition = partition_metacells(source_volume, dataset.meta.metacell_shape)

    hosts = [
        h
        for h in replica_hosts
        if dataset.node_rank in getattr(h, "replica_stores", {})
    ]

    for p in report.corrupt:
        expected = int(checks.record_crcs[p])
        with tracer.span(
            "repair.record", category="repair", args={"position": p}
        ):
            blob = None
            origin = None
            if partition is not None:
                candidate = encode_record_from_source(dataset, partition, p)
                if _crc(candidate) == expected:
                    blob, origin = candidate, "source"
            if blob is None:
                for host in hosts:
                    candidate = read_replica_record(host, dataset.node_rank, p, rec)
                    if _crc(candidate) == expected:
                        blob, origin = candidate, ("replica", host.node_rank)
                        break
            if blob is None:
                report.unrepaired.append(p)
                if metrics is not None:
                    metrics.inc("repair.records_unrepaired")
                continue
            dataset.device.write(dataset.record_offset(p), blob)
            back = dataset.device.read(dataset.record_offset(p), rec)
            if _crc(back) != expected:
                report.unrepaired.append(p)
                if metrics is not None:
                    metrics.inc("repair.records_unrepaired")
                continue
        if origin == "source":
            report.repaired_from_source.append(p)
            if metrics is not None:
                metrics.inc("repair.records_from_source")
        else:
            report.repaired_from_replica.append((p, origin[1]))
            if metrics is not None:
                metrics.inc("repair.records_from_replica")
    if hasattr(dataset.device, "flush"):
        dataset.device.flush()
    return report


def _crc(blob) -> int:
    return zlib.crc32(blob)
