"""Span-space analysis (paper Section 4, Figure 1).

The *span space* plots every metacell as the point ``(vmin, vmax)`` above
the diagonal.  An isovalue ``lam`` selects the upper-left quadrant
``vmin <= lam <= vmax``.  The compact interval tree recursively partitions
the span space into squares anchored on the diagonal at the median
endpoint of each subtree; each square is stored as a run of bricks.

This module provides the statistics used throughout the benches and docs:
endpoint counts, distinct-pair counts, 2D density histograms, and the
explicit square decomposition induced by a tree (handy for validating the
construction and for rendering Figure-1-style diagrams in ASCII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.intervals import IntervalSet


@dataclass(frozen=True)
class SpanSpaceStats:
    """Summary statistics of an interval set's span-space distribution."""

    n_intervals: int
    n_distinct_endpoints: int
    n_distinct_pairs: int
    degenerate_fraction: float  # fraction with vmin == vmax
    mean_span: float
    max_span: float

    @staticmethod
    def from_intervals(intervals: IntervalSet) -> "SpanSpaceStats":
        n = len(intervals)
        if n == 0:
            return SpanSpaceStats(0, 0, 0, 0.0, 0.0, 0.0)
        spans = intervals.vmax.astype(np.float64) - intervals.vmin.astype(np.float64)
        return SpanSpaceStats(
            n_intervals=n,
            n_distinct_endpoints=intervals.n_distinct_endpoints,
            n_distinct_pairs=intervals.n_distinct_pairs(),
            degenerate_fraction=float(np.mean(spans == 0)),
            mean_span=float(spans.mean()),
            max_span=float(spans.max()),
        )


def span_space_histogram(
    intervals: IntervalSet, bins: int = 32
) -> tuple[np.ndarray, np.ndarray]:
    """2D density of (vmin, vmax) points.

    Returns ``(hist, edges)`` where ``hist[i, j]`` counts intervals with
    ``vmin`` in bin i and ``vmax`` in bin j over shared edges, so the
    diagonal structure of Figure 1 is directly visible.
    """
    if len(intervals) == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return np.zeros((bins, bins), dtype=np.int64), edges
    lo = float(min(intervals.vmin.min(), intervals.vmax.min()))
    hi = float(max(intervals.vmin.max(), intervals.vmax.max()))
    if hi == lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    hist, _, _ = np.histogram2d(
        intervals.vmin.astype(np.float64),
        intervals.vmax.astype(np.float64),
        bins=[edges, edges],
    )
    return hist.astype(np.int64), edges


@dataclass(frozen=True)
class SpanSquare:
    """One square of the recursive span-space partition (Figure 1).

    The square's bottom-right corner sits on the diagonal at
    ``(split, split)``; it covers intervals with ``vmin`` in
    ``[lo, split]`` and ``vmax`` in ``[split, hi]``.
    """

    node_id: int
    split: float
    lo: float
    hi: float
    n_intervals: int
    n_bricks: int


def tree_span_squares(tree) -> "list[SpanSquare]":
    """The explicit square decomposition induced by a compact interval tree."""
    squares = []
    for node in tree.nodes:
        count = int(node.entry_count.sum()) if node.n_bricks else 0
        squares.append(
            SpanSquare(
                node_id=node.node_id,
                split=float(node.split),
                lo=float(tree.endpoints[node.lo_code]),
                hi=float(tree.endpoints[node.hi_code]),
                n_intervals=count,
                n_bricks=len(node.brick_ids),
            )
        )
    return squares


def ascii_tree(tree, max_depth: int = 6, max_bricks_shown: int = 4) -> str:
    """ASCII rendering of a compact interval tree (Figure 2 of the paper).

    Each node line shows the split value and its brick index entries as
    ``vmax<-(min vmin)@start`` triples; children are indented.
    """
    if not tree.nodes:
        return "(empty tree)"
    lines: list[str] = []

    def fmt_value(v) -> str:
        f = float(v)
        return f"{int(f)}" if f == int(f) else f"{f:.4g}"

    def visit(node_id: int, depth: int, label: str) -> None:
        node = tree.nodes[node_id]
        pad = "  " * depth
        entries = []
        for j in range(min(node.n_bricks, max_bricks_shown)):
            entries.append(
                f"{fmt_value(node.entry_vmax[j])}<-({fmt_value(node.entry_min_vmin[j])})"
                f"@{int(node.entry_start[j])}"
            )
        if node.n_bricks > max_bricks_shown:
            entries.append(f"... +{node.n_bricks - max_bricks_shown} bricks")
        brick_txt = "  [" + ", ".join(entries) + "]" if entries else "  [no bricks]"
        lines.append(
            f"{pad}{label} split={fmt_value(node.split)} "
            f"({node.run_count} records){brick_txt}"
        )
        if depth + 1 > max_depth:
            if node.left >= 0 or node.right >= 0:
                lines.append(f"{pad}  ...")
            return
        if node.left >= 0:
            visit(node.left, depth + 1, "L")
        if node.right >= 0:
            visit(node.right, depth + 1, "R")

    visit(0, 0, "root")
    return "\n".join(lines)


def ascii_span_space(intervals: IntervalSet, bins: int = 24) -> str:
    """Coarse ASCII rendering of the span-space density (docs/benches)."""
    hist, _ = span_space_histogram(intervals, bins)
    if hist.max() == 0:
        return "(empty span space)"
    shades = " .:-=+*#%@"
    levels = np.zeros_like(hist)
    nz = hist > 0
    if nz.any():
        logh = np.log1p(hist[nz])
        levels_vals = 1 + np.floor(
            (len(shades) - 2) * logh / max(float(logh.max()), 1e-12)
        ).astype(int)
        levels[nz] = levels_vals
    lines = []
    # vmax on the vertical axis, increasing upward; vmin horizontal.
    for j in range(bins - 1, -1, -1):
        row = "".join(shades[int(levels[i, j])] for i in range(bins))
        lines.append("|" + row + "|")
    lines.append("+" + "-" * bins + "+  (x: vmin ->, y: vmax ^)")
    return "\n".join(lines)
