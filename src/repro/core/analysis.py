"""Query-cost prediction and isovalue analysis.

Because the compact index is in memory and the layout is deterministic,
the *exact* I/O bill of a query can be computed without touching the
disk: sequential runs are fully determined by the plan, and Case-2
prefix lengths follow from the in-memory ``record_vmins``.  This powers:

* :func:`estimate_query_cost` — predict blocks/seeks/bytes before
  executing (the tests assert block-exact agreement with the executor);
* :func:`active_count_profile` — active metacell count at every distinct
  endpoint (the selectivity curve of the dataset);
* :func:`suggest_isovalues` — representative isovalues at requested
  selectivity levels, useful for building sweeps on unknown data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compact_tree import BrickPrefixScan, CompactIntervalTree, SequentialRun
from repro.core.query import DEFAULT_READ_AHEAD_BLOCKS, MAX_SEQUENTIAL_CHUNK_BLOCKS
from repro.io.cost_model import IOCostModel


def record_vmaxs(tree: CompactIntervalTree) -> np.ndarray:
    """Per-record vmax, reconstructed from the brick table (float64)."""
    out = np.empty(tree.n_records, dtype=np.float64)
    for b in range(tree.n_bricks):
        s, c = int(tree.brick_start[b]), int(tree.brick_count[b])
        out[s : s + c] = float(tree.brick_vmax[b])
    return out


@dataclass(frozen=True)
class QueryCostEstimate:
    """Predicted I/O for one isovalue query."""

    lam: float
    n_active: int
    n_runs: int
    blocks: int
    bytes_payload: int
    seeks_upper_bound: int

    def io_time(self, model: IOCostModel) -> float:
        """Modeled retrieval time (using the seek upper bound)."""
        return model.time_for(self.blocks, self.seeks_upper_bound)


def _chunked_extent_blocks(
    start: int, length: int, chunk_blocks: int, model: IOCostModel
) -> int:
    """Blocks the executor's block-aligned chunking touches for a full
    extent read (never double-charging a block)."""
    return model.blocks_for_extent(start, length)


def _prefix_scan_blocks(
    start_byte: int,
    rec_size: int,
    brick_vmins: np.ndarray,
    lam: float,
    read_ahead_blocks: int,
    model: IOCostModel,
) -> tuple[int, int]:
    """(blocks, records decoded) the incremental brick reader will use."""
    n = len(brick_vmins)
    k = int(np.searchsorted(brick_vmins.astype(np.float64), lam, side="right"))
    needed = n if k >= n else k + 1  # +1: the terminator record
    bs = model.block_size
    end = start_byte + n * rec_size
    pos = start_byte
    blocks = 0
    while pos < end:
        boundary = ((pos // bs) + read_ahead_blocks) * bs
        stop = min(boundary, end)
        blocks += model.blocks_for_extent(pos, stop - pos)
        if (stop - start_byte) // rec_size >= needed:
            break
        pos = stop
    return blocks, needed


def estimate_query_cost(
    tree: CompactIntervalTree,
    lam: float,
    record_size: int,
    cost_model: IOCostModel,
    base_offset: int = 0,
    read_ahead_blocks: int = DEFAULT_READ_AHEAD_BLOCKS,
) -> QueryCostEstimate:
    """Predict the executor's exact block count for isovalue ``lam``."""
    plan = tree.plan_query(lam)
    blocks = 0
    payload = 0
    n_active = 0
    for run in plan.runs:
        if isinstance(run, SequentialRun):
            start = base_offset + run.start * record_size
            length = run.count * record_size
            blocks += _chunked_extent_blocks(
                start, length, MAX_SEQUENTIAL_CHUNK_BLOCKS, cost_model
            )
            payload += length
            n_active += run.count
        elif isinstance(run, BrickPrefixScan):
            start = base_offset + run.start * record_size
            seg = tree.record_vmins[run.start : run.start + run.max_count]
            b, needed = _prefix_scan_blocks(
                start, record_size, seg, lam, read_ahead_blocks, cost_model
            )
            blocks += b
            k = int(np.searchsorted(seg.astype(np.float64), lam, side="right"))
            payload += k * record_size
            n_active += k
    return QueryCostEstimate(
        lam=float(lam),
        n_active=n_active,
        n_runs=len(plan.runs),
        blocks=blocks,
        bytes_payload=payload,
        seeks_upper_bound=len(plan.runs),
    )


def active_count_profile(tree: CompactIntervalTree) -> tuple[np.ndarray, np.ndarray]:
    """Active record count at every distinct endpoint value.

    Returns ``(endpoints, counts)``; between endpoints the count is
    piecewise constant (equal to the count at the lower endpoint minus
    intervals that closed there), so this profile fully characterizes
    selectivity.
    """
    endpoints = tree.endpoints.astype(np.float64)
    if tree.n_records == 0:
        return endpoints, np.zeros(len(endpoints), dtype=np.int64)
    vmins = np.sort(tree.record_vmins.astype(np.float64))
    vmaxs = np.sort(record_vmaxs(tree))
    opened = np.searchsorted(vmins, endpoints, side="right")
    closed = np.searchsorted(vmaxs, endpoints, side="left")
    return endpoints, (opened - closed).astype(np.int64)


def suggest_isovalues(
    tree: CompactIntervalTree, selectivities=(0.01, 0.05, 0.25, 0.5)
) -> "dict[float, float]":
    """Endpoint isovalues whose active fraction best matches each target.

    Returns ``{target_selectivity: isovalue}``.  Useful for constructing
    sweeps over unfamiliar datasets (e.g. picking a 'busy' and a
    'sparse' isovalue automatically).
    """
    endpoints, counts = active_count_profile(tree)
    if len(endpoints) == 0:
        raise ValueError("empty index has no isovalues")
    frac = counts / max(tree.n_records, 1)
    out = {}
    for target in selectivities:
        out[float(target)] = float(endpoints[int(np.argmin(np.abs(frac - target)))])
    return out
