"""The compact interval tree (paper Section 4) and its query planner
(Section 5).

Structure
---------
A binary tree over the ``n`` distinct endpoint values of the metacell
intervals.  Each node holds a split value ``vm`` (the median endpoint of
the intervals routed to its subtree) and owns every interval containing
``vm`` that no ancestor owns.  Unlike the standard interval tree — which
stores *two full sorted lists of the intervals* at each node — a node here
stores only one small **index entry per brick**:

    (brick vmax, smallest vmin in brick, disk pointer)

where a *brick* is the contiguous on-disk run of all the node's metacell
records sharing one ``vmax`` value, sorted by ascending ``vmin``.  Bricks
within a node are laid out consecutively in *descending* ``vmax`` order.
There are at most ``n/2`` entries per level and ``log2 n`` levels, giving
the paper's O(n log n) index size versus Omega(N) for the standard tree.

Query
-----
For isovalue ``lam``, walk the root-to-leaf path (the paper phrases the
same path bottom-up).  At a node with split ``vm``:

* **Case 1** (``lam >= vm``): every record in every brick with
  ``vmax >= lam`` is active, and those bricks are a *prefix* of the node's
  run — one sequential read, no per-record filtering.
* **Case 2** (``lam < vm``): in each brick, the active records are the
  prefix with ``vmin <= lam``; bricks whose index entry already shows
  ``min vmin > lam`` are skipped with **zero** I/O.

Both cases touch only blocks that contain at least one active record
(plus at most one terminator block per Case-2 brick), which is the source
of the O(log_B(N/B) + T/B) bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.intervals import IntervalSet


@dataclass
class TreeNode:
    """One node of the compact interval tree.

    ``entry_*`` arrays are the node's index list, one element per
    non-empty brick, ordered by descending ``vmax`` (the on-disk brick
    order inside the node's run).
    """

    node_id: int
    split: float
    lo_code: int
    hi_code: int
    left: int = -1
    right: int = -1
    entry_vmax: np.ndarray = field(default_factory=lambda: np.empty(0))
    entry_min_vmin: np.ndarray = field(default_factory=lambda: np.empty(0))
    entry_start: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    entry_count: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    brick_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_bricks(self) -> int:
        return len(self.entry_vmax)

    @property
    def run_start(self) -> int:
        """First record position of the node's contiguous brick run."""
        return int(self.entry_start[0]) if self.n_bricks else 0

    @property
    def run_count(self) -> int:
        return int(self.entry_count.sum()) if self.n_bricks else 0


@dataclass(frozen=True)
class SequentialRun:
    """Case 1: one sequential read; *every* record in it is active."""

    start: int
    count: int
    node_id: int


@dataclass(frozen=True)
class BrickPrefixScan:
    """Case 2: incremental prefix read of one brick.

    The reader consumes records while ``vmin <= lam`` holds, stopping at
    the first violation or after ``max_count`` records (the brick end).
    """

    start: int
    max_count: int
    node_id: int
    brick_id: int


@dataclass
class QueryPlan:
    """The I/O plan for one isovalue: which runs to read and how."""

    lam: float
    runs: list
    nodes_visited: int = 0
    case1_nodes: int = 0
    case2_nodes: int = 0
    bricks_skipped: int = 0

    @property
    def n_sequential_runs(self) -> int:
        return sum(isinstance(r, SequentialRun) for r in self.runs)

    @property
    def n_prefix_scans(self) -> int:
        return sum(isinstance(r, BrickPrefixScan) for r in self.runs)


class CompactIntervalTree:
    """The compact interval tree index over a set of metacell intervals.

    Build with :meth:`build`.  The tree fixes the *record layout order*:
    ``record_order[p]`` is the input interval index stored at disk record
    position ``p``.  Bricks and node runs are contiguous in this order,
    which is what makes Case 1 a single bulk read.

    Attributes
    ----------
    endpoints:
        Sorted distinct endpoint values (``n`` total).
    nodes:
        Tree nodes; ``nodes[0]`` is the root when the tree is non-empty.
    record_order, record_vmins, record_ids:
        Per-record layout arrays (length ``N``): original interval index,
        vmin, and payload id at each record position.
    brick_node, brick_vmax, brick_min_vmin, brick_start, brick_count:
        Flat brick table in layout order (used by striping and writers).
    """

    def __init__(self) -> None:
        self.endpoints: np.ndarray = np.empty(0)
        self.nodes: list[TreeNode] = []
        self.record_order: np.ndarray = np.empty(0, dtype=np.int64)
        self.record_vmins: np.ndarray = np.empty(0)
        self.record_ids: np.ndarray = np.empty(0, dtype=np.uint32)
        self.brick_node: np.ndarray = np.empty(0, dtype=np.int64)
        self.brick_vmax: np.ndarray = np.empty(0)
        self.brick_min_vmin: np.ndarray = np.empty(0)
        self.brick_start: np.ndarray = np.empty(0, dtype=np.int64)
        self.brick_count: np.ndarray = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, intervals: IntervalSet) -> "CompactIntervalTree":
        """Build the tree and the brick layout for an interval set."""
        tree = cls()
        n_int = len(intervals)
        if n_int == 0:
            return tree

        vmin = intervals.vmin
        vmax = intervals.vmax
        endpoints = np.unique(np.concatenate([vmin, vmax]))
        tree.endpoints = endpoints
        min_code = np.searchsorted(endpoints, vmin).astype(np.int64)
        max_code = np.searchsorted(endpoints, vmax).astype(np.int64)

        order_chunks: list[np.ndarray] = []
        brick_node: list[int] = []
        brick_vmax: list = []
        brick_min_vmin: list = []
        brick_start: list[int] = []
        brick_count: list[int] = []
        next_start = 0

        # Stack items: (interval-index array, parent node id, side).
        # Preorder creation (node, then left, then right) fixes the layout.
        stack: list[tuple[np.ndarray, int, str]] = [
            (np.arange(n_int, dtype=np.int64), -1, "root")
        ]
        while stack:
            idx, parent, side = stack.pop()
            codes = np.unique(np.concatenate([min_code[idx], max_code[idx]]))
            vm_code = int(codes[(len(codes) - 1) // 2])

            node_id = len(tree.nodes)
            node = TreeNode(
                node_id=node_id,
                split=endpoints[vm_code],
                lo_code=int(codes[0]),
                hi_code=int(codes[-1]),
            )
            tree.nodes.append(node)
            if parent >= 0:
                if side == "left":
                    tree.nodes[parent].left = node_id
                else:
                    tree.nodes[parent].right = node_id

            mn, mx = min_code[idx], max_code[idx]
            own_mask = (mn <= vm_code) & (mx >= vm_code)
            own = idx[own_mask]

            if len(own):
                # Descending vmax, then ascending vmin, then id (determinism).
                sort_key = np.lexsort(
                    (intervals.ids[own], min_code[own], -max_code[own])
                )
                own = own[sort_key]
                own_max = max_code[own]
                # Brick boundaries: runs of equal vmax.
                boundary = np.flatnonzero(np.diff(own_max)) + 1
                starts_local = np.concatenate([[0], boundary])
                stops_local = np.concatenate([boundary, [len(own)]])
                first_bid = len(brick_vmax)
                for s, e in zip(starts_local, stops_local):
                    brick_node.append(node_id)
                    brick_vmax.append(vmax[own[s]])
                    brick_min_vmin.append(vmin[own[s]])
                    brick_start.append(next_start + int(s))
                    brick_count.append(int(e - s))
                node.brick_ids = np.arange(first_bid, len(brick_vmax), dtype=np.int64)
                node.entry_vmax = np.asarray(
                    [brick_vmax[b] for b in node.brick_ids], dtype=vmax.dtype
                )
                node.entry_min_vmin = np.asarray(
                    [brick_min_vmin[b] for b in node.brick_ids], dtype=vmin.dtype
                )
                node.entry_start = np.asarray(
                    [brick_start[b] for b in node.brick_ids], dtype=np.int64
                )
                node.entry_count = np.asarray(
                    [brick_count[b] for b in node.brick_ids], dtype=np.int64
                )
                order_chunks.append(own)
                next_start += len(own)

            left_idx = idx[mx < vm_code]
            right_idx = idx[mn > vm_code]
            # Push right first so the left subtree is processed (and laid
            # out on disk) immediately after its parent.
            if len(right_idx):
                stack.append((right_idx, node_id, "right"))
            if len(left_idx):
                stack.append((left_idx, node_id, "left"))

        tree.record_order = (
            np.concatenate(order_chunks) if order_chunks else np.empty(0, dtype=np.int64)
        )
        tree.record_vmins = vmin[tree.record_order]
        tree.record_ids = intervals.ids[tree.record_order]
        tree.brick_node = np.asarray(brick_node, dtype=np.int64)
        tree.brick_vmax = np.asarray(brick_vmax, dtype=vmax.dtype)
        tree.brick_min_vmin = np.asarray(brick_min_vmin, dtype=vmin.dtype)
        tree.brick_start = np.asarray(brick_start, dtype=np.int64)
        tree.brick_count = np.asarray(brick_count, dtype=np.int64)
        return tree

    # ------------------------------------------------------------------
    # Shape and size
    # ------------------------------------------------------------------

    @property
    def n_records(self) -> int:
        return len(self.record_order)

    @property
    def n_bricks(self) -> int:
        return len(self.brick_vmax)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_index_entries(self) -> int:
        """Total brick index entries — the O(n log n) quantity."""
        return self.n_bricks

    def height(self) -> int:
        """Longest root-to-leaf path (edges); 0 for a single node."""
        if not self.nodes:
            return 0
        depth = {0: 0}
        best = 0
        for node in self.nodes:  # parents precede children in creation order
            d = depth[node.node_id]
            best = max(best, d)
            for child in (node.left, node.right):
                if child >= 0:
                    depth[child] = d + 1
        return best

    def index_size_bytes(
        self, value_bytes: int | None = None, pointer_bytes: int = 4, count_bytes: int = 4
    ) -> int:
        """Size of the index per the paper's accounting.

        Each entry has three fields (brick vmax, brick min vmin, disk
        pointer); each node additionally stores its split value and its
        brick count.  For the Richtmyer–Meshkov dataset (one-byte
        scalars) this reproduces the paper's ~6 KB figure.
        """
        if value_bytes is None:
            value_bytes = int(self.endpoints.dtype.itemsize) if len(self.endpoints) else 1
        per_entry = 2 * value_bytes + pointer_bytes
        per_node = value_bytes + count_bytes
        return self.n_index_entries * per_entry + self.n_nodes * per_node

    # ------------------------------------------------------------------
    # Query planning
    # ------------------------------------------------------------------

    def plan_query(self, lam: float) -> QueryPlan:
        """Compute the I/O plan for isovalue ``lam`` (Cases 1 and 2)."""
        plan = QueryPlan(lam=float(lam), runs=[])
        if not self.nodes:
            return plan
        node_id = 0
        while node_id >= 0:
            node = self.nodes[node_id]
            plan.nodes_visited += 1
            if lam >= float(node.split):
                # Case 1: bricks with vmax >= lam form a prefix of the run.
                if node.n_bricks:
                    rev = node.entry_vmax[::-1].astype(np.float64)
                    k = node.n_bricks - int(np.searchsorted(rev, lam, side="left"))
                    if k > 0:
                        count = int(node.entry_count[:k].sum())
                        plan.runs.append(
                            SequentialRun(start=node.run_start, count=count, node_id=node_id)
                        )
                        plan.case1_nodes += 1
                node_id = node.right
            else:
                # Case 2: per-brick vmin prefixes; skip bricks whose index
                # entry already proves emptiness (no I/O for them).
                if node.n_bricks:
                    active = node.entry_min_vmin.astype(np.float64) <= lam
                    plan.bricks_skipped += int((~active).sum())
                    if active.any():
                        plan.case2_nodes += 1
                    for j in np.flatnonzero(active):
                        plan.runs.append(
                            BrickPrefixScan(
                                start=int(node.entry_start[j]),
                                max_count=int(node.entry_count[j]),
                                node_id=node_id,
                                brick_id=int(node.brick_ids[j]),
                            )
                        )
                node_id = node.left
        return plan

    # ------------------------------------------------------------------
    # In-memory evaluation (simulation / testing — no device involved)
    # ------------------------------------------------------------------

    def active_record_ranges(self, lam: float) -> "list[tuple[int, int]]":
        """Half-open record-position ranges of all active records."""
        ranges: list[tuple[int, int]] = []
        for run in self.plan_query(lam).runs:
            if isinstance(run, SequentialRun):
                if run.count:
                    ranges.append((run.start, run.start + run.count))
            else:
                seg = self.record_vmins[run.start : run.start + run.max_count]
                k = int(np.searchsorted(seg.astype(np.float64), lam, side="right"))
                if k:
                    ranges.append((run.start, run.start + k))
        return ranges

    def query_record_positions(self, lam: float) -> np.ndarray:
        """All active record positions (unsorted across runs)."""
        ranges = self.active_record_ranges(lam)
        if not ranges:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(a, b, dtype=np.int64) for a, b in ranges])

    def query_ids(self, lam: float) -> np.ndarray:
        """Sorted payload ids of active records (in-memory fast path)."""
        return np.sort(self.record_ids[self.query_record_positions(lam)])

    def query_count(self, lam: float) -> int:
        """Number of active records for ``lam`` (in-memory fast path)."""
        return sum(b - a for a, b in self.active_record_ranges(lam))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, intervals: IntervalSet) -> None:
        """Check every structural invariant; raise AssertionError on failure.

        Intended for tests and for debugging custom builders.
        """
        n = self.n_records
        assert n == len(intervals), f"{n} records != {len(intervals)} intervals"
        assert sorted(self.record_order.tolist()) == list(range(n)), (
            "record_order is not a permutation"
        )
        # Bricks tile [0, N) contiguously in layout order.
        if self.n_bricks:
            order = np.argsort(self.brick_start)
            starts = self.brick_start[order]
            counts = self.brick_count[order]
            assert starts[0] == 0
            assert np.all(starts[1:] == starts[:-1] + counts[:-1]), "brick gap/overlap"
            assert starts[-1] + counts[-1] == n
        seen_intervals = 0
        for node in self.nodes:
            vm = float(node.split)
            prev_stop = None
            prev_vmax = None
            for j in range(node.n_bricks):
                b = int(node.brick_ids[j])
                s, c = int(self.brick_start[b]), int(self.brick_count[b])
                assert c > 0, f"empty brick {b} stored at node {node.node_id}"
                if prev_stop is not None:
                    assert s == prev_stop, f"node {node.node_id} run not contiguous"
                prev_stop = s + c
                bv = float(self.brick_vmax[b])
                if prev_vmax is not None:
                    assert bv < prev_vmax, f"node {node.node_id} bricks not desc by vmax"
                prev_vmax = bv
                members = self.record_order[s : s + c]
                mvmin = intervals.vmin[members].astype(np.float64)
                mvmax = intervals.vmax[members].astype(np.float64)
                assert np.all(mvmax == bv), "brick member vmax mismatch"
                assert np.all(np.diff(mvmin) >= 0), "brick vmins not ascending"
                assert float(self.brick_min_vmin[b]) == float(mvmin[0])
                assert np.all(mvmin <= vm) and bv >= vm, (
                    f"interval at node {node.node_id} does not contain split"
                )
                seen_intervals += c
        assert seen_intervals == n, "intervals lost or duplicated across nodes"
