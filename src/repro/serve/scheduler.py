"""Weighted deficit-round-robin (DRR) across tenants, starvation-free.

Classic DRR (Shreedhar & Varghese) generalised to weighted tenants and
to "packets" that are whole isosurface queries whose size is their
estimated modeled service time:

* tenants are visited in a fixed round-robin order (sorted by name, so
  the schedule is a pure function of config — no dict-order hazards);
* on each visit to a backlogged tenant its deficit counter grows by
  ``quantum * weight``; the head-of-queue job is dispatched while its
  estimated cost fits the deficit, which is then charged;
* a tenant whose queue drains forfeits its leftover deficit (the
  classic rule that keeps counters bounded).

**Deficit-counter invariant (starvation-freedom).**  While tenant ``i``
stays backlogged, every full round adds exactly ``quantum * w_i`` to
its deficit and nothing ever removes credit except a dispatch.  Its
head job of cost ``c`` therefore dispatches after at most
``ceil(c / (quantum * w_i))`` rounds — bulk (weight 1) makes provable
progress no matter how much gold traffic exists.  The scheduler records
per-tenant ``max_service_gap_rounds`` so tests (and the soak benchmark)
can assert the bound instead of trusting the argument.

**Preemption hook.**  Gold may preempt bulk at brick-batch boundaries
(the server decides *when*); the scheduler contributes two pieces:
:meth:`DeficitRoundRobin.pop_tier` hands the freed slot to the oldest
waiting gold job directly (charging its cost, possibly driving that
tenant's deficit negative — the debt is repaid by the same quantum flow
that guarantees the invariant), and
:meth:`DeficitRoundRobin.requeue_front` puts the preempted victim back
at the head of its tenant's queue so it resumes before that tenant's
newer work.
"""

from __future__ import annotations

import math
from collections import deque

from repro.serve.traffic import TenantSpec


class DeficitRoundRobin:
    """One dispatch queue per tenant, served by weighted DRR.

    ``quantum`` is the base credit (modeled seconds of service) a
    weight-1 tenant earns per round.
    """

    def __init__(self, tenants: "tuple[TenantSpec, ...]", quantum: float) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        if not tenants:
            raise ValueError("need at least one tenant")
        self.quantum = quantum
        self._specs = {t.name: t for t in tenants}
        self._order = sorted(self._specs)
        self._queues: "dict[str, deque]" = {n: deque() for n in self._order}
        self._deficit: "dict[str, float]" = {n: 0.0 for n in self._order}
        self._cursor = 0
        #: Tenant whose round-robin turn is in progress (already credited
        #: this turn); cleared when the cursor moves on.
        self._turn_open: "str | None" = None
        # -- invariant introspection --------------------------------------
        self.rounds = 0
        self.services = {n: 0 for n in self._order}
        #: Per tenant: consecutive *backlogged* rounds since its last
        #: service, running counter and observed maximum.  The maximum is
        #: what the starvation-freedom tests bound via :meth:`gap_bound`.
        self._starved_rounds = {n: 0 for n in self._order}
        self.max_service_gap_rounds = {n: 0 for n in self._order}

    # -- queue state -----------------------------------------------------

    @property
    def backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def tier_backlog(self, tier: str) -> int:
        return sum(
            len(self._queues[n]) for n in self._order
            if self._specs[n].tier == tier
        )

    def queued_jobs(self):
        """Every queued job, in tenant order then FIFO (for backlog
        estimates; not the dispatch order)."""
        for name in self._order:
            yield from self._queues[name]

    def deficit(self, tenant: str) -> float:
        return self._deficit[tenant]

    def enqueue(self, job) -> None:
        self._queues[job.request.tenant].append(job)

    def requeue_front(self, job) -> None:
        """Return a preempted job to the head of its tenant's queue."""
        self._queues[job.request.tenant].appendleft(job)

    # -- dispatch --------------------------------------------------------

    def gap_bound(self, tenant: str, max_cost: float) -> int:
        """Rounds within which a backlogged ``tenant`` must be served
        when no queued job costs more than ``max_cost`` (the invariant
        the tests assert against ``max_service_gap_rounds``)."""
        w = self._specs[tenant].share_weight
        return math.ceil(max_cost / (self.quantum * w)) + 1

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._order)
        self._turn_open = None
        if self._cursor == 0:
            self.rounds += 1
            for name in self._order:
                if self._queues[name]:
                    self._starved_rounds[name] += 1
                    self.max_service_gap_rounds[name] = max(
                        self.max_service_gap_rounds[name],
                        self._starved_rounds[name],
                    )
                else:
                    self._starved_rounds[name] = 0

    def _record_service(self, name: str) -> None:
        self._starved_rounds[name] = 0
        self.services[name] += 1

    def next_job(self):
        """Dispatch the next job under DRR, or None when idle.

        Bounded: each full scan credits every backlogged tenant one
        quantum, so some head job fits within
        ``max_cost / (quantum * min_weight)`` scans.
        """
        if self.backlog == 0:
            return None
        n = len(self._order)
        max_cost = max(j.est_cost for j in self.queued_jobs())
        min_w = min(self._specs[t].share_weight for t in self._order)
        scan_limit = n * (math.ceil(max_cost / (self.quantum * min_w)) + 2)
        for _ in range(scan_limit):
            name = self._order[self._cursor]
            q = self._queues[name]
            if not q:
                self._advance()
                continue
            if self._turn_open != name:
                self._deficit[name] += self.quantum * self._specs[name].share_weight
                self._turn_open = name
            job = q[0]
            if job.est_cost <= self._deficit[name] + 1e-12:
                q.popleft()
                self._deficit[name] -= job.est_cost
                self._record_service(name)
                if not q:
                    # Classic DRR: an idle tenant keeps no credit.
                    self._deficit[name] = 0.0
                    self._advance()
                return job
            self._advance()
        raise RuntimeError(
            "DRR failed to dispatch within its provable bound - "
            "deficit invariant violated"
        )

    def refund(self, tenant: str, amount: float) -> None:
        """Return ``amount`` of charged credit to ``tenant``'s deficit.

        Used by the serving layer when a dispatched job consumed no
        service after all (it coalesced onto an in-flight extraction):
        the cost charged at dispatch is handed back so coalescing never
        eats into a tenant's fair share.  The refund is capped at zero
        from below only by arithmetic — debt from preemption grants may
        legitimately be repaid here.
        """
        if amount < 0:
            raise ValueError(f"refund must be >= 0, got {amount}")
        self._deficit[tenant] += amount
        if not self._queues[tenant]:
            # Keep the classic empty-queue rule: an idle tenant holds no
            # positive credit.
            self._deficit[tenant] = min(self._deficit[tenant], 0.0)

    def pop_tier(self, tier: str):
        """Dispatch the oldest queued job of ``tier`` out of band (the
        preemption grant), or None.  Its cost is still charged to the
        owning tenant's deficit, so preemption spends — never creates —
        fair-share credit."""
        best_name = None
        best = None
        for name in self._order:
            q = self._queues[name]
            if not q or self._specs[name].tier != tier:
                continue
            head = q[0]
            if best is None or head.request.request_id < best.request.request_id:
                best, best_name = head, name
        if best is None:
            return None
        self._queues[best_name].popleft()
        self._deficit[best_name] -= best.est_cost
        self._record_service(best_name)
        if not self._queues[best_name]:
            # Forfeit leftover credit (classic empty-queue rule) but keep
            # any preemption debt on the books.
            self._deficit[best_name] = min(self._deficit[best_name], 0.0)
        return best
