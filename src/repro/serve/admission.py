"""Admission control: shed at the front door, never time out downstream.

The overload philosophy (docs/robustness.md, "Overload & admission"):
a request that cannot meet its contract must be rejected *immediately
and explainably*, not admitted to rot in a queue until its deadline
passes inside the cluster.  Three gates run in a fixed order on every
arrival, each producing a typed :class:`RejectedQuery` on failure:

1. **bounded queue** — the global backlog may not exceed
   ``max_queue_depth`` (reason ``queue_full``);
2. **per-tenant token bucket** — each tenant's arrival rate is capped
   at its contracted ``rate``/``burst`` (reason ``tenant_throttled``);
3. **deadline feasibility** — if the estimated start delay (backlog
   modeled-seconds ahead of the request, divided across executors) plus
   the request's own estimated service time already exceeds its
   deadline budget, admitting it would only manufacture a guaranteed
   miss (reason ``deadline_infeasible``).  The estimate is the
   block-exact I/O lower bound from
   :meth:`~repro.parallel.cluster.SimulatedCluster.estimate_extract_time`
   against the cluster's *live* ownership map — on an elastic cluster
   the server re-estimates whenever the ownership epoch changes, so
   feasibility tracks the capacity the query will actually run on, not
   the node count at server start.  Lower bound either way, so this
   gate only ever errs toward admitting.

Two more shed reasons come from outside admission proper: at the
brownout ladder's deepest degradation level the bulk tier is shed
outright (reason ``brownout_bulk``), and a query whose queue wait has
consumed its entire contract by dispatch time is shed at the executor
door (reason ``deadline_elapsed``) rather than run with nothing left —
the server promises every terminal state is ``ok``/``degraded``/
``shed``, never a zero-coverage ``failed``.

Everything runs on the modeled clock and touches no randomness, so shed
decisions are a deterministic function of (trace seed, config) — pinned
by ``tests/test_serving_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.traffic import QueryRequest

#: Typed shed reasons.
SHED_QUEUE_FULL = "queue_full"
SHED_DEADLINE_INFEASIBLE = "deadline_infeasible"
SHED_DEADLINE_ELAPSED = "deadline_elapsed"
SHED_TENANT_THROTTLED = "tenant_throttled"
SHED_BROWNOUT_BULK = "brownout_bulk"

SHED_REASONS = (
    SHED_QUEUE_FULL,
    SHED_DEADLINE_INFEASIBLE,
    SHED_DEADLINE_ELAPSED,
    SHED_TENANT_THROTTLED,
    SHED_BROWNOUT_BULK,
)


@dataclass(frozen=True)
class RejectedQuery:
    """A typed shed decision: which request, why, and when."""

    request: QueryRequest
    reason: str
    time: float
    detail: str = ""

    def __post_init__(self) -> None:
        if self.reason not in SHED_REASONS:
            raise ValueError(
                f"reason must be one of {SHED_REASONS}, got {self.reason!r}"
            )


class TokenBucket:
    """Deterministic token bucket on the modeled clock.

    Starts full (``capacity`` tokens); refills at ``rate`` tokens per
    modeled second, saturating at capacity.  ``try_take`` both refills
    to ``now`` and consumes — callers must present non-decreasing
    timestamps, which the event loop guarantees.
    """

    def __init__(self, rate: float, capacity: float) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("token bucket rate and capacity must be > 0")
        self.rate = rate
        self.capacity = capacity
        self.level = capacity
        self._last = 0.0

    def refill(self, now: float) -> None:
        if now > self._last:
            self.level = min(self.capacity, self.level + (now - self._last) * self.rate)
            self._last = now

    def try_take(self, now: float, tokens: float = 1.0) -> bool:
        self.refill(now)
        if self.level >= tokens - 1e-12:
            self.level -= tokens
            return True
        return False


class AdmissionController:
    """The three admission gates plus the brownout bulk-shed gate.

    Parameters
    ----------
    tenants:
        The :class:`~repro.serve.traffic.TenantSpec` set; one token
        bucket is kept per tenant.
    max_queue_depth:
        Bound on the number of queued (admitted, not yet dispatched)
        requests across all tenants.
    slack:
        Multiplier on the deadline-feasibility comparison: a request is
        infeasible when ``start_delay + est_cost > budget * slack``.
        Values above 1 admit optimistically (the estimate is a lower
        bound anyway); below 1 shed conservatively.
    """

    def __init__(self, tenants, max_queue_depth: int, slack: float = 1.0) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if slack <= 0:
            raise ValueError(f"slack must be > 0, got {slack}")
        self.max_queue_depth = max_queue_depth
        self.slack = slack
        self._buckets = {
            t.name: TokenBucket(t.rate, t.burst) for t in tenants
        }

    def admit(
        self,
        request: QueryRequest,
        now: float,
        queue_depth: int,
        start_delay: float,
        est_cost: float,
        shed_bulk: bool = False,
        cached_fraction: float = 0.0,
    ) -> "RejectedQuery | None":
        """Run the gates; return a :class:`RejectedQuery` or None (admitted).

        ``start_delay`` is the server's estimate of modeled seconds
        until a slot frees for this request; ``est_cost`` is the
        request's own estimated service time; ``shed_bulk`` reflects the
        brownout ladder's deepest level.  ``cached_fraction`` is the
        fraction of the request's stripes the result cache can serve
        I/O-free: the feasibility gate discounts the service estimate by
        it (``est_cost * (1 - cached_fraction)``), so a request that
        would be infeasible cold is still admitted when the cache makes
        it cheap — the cross-query reuse dividend at the front door.
        """
        if request.tenant not in self._buckets:
            raise KeyError(f"unknown tenant {request.tenant!r}")
        if not 0.0 <= cached_fraction <= 1.0:
            raise ValueError(
                f"cached_fraction must be in [0, 1], got {cached_fraction}"
            )
        if shed_bulk and request.tier == "bulk":
            return RejectedQuery(
                request, SHED_BROWNOUT_BULK, now,
                detail="brownout ladder at shed-bulk level",
            )
        if queue_depth >= self.max_queue_depth:
            return RejectedQuery(
                request, SHED_QUEUE_FULL, now,
                detail=f"queue depth {queue_depth} >= {self.max_queue_depth}",
            )
        if not self._buckets[request.tenant].try_take(now):
            return RejectedQuery(
                request, SHED_TENANT_THROTTLED, now,
                detail=f"tenant {request.tenant} over contracted rate",
            )
        effective_cost = est_cost * (1.0 - cached_fraction)
        if start_delay + effective_cost > request.budget * self.slack:
            return RejectedQuery(
                request, SHED_DEADLINE_INFEASIBLE, now,
                detail=(
                    f"estimated start delay {start_delay:.4f}s + service "
                    f"{effective_cost:.4f}s exceeds budget "
                    f"{request.budget:.4f}s"
                ),
            )
        return None
