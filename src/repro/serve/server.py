"""The multi-tenant serving front-end over ``SimulatedCluster``.

:class:`QueryServer` runs a :class:`~repro.serve.traffic.TrafficTrace`
through a discrete-event loop on the **modeled clock**: arrivals pass
admission control (:mod:`repro.serve.admission`), queue under weighted
deficit-round-robin (:mod:`repro.serve.scheduler`), execute on a fixed
pool of executor slots against the cluster, and a brownout controller
(:mod:`repro.serve.brownout`) watches the load signals between events.
No wall time is consulted anywhere, so a ``(trace, config)`` pair maps
to exactly one :class:`ServingReport` — the determinism the soak
benchmark asserts byte for byte.

Every request ends in **exactly one** terminal state:

* ``ok`` — completed with full coverage;
* ``degraded`` — completed with partial coverage (deadline cut or an
  unrecovered node failure inside the cluster);
* ``shed`` — rejected at admission with a typed
  :class:`~repro.serve.admission.RejectedQuery`;
* ``failed`` — dispatched but delivered zero coverage.  Should never
  happen: a budget exhausted by queue wait is shed at the executor door
  (``deadline_elapsed``) instead of dispatched, and an elastic cluster
  failover keeps at least one copy of every stripe reachable.  A
  ``failed`` terminal therefore indicates real data loss.

Deadline accounting composes through
:meth:`~repro.core.deadline.Deadline.consume`: the budget a query
actually runs under is its contract budget minus its queue wait, scaled
by the brownout ladder's shrink factor — so queue time and degradation
are charged against the same end-to-end contract the client sees.

Preemption: when a gold request arrives and every slot is busy, the
bulk job with the latest finish time is cut at its next *brick-batch
boundary* (service time divided into ``brick_batches`` equal batches —
the granularity at which a node query can be cleanly suspended between
brick reads).  The victim re-queues at the head of its tenant's queue
and resumes its remaining service later; the freed slot goes to the
oldest waiting gold request via
:meth:`~repro.serve.scheduler.DeficitRoundRobin.pop_tier`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deadline import Deadline
from repro.io.cache import CacheOptions
from repro.io.cost_model import latency_quantile
from repro.obs.metrics import SlidingWindow
from repro.obs.tracer import NULL_TRACER, coerce_tracer
from repro.parallel.cluster import ExtractRequest
from repro.serve.admission import (
    SHED_DEADLINE_ELAPSED,
    AdmissionController,
    RejectedQuery,
)
from repro.serve.brownout import BrownoutConfig, BrownoutController
from repro.serve.scheduler import DeficitRoundRobin
from repro.serve.traffic import TIERS, QueryRequest, TenantSpec, TrafficTrace

#: Terminal request states.
TERMINAL_STATES = ("ok", "degraded", "shed", "failed")


@dataclass(frozen=True)
class ServeConfig:
    """Everything configurable about the serving front-end."""

    tenants: "tuple[TenantSpec, ...]"
    #: Concurrent query slots (the cluster executes one query per slot;
    #: slots model front-end concurrency, not extra disks).
    n_executors: int = 2
    #: Bound on queued (admitted, undispatched) requests.
    max_queue_depth: int = 32
    #: DRR base credit per round, in estimated modeled seconds.
    quantum: float = 0.02
    #: Admission feasibility slack (see AdmissionController).
    admission_slack: float = 1.0
    #: Hedge replica reads (disabled by brownout level >= 2).
    hedge: bool = False
    #: Speculative straggler re-execution inside the cluster.
    speculate: bool = False
    #: Allow gold to preempt running bulk jobs at batch boundaries.
    preemption: bool = True
    #: Brick-batch boundaries per query (preemption granularity).
    brick_batches: int = 8
    #: Brownout ladder thresholds.
    brownout: BrownoutConfig = field(default_factory=BrownoutConfig)
    #: Completions in the sliding window feeding the p99 signal.
    latency_window: int = 64
    #: Cache configuration (:class:`~repro.io.cache.CacheOptions`).
    #: ``result_cache_bytes`` attaches a λ-keyed result cache (reused
    #: from the cluster's own when it has one); ``coalesce`` lets
    #: concurrent same-λ-bucket requests share one in-flight extraction.
    #: None — the default — disables both, the pre-cache behaviour.
    cache: "CacheOptions | None" = None
    #: Extraction-kernel backend every dispatched query runs with
    #: (resolved through :mod:`repro.mc.backends`; cost estimates and
    #: result-cache probes key on it).
    backend: str = "mc-batch"

    def __post_init__(self) -> None:
        if self.backend != "mc-batch":
            from repro.mc.backends import validate_backend

            validate_backend(self.backend)
        if self.n_executors < 1:
            raise ValueError(f"n_executors must be >= 1, got {self.n_executors}")
        if self.brick_batches < 1:
            raise ValueError(f"brick_batches must be >= 1, got {self.brick_batches}")
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.cache is not None and not isinstance(self.cache, CacheOptions):
            raise TypeError(
                f"cache must be a CacheOptions (got "
                f"{type(self.cache).__name__})"
            )


@dataclass
class _Job:
    """Mutable per-request serving state (internal)."""

    request: QueryRequest
    est_cost: float
    dispatched_at: "float | None" = None
    #: Modeled service seconds of the whole query (set at first dispatch).
    service_total: float = 0.0
    #: Service seconds completed in earlier (preempted) segments.
    service_done: float = 0.0
    segment_start: float = 0.0
    finish_at: float = 0.0
    preempt_at: "float | None" = None
    preemptions: int = 0
    result: "object | None" = None
    effective_budget: float = 0.0
    #: Same-λ jobs riding on this in-flight extraction (they complete
    #: with it, charging only their own queue wait).
    waiters: "list" = field(default_factory=list)
    #: Same-bucket different-λ jobs parked until this extraction lands
    #: (so they dispatch against a warm cache instead of racing it).
    followers: "list" = field(default_factory=list)
    #: ``(λ-bucket, epoch)`` under which this job leads the in-flight
    #: table, or None.
    inflight_key: "tuple | None" = None


@dataclass
class ServedRecord:
    """One request's terminal accounting (the report row)."""

    request_id: int
    tenant: str
    tier: str
    lam: float
    arrival: float
    budget: float
    state: str
    #: Shed reason for ``state == "shed"``, else "".
    reason: str = ""
    queue_wait: float = 0.0
    service_time: float = 0.0
    finish: float = 0.0
    latency: float = 0.0
    coverage: float = 0.0
    preemptions: int = 0
    met_deadline: bool = False
    #: Triangle count the query delivered (0 for shed requests) — the
    #: elastic soak compares ok-state counts against a reference run to
    #: prove migrations never changed an answer.
    triangles: int = 0
    #: True when this request attached to another request's in-flight
    #: extraction instead of running its own (service_time is 0; the
    #: answer is the leader's, bit for bit).
    coalesced: bool = False

    def as_dict(self) -> dict:
        return {
            "request_id": self.request_id, "tenant": self.tenant,
            "tier": self.tier, "lam": self.lam, "arrival": self.arrival,
            "budget": self.budget, "state": self.state, "reason": self.reason,
            "queue_wait": self.queue_wait, "service_time": self.service_time,
            "finish": self.finish, "latency": self.latency,
            "coverage": self.coverage, "preemptions": self.preemptions,
            "met_deadline": self.met_deadline, "triangles": self.triangles,
            "coalesced": self.coalesced,
        }


@dataclass
class ServingReport:
    """Everything one serving run produced, with derived summaries."""

    records: "list[ServedRecord]"
    transitions: "list"
    horizon: float
    scheduler_gaps: "dict[str, int]" = field(default_factory=dict)
    scheduler_gap_bounds: "dict[str, int]" = field(default_factory=dict)
    #: Block-cache totals across the cluster's node disks (zeros when no
    #: node has a cache) — always present so the payload schema is
    #: stable with and without caching.
    cache_stats: "dict[str, float]" = field(default_factory=dict)
    #: λ-keyed result-cache totals (zeros when result reuse is off).
    result_cache_stats: "dict[str, float]" = field(default_factory=dict)

    def by_state(self, state: str) -> "list[ServedRecord]":
        return [r for r in self.records if r.state == state]

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> "list[ServedRecord]":
        """Requests that produced an answer (full or partial)."""
        return [r for r in self.records if r.state in ("ok", "degraded")]

    @property
    def shed_rate(self) -> float:
        n = self.n_requests
        return len(self.by_state("shed")) / n if n else 0.0

    @property
    def goodput(self) -> float:
        """Answered requests per modeled second of trace horizon."""
        if self.horizon <= 0:
            return 0.0
        return len(self.completed) / self.horizon

    def latencies(self, tier: "str | None" = None) -> "list[float]":
        return [
            r.latency for r in self.completed
            if tier is None or r.tier == tier
        ]

    def latency_quantile(self, q: float, tier: "str | None" = None) -> float:
        samples = self.latencies(tier)
        return latency_quantile(samples, q) if samples else 0.0

    @property
    def max_brownout_level(self) -> int:
        return max((t.to_level for t in self.transitions), default=0)

    def to_payload(self) -> dict:
        """Flat metrics + series, shaped for ``BENCH_serving.json``
        (metrics: finite non-negative scalars; series under extra)."""
        counts = {s: len(self.by_state(s)) for s in TERMINAL_STATES}
        shed_by_reason: "dict[str, int]" = {}
        for r in self.by_state("shed"):
            shed_by_reason[r.reason] = shed_by_reason.get(r.reason, 0) + 1
        metrics = {
            "requests": float(self.n_requests),
            "goodput_qps": self.goodput,
            "shed_rate": self.shed_rate,
            "preemptions": float(sum(r.preemptions for r in self.records)),
            "brownout_transitions": float(len(self.transitions)),
            "brownout_max_level": float(self.max_brownout_level),
            "coalesced": float(sum(1 for r in self.records if r.coalesced)),
        }
        for k in ("hits", "misses", "hit_rate", "evictions", "invalidations"):
            metrics[f"cache_{k}"] = float(self.cache_stats.get(k, 0.0))
        for k in (
            "hits", "misses", "hit_rate", "record_hits", "mesh_hits",
            "evictions", "invalidations", "records_from_cache",
        ):
            metrics[f"rcache_{k}"] = float(
                self.result_cache_stats.get(k, 0.0)
            )
        for s in TERMINAL_STATES:
            metrics[f"state_{s}"] = float(counts[s])
        for tier in TIERS:
            if self.latencies(tier):
                metrics[f"latency_p50_{tier}"] = self.latency_quantile(0.50, tier)
                metrics[f"latency_p99_{tier}"] = self.latency_quantile(0.99, tier)
        series = {
            "brownout": [
                [t.time, t.to_level, t.reason] for t in self.transitions
            ],
            "shed_by_reason": shed_by_reason,
            "scheduler_max_service_gap_rounds": self.scheduler_gaps,
            "scheduler_gap_bounds": self.scheduler_gap_bounds,
        }
        return {"metrics": metrics, "series": series}


class QueryServer:
    """Admission + DRR + brownout over one ``SimulatedCluster``.

    Parameters
    ----------
    cluster:
        The :class:`~repro.parallel.cluster.SimulatedCluster` to serve.
    config:
        :class:`ServeConfig`.
    tracer / metrics:
        Optional :class:`~repro.obs.tracer.Tracer` /
        :class:`~repro.obs.metrics.MetricsRegistry`; the tracer gets
        ``serve.brownout`` / ``serve.shed`` instants on a ``serve``
        track, the registry gets ``serve.*`` counters and histograms
        plus the cluster's own per-query publication.
    controller:
        Optional elastic control loop (anything with an
        ``on_tick(now, server)`` method, e.g.
        :class:`~repro.elastic.sim.ElasticController`).  Ticked at the
        brownout evaluation cadence, between queries — never while one
        is in flight, which together with the cluster's epoch fencing
        keeps membership changes invisible to running extractions.
    """

    def __init__(self, cluster, config: ServeConfig,
                 tracer=None, metrics=None, controller=None) -> None:
        self.cluster = cluster
        self.config = config
        self.controller = controller
        self.tracer = coerce_tracer(tracer) if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.admission = AdmissionController(
            config.tenants, config.max_queue_depth, config.admission_slack
        )
        self.scheduler = DeficitRoundRobin(config.tenants, config.quantum)
        self.brownout = BrownoutController(
            config.brownout, metrics=metrics, tracer=self.tracer
        )
        #: Cost estimates keyed by ``(lam, ownership_epoch)``: a scale
        #: event bumps the cluster's epoch, invalidating every cached
        #: estimate at once so admission feasibility tracks live
        #: capacity instead of the node count at server start.
        self._est_cache: "dict[tuple[float, int], float]" = {}
        self._ratio_window = SlidingWindow(config.latency_window)
        self._running: "list[_Job]" = []
        self._records: "dict[int, ServedRecord]" = {}
        self._gold_claims = 0
        #: Leader jobs keyed by ``(λ-bucket, epoch)``; later same-key
        #: requests coalesce onto them instead of re-extracting.
        self._inflight: "dict[tuple, _Job]" = {}
        #: The λ-keyed result cache this server probes and populates:
        #: the cluster's own when it has one (so both layers see the
        #: same entries), else server-owned per ``config.cache``.
        self.result_cache = None
        if config.cache is not None and config.cache.result_cache_bytes > 0:
            self.result_cache = getattr(cluster, "result_cache", None)
            if self.result_cache is None:
                from repro.serve.rcache import ResultCache

                self.result_cache = ResultCache(
                    config.cache.result_cache_bytes,
                    lambda_bucket=config.cache.lambda_bucket,
                )
                if hasattr(cluster, "add_ownership_listener"):
                    cluster.add_ownership_listener(
                        self.result_cache.on_ownership_change
                    )

    # -- helpers ---------------------------------------------------------

    def _estimate(self, lam: float) -> float:
        backend = self.config.backend
        key = (lam, getattr(self.cluster, "ownership_epoch", 0), backend)
        if key not in self._est_cache:
            self._est_cache[key] = self.cluster.estimate_extract_time(
                lam, backend=backend
            )
        return self._est_cache[key]

    def _cached_fraction(self, lam: float) -> float:
        """Fraction of the cluster's stripes whose complete result for
        ``lam`` is sitting in the result cache — the admission gate's
        feasibility discount.  Uses a non-perturbing membership probe so
        estimating cost never skews hit rates or LRU order."""
        rc = self.result_cache
        if rc is None or not hasattr(self.cluster, "_result_fingerprint"):
            return 0.0
        view = rc.view(
            self.cluster._result_fingerprint(),
            getattr(self.cluster, "ownership_epoch", 0),
        )
        p = self.cluster.p
        hits = sum(
            1 for s in range(p)
            if view.mesh_contains(s, lam, False, backend=self.config.backend)
        )
        return hits / p if p else 0.0

    def _backlog_seconds(self, now: float) -> float:
        queued = sum(
            j.est_cost - j.service_done for j in self.scheduler.queued_jobs()
        )
        running = sum(max(0.0, j.finish_at - now) for j in self._running)
        return queued + running

    def _inc(self, name: str, amount: "int | float" = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value)

    # -- event handlers --------------------------------------------------

    def _admit(self, req: QueryRequest, now: float) -> None:
        self._inc("serve.arrivals")
        rejection = self.admission.admit(
            req, now,
            queue_depth=self.scheduler.backlog,
            start_delay=self._backlog_seconds(now) / self.config.n_executors,
            est_cost=self._estimate(req.lam),
            shed_bulk=self.brownout.shed_bulk,
            cached_fraction=self._cached_fraction(req.lam),
        )
        if rejection is not None:
            self._shed(rejection)
            return
        self._inc("serve.admitted")
        job = _Job(request=req, est_cost=self._estimate(req.lam))
        self.scheduler.enqueue(job)
        if (
            self.config.preemption
            and req.tier == "gold"
            and len(self._running) >= self.config.n_executors
        ):
            self._arm_preemption(now)

    def _shed(self, rejection: RejectedQuery) -> None:
        req = rejection.request
        self._records[req.request_id] = ServedRecord(
            request_id=req.request_id, tenant=req.tenant, tier=req.tier,
            lam=req.lam, arrival=req.arrival, budget=req.budget,
            state="shed", reason=rejection.reason, finish=rejection.time,
        )
        self._inc(f"serve.shed.{rejection.reason}")
        if self.tracer.enabled:
            self.tracer.seek("serve", rejection.time)
            self.tracer.instant(
                "serve.shed", track="serve", category="serve",
                args={"request": req.request_id, "tenant": req.tenant,
                      "reason": rejection.reason},
            )

    def _arm_preemption(self, now: float) -> None:
        """Mark the least-urgent running bulk job for preemption at its
        next brick-batch boundary."""
        victims = [
            j for j in self._running
            if j.request.tier == "bulk" and j.preempt_at is None
        ]
        if not victims:
            return
        victim = max(
            victims, key=lambda j: (j.finish_at, j.request.request_id)
        )
        if victim.service_total <= 0.0:
            return
        batch = victim.service_total / self.config.brick_batches
        progress = victim.service_done + (now - victim.segment_start)
        k = int(progress / batch) + 1
        boundary = victim.segment_start + (k * batch - victim.service_done)
        if boundary < victim.finish_at - 1e-12:
            victim.preempt_at = boundary

    def _dispatch(self, job: _Job, now: float) -> None:
        resumed = job.result is not None
        if not resumed:
            queue_wait = now - job.request.arrival
            # Budget re-split: the query runs under what is left of the
            # end-to-end contract after queue wait, scaled by the
            # brownout ladder.
            eff = Deadline(job.request.budget).consume(queue_wait)
            if eff.budget <= 1e-12:
                # Late shed at the executor door: the queue wait has
                # consumed the whole contract, so running the query
                # could only deliver zero coverage.  A typed shed keeps
                # the terminal-state promise (never ``failed``).
                self._shed(RejectedQuery(
                    job.request, SHED_DEADLINE_ELAPSED, now,
                    detail=(
                        f"queue wait {queue_wait:.4f}s consumed budget "
                        f"{job.request.budget:.4f}s before dispatch"
                    ),
                ))
                return
            eff = Deadline(
                eff.budget * self.brownout.budget_factor,
                node_fraction=eff.node_fraction,
            )
            job.effective_budget = eff.budget
            co = self.config.cache
            if co is not None and co.coalesce:
                key = (
                    co.bucket_of(job.request.lam),
                    getattr(self.cluster, "ownership_epoch", 0),
                )
                leader = self._inflight.get(key)
                if leader is not None:
                    # The slot this job was about to take stays free;
                    # the charged DRR credit goes back to its tenant.
                    job.dispatched_at = now
                    self.scheduler.refund(job.request.tenant, job.est_cost)
                    if leader.request.lam == job.request.lam:
                        # Waiter: completes with the leader, charging
                        # only its own queue wait on the modeled clock.
                        leader.waiters.append(job)
                        self._inc("serve.coalesced")
                        self._observe("serve.queue_wait", queue_wait)
                        if self.tracer.enabled:
                            self.tracer.seek("serve", now)
                            self.tracer.instant(
                                "rcache.coalesce", track="serve",
                                category="cache",
                                args={"request": job.request.request_id,
                                      "leader": leader.request.request_id,
                                      "lam": job.request.lam},
                            )
                    else:
                        # Follower (same bucket, different λ): parked
                        # until the leader lands, then re-queued at the
                        # head so it runs against a warm cache instead
                        # of racing the extraction that would feed it.
                        job.dispatched_at = None
                        leader.followers.append(job)
                        self._inc("serve.coalesce_deferred")
                    return
                job.inflight_key = key
                self._inflight[key] = job
            hedge = self.config.hedge and self.brownout.hedging_enabled
            populate = not (
                self.brownout.shed_bulk and job.request.tier == "bulk"
            )
            result = self.cluster.extract(job.request.lam, ExtractRequest(
                deadline=eff,
                hedge=True if hedge else None,
                speculate=self.config.speculate,
                tenant=job.request.tenant,
                metrics=self.metrics,
                cache=co,
                result_cache=self.result_cache,
                cache_populate=populate,
                backend=self.config.backend,
            ))
            job.result = result
            job.service_total = result.total_time
            job.dispatched_at = now
            self._observe("serve.queue_wait", queue_wait)
        job.segment_start = now
        job.finish_at = now + (job.service_total - job.service_done)
        job.preempt_at = None
        self._running.append(job)

    def _preempt(self, job: _Job, now: float) -> None:
        job.service_done += now - job.segment_start
        job.preemptions += 1
        job.preempt_at = None
        self._running.remove(job)
        self.scheduler.requeue_front(job)
        self._gold_claims += 1
        self._inc("serve.preemptions")

    def _terminal_record(self, job: _Job, now: float, result,
                         service_time: float, coalesced: bool) -> None:
        """Write one completed request's report row and window samples."""
        req = job.request
        coverage = result.coverage
        if coverage <= 1e-12:
            state = "failed"
        elif result.degraded or coverage < 1.0 - 1e-12:
            state = "degraded"
        else:
            state = "ok"
        latency = now - req.arrival
        queue_wait = (job.dispatched_at or req.arrival) - req.arrival
        self._records[req.request_id] = ServedRecord(
            request_id=req.request_id, tenant=req.tenant, tier=req.tier,
            lam=req.lam, arrival=req.arrival, budget=req.budget,
            state=state, queue_wait=queue_wait,
            service_time=service_time, finish=now, latency=latency,
            coverage=coverage, preemptions=job.preemptions,
            met_deadline=latency <= req.budget + 1e-9,
            triangles=int(result.n_triangles),
            coalesced=coalesced,
        )
        self._ratio_window.observe(latency / req.budget)
        self._inc(f"serve.completed.{state}")
        self._observe("serve.latency", latency)
        self._observe(f"serve.latency.{req.tier}", latency)

    def _complete(self, job: _Job, now: float) -> None:
        self._running.remove(job)
        if job.inflight_key is not None:
            self._inflight.pop(job.inflight_key, None)
            job.inflight_key = None
        self._terminal_record(
            job, now, job.result, job.service_total, coalesced=False
        )
        # Waiters land with the leader: the identical answer, their own
        # latency accounting, zero service time of their own.
        for w in sorted(job.waiters, key=lambda j: j.request.request_id):
            self._terminal_record(w, now, job.result, 0.0, coalesced=True)
        job.waiters.clear()
        # Followers go back to the head of their queues (reversed so the
        # original arrival order is preserved front-to-back) and will
        # re-dispatch this same tick against the now-warm cache.
        for f in reversed(job.followers):
            self.scheduler.requeue_front(f)
        job.followers.clear()

    def _apply_overlay(self, event, now: float) -> None:
        if event.action == "kill":
            self.cluster.fail_node(event.rank)
        elif event.action == "heal":
            self.cluster.heal_node(event.rank)
        elif event.action in ("partition", "partition-heal"):
            # Chaos-engine split-brain: only meaningful when a network
            # fault session is installed; a no-op otherwise so traces
            # carrying partitions replay unchanged on healthy clusters.
            net = getattr(self.cluster, "net", None)
            if net is not None:
                if event.action == "partition":
                    net.set_partition(event.groups)
                else:
                    net.clear_partition()
        else:
            self.cluster.inject_faults(event.rank, event.plan)
        if self.tracer.enabled:
            self.tracer.seek("serve", now)
            self.tracer.instant(
                "serve.overlay", track="serve", category="fault",
                args={"action": event.action, "rank": event.rank},
            )

    def _dispatch_free_slots(self, now: float) -> None:
        while len(self._running) < self.config.n_executors:
            job = None
            if self._gold_claims > 0:
                job = self.scheduler.pop_tier("gold")
                self._gold_claims = self._gold_claims - 1 if job else 0
            if job is None:
                job = self.scheduler.next_job()
            if job is None:
                return
            self._dispatch(job, now)

    # -- the event loop --------------------------------------------------

    def serve(self, trace: TrafficTrace) -> ServingReport:
        """Run the whole trace to completion and report every request's
        terminal state.  Re-running on a fresh cluster with the same
        trace and config reproduces the report exactly."""
        cfg = self.config
        arrivals = list(trace.requests)
        overlays = list(trace.overlays)
        ai = oi = 0
        next_eval = cfg.brownout.eval_interval
        self._records.clear()
        self._running.clear()

        while True:
            candidates = []
            for job in self._running:
                t = job.preempt_at if job.preempt_at is not None else job.finish_at
                candidates.append(t)
            if oi < len(overlays):
                candidates.append(overlays[oi].time)
            if ai < len(arrivals):
                candidates.append(arrivals[ai].arrival)
            work_pending = (
                ai < len(arrivals) or self._running or self.scheduler.backlog
            )
            if work_pending:
                candidates.append(next_eval)
            if not candidates:
                break
            now = min(candidates)

            # Fixed intra-tick order keeps ties deterministic:
            # completions/preemptions, overlays, brownout, arrivals.
            due = [
                j for j in list(self._running)
                if (j.preempt_at if j.preempt_at is not None else j.finish_at)
                == now
            ]
            for job in sorted(due, key=lambda j: j.request.request_id):
                if job.preempt_at is not None and job.preempt_at == now:
                    self._preempt(job, now)
                else:
                    self._complete(job, now)
            while oi < len(overlays) and overlays[oi].time == now:
                self._apply_overlay(overlays[oi], now)
                oi += 1
            if work_pending and next_eval == now:
                self.brownout.evaluate(
                    now, self.scheduler.backlog, self._ratio_window.quantile(0.99)
                )
                if self.controller is not None:
                    self.controller.on_tick(now, self)
                next_eval += cfg.brownout.eval_interval
            while ai < len(arrivals) and arrivals[ai].arrival == now:
                self._admit(arrivals[ai], now)
                ai += 1
            self._dispatch_free_slots(now)
            if self.metrics is not None:
                self.metrics.set_gauge("serve.queue_depth", self.scheduler.backlog)

        records = [self._records[rid] for rid in sorted(self._records)]
        gap_bounds = {}
        if records:
            lams = {r.lam for r in records}
            max_cost = max(
                (cost for (lam, _epoch, _bk), cost in self._est_cache.items()
                 if lam in lams),
                default=0.0,
            )
            if max_cost > 0:
                gap_bounds = {
                    t.name: self.scheduler.gap_bound(t.name, max_cost)
                    for t in cfg.tenants
                }
        bc = None
        if hasattr(self.cluster, "cache_stats"):
            bc = self.cluster.cache_stats()
        cache_stats = {
            "hits": float(bc.hits) if bc else 0.0,
            "misses": float(bc.misses) if bc else 0.0,
            "hit_rate": float(bc.hit_rate) if bc else 0.0,
            "evictions": float(bc.evictions) if bc else 0.0,
            "invalidations": float(bc.invalidations) if bc else 0.0,
        }
        rc = self.result_cache
        rs = rc.stats if rc is not None else None
        result_cache_stats = {
            "hits": float(rs.hits) if rs else 0.0,
            "misses": float(rs.misses) if rs else 0.0,
            "hit_rate": float(rs.hit_rate) if rs else 0.0,
            "record_hits": float(rs.record_hits) if rs else 0.0,
            "mesh_hits": float(rs.mesh_hits) if rs else 0.0,
            "evictions": float(rs.evictions) if rs else 0.0,
            "invalidations": float(rs.invalidations) if rs else 0.0,
            "records_from_cache": (
                float(rs.records_from_cache) if rs else 0.0
            ),
        }
        if rc is not None and self.metrics is not None:
            from repro.serve.rcache import publish_result_cache_stats

            publish_result_cache_stats(self.metrics, rc)
        return ServingReport(
            records=records,
            transitions=list(self.brownout.transitions),
            horizon=trace.horizon,
            scheduler_gaps=dict(self.scheduler.max_service_gap_rounds),
            scheduler_gap_bounds=gap_bounds,
            cache_stats=cache_stats,
            result_cache_stats=result_cache_stats,
        )
