"""Graceful brownout: a degradation ladder with hysteresis.

Under sustained overload the server does not fall over — it descends a
ladder of increasingly aggressive (but individually cheap and
reversible) degradations, and climbs back up only after the overload
signal has *stayed* clear, so the controller cannot flap:

====  =============  ====================================================
level  name           effect
====  =============  ====================================================
0      normal         full per-query budgets, hedged reads allowed
1      budget-shrink  per-query ``time_budget`` scaled by
                      ``budget_shrink`` — queries return partial
                      coverage (``DeadlineReport`` semantics) instead of
                      holding slots longer
2      no-hedging     level 1 + hedged replica reads disabled: sheds the
                      duplicate replica I/O that hedging costs precisely
                      when every disk is already saturated
3      shed-bulk      level 2 + bulk-tier requests shed at admission
                      with a typed ``brownout_bulk`` rejection
====  =============  ====================================================

Inputs are read through the ``obs`` instruments on the modeled clock:
queue depth, and the p99 of latency-over-budget ratios from a
:class:`~repro.obs.metrics.SlidingWindow` of recent completions.  The
controller steps **down** one level after ``down_after`` consecutive
overloaded evaluations and **up** one level after ``up_after``
consecutive healthy ones; evaluations that are neither reset both
streaks (that is the hysteresis band between the high and low
thresholds).  Every transition emits a ``serve.brownout`` trace instant
and updates the ``serve.brownout.level`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import NULL_TRACER

#: Ladder level names, index == level.
LEVELS = ("normal", "budget-shrink", "no-hedging", "shed-bulk")


@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds and hysteresis for :class:`BrownoutController`."""

    #: Modeled seconds between controller evaluations.
    eval_interval: float = 0.5
    #: Queue depth at/above which an evaluation counts as overloaded.
    queue_high: int = 12
    #: Queue depth at/below which an evaluation can count as healthy.
    queue_low: int = 3
    #: p99(latency / budget) at/above which an evaluation is overloaded.
    over_budget_high: float = 1.0
    #: p99(latency / budget) at/below which an evaluation can be healthy.
    over_budget_low: float = 0.6
    #: Consecutive overloaded evaluations before stepping down a level.
    down_after: int = 2
    #: Consecutive healthy evaluations before stepping back up.
    up_after: int = 4
    #: ``time_budget`` multiplier at levels >= 1.
    budget_shrink: float = 0.5

    def __post_init__(self) -> None:
        if self.eval_interval <= 0:
            raise ValueError(f"eval_interval must be > 0, got {self.eval_interval}")
        if self.queue_low > self.queue_high:
            raise ValueError("queue_low must be <= queue_high")
        if self.over_budget_low > self.over_budget_high:
            raise ValueError("over_budget_low must be <= over_budget_high")
        if self.down_after < 1 or self.up_after < 1:
            raise ValueError("down_after and up_after must be >= 1")
        if not 0.0 < self.budget_shrink <= 1.0:
            raise ValueError(
                f"budget_shrink must be in (0, 1], got {self.budget_shrink}"
            )


@dataclass(frozen=True)
class BrownoutTransition:
    """One recorded ladder step (for the report time series)."""

    time: float
    from_level: int
    to_level: int
    reason: str


class BrownoutController:
    """The ladder state machine (see module docstring)."""

    def __init__(self, config: "BrownoutConfig | None" = None,
                 metrics=None, tracer=None) -> None:
        self.config = config or BrownoutConfig()
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.level = 0
        self._hot = 0
        self._cool = 0
        self.transitions: "list[BrownoutTransition]" = []

    # -- what the current level means ------------------------------------

    @property
    def level_name(self) -> str:
        return LEVELS[self.level]

    @property
    def budget_factor(self) -> float:
        """Per-query ``time_budget`` multiplier at the current level."""
        return 1.0 if self.level == 0 else self.config.budget_shrink

    @property
    def hedging_enabled(self) -> bool:
        return self.level < 2

    @property
    def shed_bulk(self) -> bool:
        return self.level >= 3

    # -- the state machine ----------------------------------------------

    def evaluate(self, now: float, queue_depth: int,
                 p99_over_budget: "float | None") -> int:
        """One controller tick; returns the (possibly new) level.

        ``p99_over_budget`` is the sliding-window p99 of
        latency/budget ratios, or None before any completion.
        """
        cfg = self.config
        overloaded = queue_depth >= cfg.queue_high or (
            p99_over_budget is not None
            and p99_over_budget >= cfg.over_budget_high
        )
        healthy = queue_depth <= cfg.queue_low and (
            p99_over_budget is None or p99_over_budget <= cfg.over_budget_low
        )
        if overloaded:
            self._hot += 1
            self._cool = 0
        elif healthy:
            self._cool += 1
            self._hot = 0
        else:
            # The hysteresis band: neither streak advances.
            self._hot = 0
            self._cool = 0

        if overloaded and self._hot >= cfg.down_after and self.level < len(LEVELS) - 1:
            self._transition(
                now, self.level + 1,
                f"queue={queue_depth} p99_ratio="
                f"{p99_over_budget if p99_over_budget is not None else 'n/a'}",
            )
            self._hot = 0
        elif healthy and self._cool >= cfg.up_after and self.level > 0:
            self._transition(
                now, self.level - 1,
                f"recovered: queue={queue_depth}",
            )
            self._cool = 0
        if self.metrics is not None:
            self.metrics.set_gauge("serve.brownout.level", self.level)
        return self.level

    def _transition(self, now: float, new_level: int, reason: str) -> None:
        old = self.level
        self.level = new_level
        self.transitions.append(BrownoutTransition(now, old, new_level, reason))
        if self.metrics is not None:
            self.metrics.inc("serve.brownout.transitions")
        if self.tracer.enabled:
            self.tracer.seek("serve", now)
            self.tracer.instant(
                "serve.brownout", track="serve", category="serve",
                args={
                    "from": LEVELS[old], "to": LEVELS[new_level],
                    "level": new_level, "reason": reason,
                },
            )
