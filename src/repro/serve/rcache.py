"""λ-keyed cross-query result cache (ROADMAP item 1, result reuse).

Nearby isovalues share most of their I/O: within a brick the records
are sorted by ``vmin``, so the active set for λ is a *prefix* of the
records at a fixed anchor position, and prefixes nest across λ (the
compact tree's Case-1 argument).  A hot isovalue sweep therefore pays
O(queries) disk reads for O(distinct bricks) of distinct bytes — this
module caches the verified decoded bytes once and serves the overlap
from memory.

Two tiers share one byte-budgeted LRU:

* **record tier** — keyed ``('rec', fingerprint, epoch, stripe,
  anchor)``: the longest verified decoded record prefix seen at a plan
  anchor (a Case-1 run start or a Case-2 brick start).  Record
  *positions* are λ-independent, so one entry serves every isovalue
  whose plan touches that anchor; the prefix-nesting property means a
  new λ extends the entry instead of duplicating it.  (This is the
  repo's reading of the issue's ``(fingerprint, epoch, λ-bucket,
  brick)`` key schema: positions subsume the λ-bucket for decoded
  bricks — the bucket keys the triangle tier and request coalescing,
  where results really are λ-exact.)
* **triangle tier** — keyed ``('mesh', fingerprint, epoch, λ-bucket,
  stripe, λ, with_normals)``: a stripe's complete extraction output
  (mesh + optional normals + counts), reusable bit-identically when the
  same isovalue repeats.  Only full-coverage, verification-clean
  results are admitted.

**Invalidation protocol.**  Every key embeds the ownership epoch
captured at the extraction's fence, so entries from a previous epoch
are unreachable the instant :class:`~repro.parallel.cluster.OwnershipMap`
bumps; :meth:`ResultCache.invalidate_epoch` (wired as an ownership
listener) additionally purges them so they stop holding budget.

**Brownout interaction.**  Population is gated per extraction through
:meth:`ResultCache.view`\\ 's ``populate`` flag: under the brownout
ladder's shed-bulk level the serving layer passes ``populate=False``
for bulk-tier work, so an overloaded cache is never churned by the
traffic class being shed — lookups stay allowed (hits only help).

Everything here is plain in-memory bookkeeping on verified arrays; no
modeled I/O is charged for hits, which is the whole point.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from repro.io.layout import MetacellRecords


def cluster_fingerprint(datasets) -> "tuple":
    """A build-identity key for a striped dataset family.

    Derived purely from the preprocessing inputs and layout shape —
    deliberately *not* from object identity, because deterministic
    builds of the same volume produce byte-identical layouts (replicas
    included), which may correctly share cached results.
    """
    ds = datasets[0]
    return (
        ds.meta.name,
        tuple(ds.meta.volume_shape),
        tuple(ds.meta.metacell_shape),
        ds.n_cluster_nodes,
        ds.report.n_metacells_stored,
        ds.codec.record_size,
    )


@dataclass
class ResultCacheStats:
    """Hit/miss accounting for a :class:`ResultCache`, both tiers."""

    record_hits: int = 0
    record_misses: int = 0
    mesh_hits: int = 0
    mesh_misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Records served from memory instead of the device, cumulative.
    records_from_cache: int = 0

    @property
    def hits(self) -> int:
        return self.record_hits + self.mesh_hits

    @property
    def misses(self) -> int:
        return self.record_misses + self.mesh_misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _records_nbytes(records: MetacellRecords) -> int:
    return records.ids.nbytes + records.vmins.nbytes + records.values.nbytes


def _mesh_nbytes(payload: "CachedNodeResult") -> int:
    total = 0
    for arr in (
        getattr(payload.mesh, "vertices", None),
        getattr(payload.mesh, "faces", None),
        payload.normals,
    ):
        total += getattr(arr, "nbytes", 0)
    return total


@dataclass(frozen=True)
class CachedNodeResult:
    """One stripe's complete extraction output, ready for reuse.

    Stored only when the producing query ran to full coverage with
    verification clean, so replaying it is bit-identical to re-running
    the cold path (asserted by ``tests/test_result_cache.py``).
    """

    mesh: object
    normals: "object | None"
    n_active: int
    n_cells_examined: int
    n_triangles: int
    n_records_read: int


class ResultCache:
    """Byte-budgeted LRU over decoded record prefixes and stripe meshes.

    Parameters
    ----------
    capacity_bytes:
        Total byte budget across both tiers; least-recently-used entries
        are evicted past it.  Entries larger than the whole budget are
        never admitted.
    lambda_bucket:
        λ-bucket width for triangle-tier keys and the serving layer's
        request coalescing (see
        :attr:`~repro.io.cache.CacheOptions.lambda_bucket`).
    """

    def __init__(self, capacity_bytes: int, lambda_bucket: float = 0.0) -> None:
        if capacity_bytes < 1:
            raise ValueError(
                f"capacity_bytes must be >= 1, got {capacity_bytes}"
            )
        if lambda_bucket < 0:
            raise ValueError(f"lambda_bucket must be >= 0, got {lambda_bucket}")
        self.capacity_bytes = capacity_bytes
        self.lambda_bucket = lambda_bucket
        self.stats = ResultCacheStats()
        self.nbytes = 0
        #: key -> (nbytes, payload); insertion/access order == LRU order.
        self._lru: "OrderedDict[tuple, tuple[int, object]]" = OrderedDict()

    # -- plumbing --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lru)

    def bucket_of(self, lam: float) -> float:
        if self.lambda_bucket <= 0.0:
            return float(lam)
        return float(math.floor(float(lam) / self.lambda_bucket))

    def _get(self, key):
        entry = self._lru.get(key)
        if entry is None:
            return None
        self._lru.move_to_end(key)
        return entry[1]

    def _put(self, key, nbytes: int, payload) -> None:
        if nbytes > self.capacity_bytes:
            return
        old = self._lru.pop(key, None)
        if old is not None:
            self.nbytes -= old[0]
        self._lru[key] = (nbytes, payload)
        self.nbytes += nbytes
        while self.nbytes > self.capacity_bytes:
            _, (doomed_bytes, _) = self._lru.popitem(last=False)
            self.nbytes -= doomed_bytes
            self.stats.evictions += 1

    def clear(self) -> None:
        self._lru.clear()
        self.nbytes = 0

    # -- epoch fencing ---------------------------------------------------

    def invalidate_epoch(self, epoch: int, reason: str = "") -> int:
        """Purge every entry not keyed to ``epoch``; returns the count.

        Keys embed the epoch, so stale entries were already unreachable
        — this reclaims their bytes eagerly and makes the invalidation
        observable (``rcache.invalidations``).
        """
        doomed = [k for k in self._lru if k[2] != epoch]
        for k in doomed:
            nbytes, _ = self._lru.pop(k)
            self.nbytes -= nbytes
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def on_ownership_change(self, stripe: int, new_owner: int,
                            epoch: int, reason: str = "") -> None:
        """Ownership-map listener: an epoch bump fences the whole cache
        (conservative — re-deriving exactly which anchors moved would
        save little and risk a stale hit)."""
        self.invalidate_epoch(epoch, reason=reason)

    def view(self, fingerprint, epoch: int,
             populate: bool = True) -> "ResultCacheView":
        """A handle bound to one extraction's ``(fingerprint, epoch)``
        fence; ``populate=False`` (brownout shed-bulk) makes stores
        no-ops while lookups keep working."""
        return ResultCacheView(self, fingerprint, int(epoch), bool(populate))


class ResultCacheView:
    """One extraction's epoch-fenced window onto a :class:`ResultCache`.

    This is what rides on :attr:`~repro.core.query.QueryOptions.result_cache`
    / :attr:`~repro.parallel.cluster.ExtractRequest.result_cache`: the
    query layer duck-types it (no import of this module) and only ever
    calls the methods below.
    """

    __slots__ = ("cache", "fingerprint", "epoch", "populate")

    def __init__(self, cache: ResultCache, fingerprint, epoch: int,
                 populate: bool) -> None:
        self.cache = cache
        self.fingerprint = fingerprint
        self.epoch = epoch
        self.populate = populate

    # -- record tier -----------------------------------------------------

    def _rec_key(self, stripe: int, anchor: int) -> tuple:
        return ("rec", self.fingerprint, self.epoch, int(stripe), int(anchor))

    def record_prefix(self, stripe: int, anchor: int) -> "MetacellRecords | None":
        """The longest verified decoded prefix cached at ``anchor``."""
        records = self.cache._get(self._rec_key(stripe, anchor))
        if records is None:
            self.cache.stats.record_misses += 1
            return None
        self.cache.stats.record_hits += 1
        self.cache.stats.records_from_cache += len(records)
        return records

    def store_record_prefix(self, stripe: int, anchor: int,
                            records: MetacellRecords) -> None:
        """Remember ``records`` as the prefix at ``anchor`` (kept only
        when longer than what is already cached)."""
        if not self.populate or not len(records):
            return
        key = self._rec_key(stripe, anchor)
        existing = self.cache._lru.get(key)
        if existing is not None and len(existing[1]) >= len(records):
            return
        self.cache._put(key, _records_nbytes(records), records)

    # -- triangle tier ---------------------------------------------------

    def _mesh_key(self, stripe: int, lam: float, with_normals: bool,
                  backend: str) -> tuple:
        # The backend rides at the *end* of the key: the epoch stays at
        # index 2 (invalidate_epoch scans it there), and pre-backend
        # entries simply never match a keyed lookup again.  Keying on the
        # kernel keeps inexact backends (surface-nets) from replaying
        # exact-MC output and vice versa.
        return (
            "mesh", self.fingerprint, self.epoch,
            self.cache.bucket_of(lam), int(stripe), float(lam),
            bool(with_normals), str(backend),
        )

    def mesh_get(self, stripe: int, lam: float, with_normals: bool,
                 backend: str = "mc-batch") -> "CachedNodeResult | None":
        payload = self.cache._get(
            self._mesh_key(stripe, lam, with_normals, backend)
        )
        if payload is None:
            self.cache.stats.mesh_misses += 1
            return None
        self.cache.stats.mesh_hits += 1
        return payload

    def mesh_put(self, stripe: int, lam: float, with_normals: bool,
                 payload: CachedNodeResult,
                 backend: str = "mc-batch") -> None:
        if not self.populate:
            return
        self.cache._put(
            self._mesh_key(stripe, lam, with_normals, backend),
            _mesh_nbytes(payload), payload,
        )

    def mesh_contains(self, stripe: int, lam: float, with_normals: bool,
                      backend: str = "mc-batch") -> bool:
        """Non-perturbing probe (no LRU touch, no stats) — used by the
        admission feasibility discount, which must not skew hit rates."""
        return (
            self._mesh_key(stripe, lam, with_normals, backend)
            in self.cache._lru
        )


def publish_result_cache_stats(registry, cache: ResultCache,
                               prefix: str = "rcache") -> None:
    """Publish a :class:`ResultCache` snapshot as ``{prefix}.*`` gauges
    (gauges because the stats are cumulative — same contract as
    :meth:`~repro.obs.metrics.MetricsRegistry.absorb_cache_stats`)."""
    registry.absorb_result_cache_stats(cache.stats, prefix=prefix)
    registry.set_gauge(f"{prefix}.bytes", cache.nbytes)
    registry.set_gauge(f"{prefix}.entries", len(cache))
