"""Seeded multi-tenant traffic generation for the serving simulator.

A serving layer is only as testable as its traffic: this module turns a
``(seed, config)`` pair into a fully materialised
:class:`TrafficTrace` — every request's arrival time, tenant, isovalue,
and deadline budget, plus a timeline of cluster fault overlays — before
the server runs a single query.  Everything downstream (admission,
scheduling, brownout) is then a deterministic function of the trace and
the modeled clock, which is what lets the soak benchmark assert
byte-identical payloads across same-seed runs.

Ingredients, mirroring real isosurface-serving workloads:

* **Zipf isovalues** — interactive exploration concentrates on a few
  popular isovalues (the transfer-function presets); rank ``i`` of the
  configured universe is drawn with weight ``1 / (i + 1) ** zipf_s``.
* **Bursty / diurnal arrivals** — a non-homogeneous Poisson process via
  thinning: a sinusoidal diurnal envelope times step-function burst
  windows (the 4x overload burst of the acceptance soak is one such
  window).
* **Tenant mixes** — each arrival is assigned to a
  :class:`TenantSpec` by weighted draw; the spec carries the QoS tier,
  fair-share weight, token-bucket rate, and per-request deadline budget.
* **Fault overlays** — :class:`ClusterEvent` kill/heal/fault-plan
  points applied to worker nodes mid-trace, reusing the
  :mod:`repro.io.faults` machinery (``FaultPlan`` injection and
  ``CrashSchedule``-style kill marks) against the live cluster.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.io.faults import FaultPlan

#: The three QoS tiers, best first.
TIERS = ("gold", "silver", "bulk")

#: Default fair-share weights per tier (gold outweighs bulk 8:1, but
#: every tier's weight is strictly positive — the deficit-round-robin
#: starvation-freedom argument needs that).
TIER_WEIGHTS = {"gold": 8.0, "silver": 4.0, "bulk": 1.0}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, QoS tier, and traffic contract.

    Parameters
    ----------
    name:
        Tenant id (also the metrics/trace label).
    tier:
        ``gold`` / ``silver`` / ``bulk``.
    arrival_share:
        Relative probability an arrival belongs to this tenant.
    rate:
        Token-bucket refill rate, requests per modeled second.
    burst:
        Token-bucket capacity (requests admitted back to back).
    deadline_budget:
        Per-request end-to-end modeled-seconds budget.
    weight:
        Fair-share weight; ``None`` uses the tier default.
    """

    name: str
    tier: str = "silver"
    arrival_share: float = 1.0
    rate: float = 10.0
    burst: float = 5.0
    deadline_budget: float = 1.0
    weight: "float | None" = None

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"tier must be one of {TIERS}, got {self.tier!r}")
        if self.arrival_share <= 0:
            raise ValueError(f"arrival_share must be > 0, got {self.arrival_share}")
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("token bucket rate and burst must be > 0")
        if self.deadline_budget <= 0:
            raise ValueError(
                f"deadline_budget must be > 0, got {self.deadline_budget}"
            )

    @property
    def share_weight(self) -> float:
        """Effective deficit-round-robin weight."""
        return self.weight if self.weight is not None else TIER_WEIGHTS[self.tier]


@dataclass(frozen=True)
class QueryRequest:
    """One isosurface query as it arrives at the front door."""

    request_id: int
    arrival: float
    tenant: str
    tier: str
    lam: float
    #: End-to-end modeled-seconds budget (queue wait counts against it).
    budget: float


@dataclass(frozen=True)
class ClusterEvent:
    """A fault overlay applied to the cluster at a point in trace time.

    ``action`` is ``kill`` (permanent node-disk loss, the
    ``CrashSchedule``-style kill point), ``heal`` (bring it back),
    ``faults`` (install ``plan`` on the node's disk via
    ``inject_faults``), or the chaos-engine pair ``partition`` /
    ``partition-heal`` (split-brain the cluster's installed network
    fault session into ``groups`` and heal it; ``rank`` is ignored —
    pass -1).  Partition overlays are no-ops on a cluster without a
    network session, so a trace carrying them replays unchanged on a
    healthy cluster.
    """

    time: float
    action: str
    rank: int
    plan: "FaultPlan | None" = None
    #: Endpoint-id groups for a ``partition`` overlay (>= 2 groups;
    #: see :class:`repro.chaos.netfaults.PartitionWindow`).
    groups: "tuple[tuple[int, ...], ...] | None" = None

    def __post_init__(self) -> None:
        if self.action not in (
            "kill", "heal", "faults", "partition", "partition-heal"
        ):
            raise ValueError(f"unknown overlay action {self.action!r}")
        if self.action == "faults" and self.plan is None:
            raise ValueError("a 'faults' overlay needs a FaultPlan")
        if self.action == "partition" and (
            self.groups is None or len(self.groups) < 2
        ):
            raise ValueError("a 'partition' overlay needs >= 2 groups")


@dataclass(frozen=True)
class BurstWindow:
    """A multiplicative arrival-rate burst over ``[start, start + duration)``."""

    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.factor <= 0:
            raise ValueError("burst duration and factor must be > 0")


@dataclass(frozen=True)
class TrafficConfig:
    """Everything that shapes a generated trace (see module docstring)."""

    duration: float
    base_rate: float
    isovalues: "tuple[float, ...]"
    seed: int = 0
    zipf_s: float = 1.1
    diurnal_amplitude: float = 0.0
    diurnal_period: "float | None" = None
    bursts: "tuple[BurstWindow, ...]" = ()
    overlays: "tuple[ClusterEvent, ...]" = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {self.base_rate}")
        if not self.isovalues:
            raise ValueError("need at least one isovalue")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at trace time ``t``."""
        period = self.diurnal_period or self.duration
        rate = self.base_rate * (
            1.0 + self.diurnal_amplitude * math.sin(2.0 * math.pi * t / period)
        )
        for b in self.bursts:
            if b.start <= t < b.start + b.duration:
                rate *= b.factor
        return max(rate, 0.0)

    @property
    def peak_rate(self) -> float:
        """Upper bound on :meth:`rate_at` (the thinning envelope)."""
        burst = max((b.factor for b in self.bursts), default=1.0)
        return self.base_rate * (1.0 + self.diurnal_amplitude) * burst


@dataclass(frozen=True)
class TrafficTrace:
    """A fully materialised workload: requests plus fault overlays,
    both sorted by time."""

    requests: "tuple[QueryRequest, ...]"
    overlays: "tuple[ClusterEvent, ...]" = ()
    config: "TrafficConfig | None" = field(default=None, compare=False)

    @property
    def horizon(self) -> float:
        """Trace duration (config duration, or the last event time)."""
        if self.config is not None:
            return self.config.duration
        times = [r.arrival for r in self.requests]
        times += [e.time for e in self.overlays]
        return max(times, default=0.0)


def zipf_weights(n: int, s: float) -> "list[float]":
    """Zipf popularity weights for ranks ``0..n-1`` (not normalised)."""
    return [1.0 / (i + 1) ** s for i in range(n)]


def generate_trace(
    config: TrafficConfig, tenants: "tuple[TenantSpec, ...]"
) -> TrafficTrace:
    """Materialise a seeded trace: deterministic given ``(config, tenants)``.

    Arrivals come from thinning a homogeneous Poisson process at
    :attr:`TrafficConfig.peak_rate` down to :meth:`TrafficConfig.rate_at`;
    each accepted arrival draws its tenant (by ``arrival_share``) and
    its isovalue (Zipf over the configured universe) from the same
    ``random.Random(seed)`` stream, so the whole trace is one function
    of the seed.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    rng = random.Random(config.seed)
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    shares = [t.arrival_share for t in tenants]
    iso_weights = zipf_weights(len(config.isovalues), config.zipf_s)
    peak = config.peak_rate

    requests: "list[QueryRequest]" = []
    t = 0.0
    rid = 0
    while True:
        t += rng.expovariate(peak)
        if t >= config.duration:
            break
        if rng.random() * peak > config.rate_at(t):
            continue  # thinned out of the non-homogeneous process
        tenant = rng.choices(tenants, weights=shares, k=1)[0]
        lam = rng.choices(config.isovalues, weights=iso_weights, k=1)[0]
        requests.append(QueryRequest(
            request_id=rid,
            arrival=t,
            tenant=tenant.name,
            tier=tenant.tier,
            lam=lam,
            budget=tenant.deadline_budget,
        ))
        rid += 1

    overlays = tuple(sorted(config.overlays, key=lambda e: (e.time, e.rank)))
    return TrafficTrace(requests=tuple(requests), overlays=overlays, config=config)
