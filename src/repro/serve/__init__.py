"""Overload-resilient multi-tenant serving over the simulated cluster.

The front door for concurrent isosurface queries: admission control
with typed load shedding (:mod:`~repro.serve.admission`), weighted
deficit-round-robin fair-share scheduling across QoS tiers
(:mod:`~repro.serve.scheduler`), a graceful-brownout degradation ladder
(:mod:`~repro.serve.brownout`), seeded multi-tenant traffic generation
with fault overlays (:mod:`~repro.serve.traffic`), and the
discrete-event server tying them together on the modeled clock
(:mod:`~repro.serve.server`).

Cross-query result reuse lives in :mod:`~repro.serve.rcache`: a
λ-keyed, ownership-epoch-fenced result cache whose record tier serves
the nested Case-1 prefixes nearby isovalues share, plus the request
coalescing the server layers on top.  See docs/robustness.md,
"Overload & admission" and "Result reuse".
"""

from repro.serve.admission import (
    SHED_BROWNOUT_BULK,
    SHED_DEADLINE_INFEASIBLE,
    SHED_QUEUE_FULL,
    SHED_TENANT_THROTTLED,
    AdmissionController,
    RejectedQuery,
    TokenBucket,
)
from repro.serve.brownout import (
    LEVELS,
    BrownoutConfig,
    BrownoutController,
    BrownoutTransition,
)
from repro.serve.rcache import (
    CachedNodeResult,
    ResultCache,
    ResultCacheStats,
    ResultCacheView,
    cluster_fingerprint,
    publish_result_cache_stats,
)
from repro.serve.scheduler import DeficitRoundRobin
from repro.serve.server import (
    TERMINAL_STATES,
    QueryServer,
    ServeConfig,
    ServedRecord,
    ServingReport,
)
from repro.serve.traffic import (
    TIER_WEIGHTS,
    TIERS,
    BurstWindow,
    ClusterEvent,
    QueryRequest,
    TenantSpec,
    TrafficConfig,
    TrafficTrace,
    generate_trace,
    zipf_weights,
)

__all__ = [
    "AdmissionController", "BrownoutConfig", "BrownoutController",
    "BrownoutTransition", "BurstWindow", "CachedNodeResult",
    "ClusterEvent", "DeficitRoundRobin", "LEVELS", "QueryRequest",
    "QueryServer", "RejectedQuery", "ResultCache", "ResultCacheStats",
    "ResultCacheView", "SHED_BROWNOUT_BULK", "SHED_DEADLINE_INFEASIBLE",
    "SHED_QUEUE_FULL", "SHED_TENANT_THROTTLED", "ServeConfig",
    "ServedRecord", "ServingReport", "TERMINAL_STATES", "TIERS",
    "TIER_WEIGHTS", "TenantSpec", "TokenBucket", "TrafficConfig",
    "TrafficTrace", "cluster_fingerprint", "generate_trace",
    "publish_result_cache_stats", "zipf_weights",
]
