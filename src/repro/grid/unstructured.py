"""Unstructured (tetrahedral) grids.

The paper states its algorithm "can handle both structured and
unstructured grids and makes use of the metacell notion" — the index
only ever sees (vmin, vmax) intervals and opaque records.  This module
provides the unstructured side:

* :class:`TetMesh` — points, tetrahedra, vertex scalars;
* generators: Delaunay tetrahedralizations of random point clouds
  (scipy) and exact 6-tet decompositions of structured volumes (useful
  as a ground-truth bridge: the isosurface of the decomposed mesh must
  match marching-tetrahedra on the original grid);
* :func:`cluster_cells` — spatial clustering of cells into fixed-size
  metacells via Morton order, the unstructured analogue of the paper's
  subcube metacells.

Records denormalize geometry (each cluster stores its tets' vertex
positions and values), so a query needs nothing but the record — the
standard out-of-core layout for unstructured data [10, 17].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The same 6-tet cube decomposition used by the marching-tets oracle.
from repro.mc.marching_tets import TETS as _CUBE_TETS


@dataclass
class TetMesh:
    """A tetrahedral mesh with vertex scalars.

    Attributes
    ----------
    points:
        ``(P, 3)`` float vertex positions.
    cells:
        ``(C, 4)`` int indices into ``points``.
    values:
        ``(P,)`` scalar field samples at the vertices.
    """

    points: np.ndarray
    cells: np.ndarray
    values: np.ndarray
    name: str = "tetmesh"

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64).reshape(-1, 3)
        self.cells = np.asarray(self.cells, dtype=np.int64).reshape(-1, 4)
        self.values = np.asarray(self.values, dtype=np.float64).reshape(-1)
        if len(self.values) != len(self.points):
            raise ValueError(
                f"{len(self.values)} values for {len(self.points)} points"
            )
        if len(self.cells) and (
            self.cells.min() < 0 or self.cells.max() >= len(self.points)
        ):
            raise ValueError("cell indices out of range")

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def cell_points(self) -> np.ndarray:
        """``(C, 4, 3)`` vertex positions per cell."""
        return self.points[self.cells]

    def cell_values(self) -> np.ndarray:
        """``(C, 4)`` scalar values per cell."""
        return self.values[self.cells]

    def cell_ranges(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-cell (vmin, vmax) — the interval input to the index."""
        cv = self.cell_values()
        return cv.min(axis=1), cv.max(axis=1)

    def cell_centroids(self) -> np.ndarray:
        return self.cell_points().mean(axis=1)

    def value_range(self) -> tuple[float, float]:
        return float(self.values.min()), float(self.values.max())


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def structured_to_tets(volume) -> TetMesh:
    """Split every cell of a structured volume into 6 tetrahedra.

    The decomposition matches :mod:`repro.mc.marching_tets`, so
    isosurfaces extracted from the resulting mesh are *identical* to
    marching-tetrahedra output on the original grid — the bridge the
    tests use to validate the unstructured path end-to-end.
    """
    nx, ny, nz = volume.shape
    xs = np.arange(nx) * volume.spacing[0] + volume.origin[0]
    ys = np.arange(ny) * volume.spacing[1] + volume.origin[1]
    zs = np.arange(nz) * volume.spacing[2] + volume.origin[2]
    px, py, pz = np.meshgrid(xs, ys, zs, indexing="ij")
    points = np.stack([px.reshape(-1), py.reshape(-1), pz.reshape(-1)], axis=1)
    values = np.asarray(volume.data, dtype=np.float64).reshape(-1)

    def vid(i, j, k):
        return (i * ny + j) * nz + k

    ci, cj, ck = np.meshgrid(
        np.arange(nx - 1), np.arange(ny - 1), np.arange(nz - 1), indexing="ij"
    )
    ci, cj, ck = ci.reshape(-1), cj.reshape(-1), ck.reshape(-1)
    corner_ids = np.empty((len(ci), 8), dtype=np.int64)
    corner_offsets = [
        (0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0),
        (0, 0, 1), (1, 0, 1), (1, 1, 1), (0, 1, 1),
    ]
    for b, (dx, dy, dz) in enumerate(corner_offsets):
        corner_ids[:, b] = vid(ci + dx, cj + dy, ck + dz)
    cells = np.concatenate([corner_ids[:, tet] for tet in _CUBE_TETS])
    return TetMesh(points, cells, values, name=f"{volume.name}_tets")


def delaunay_ball(
    n_points: int = 400,
    seed: int = 0,
    field=None,
    name: str = "delaunay_ball",
) -> TetMesh:
    """Delaunay tetrahedralization of random points in a ball.

    ``field(x, y, z)`` defaults to the distance from the origin (so
    isosurfaces are approximately spheres).  Requires scipy.
    """
    try:
        from scipy.spatial import Delaunay
    except ImportError as exc:  # pragma: no cover - scipy is installed here
        raise ImportError("delaunay_ball requires scipy") from exc
    rng = np.random.default_rng(seed)
    # Rejection-sample a ball, plus boundary shell points for coverage.
    pts = rng.uniform(-1, 1, size=(int(n_points * 2.2), 3))
    pts = pts[np.linalg.norm(pts, axis=1) <= 1.0][:n_points]
    tri = Delaunay(pts)
    if field is None:
        field = lambda x, y, z: np.sqrt(x**2 + y**2 + z**2)  # noqa: E731
    values = field(pts[:, 0], pts[:, 1], pts[:, 2])
    return TetMesh(pts, tri.simplices, values, name=name)


# ---------------------------------------------------------------------------
# Metacell clustering
# ---------------------------------------------------------------------------


def _morton_codes(centroids: np.ndarray, bits: int = 10) -> np.ndarray:
    """Interleaved-bit (Morton / Z-order) codes of quantized centroids."""
    lo = centroids.min(axis=0)
    hi = centroids.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    q = np.clip(((centroids - lo) / span * (2**bits - 1)).astype(np.uint64), 0, 2**bits - 1)
    codes = np.zeros(len(centroids), dtype=np.uint64)
    for b in range(bits):
        for axis in range(3):
            codes |= ((q[:, axis] >> np.uint64(b)) & np.uint64(1)) << np.uint64(3 * b + axis)
    return codes


@dataclass
class CellClusters:
    """Cells grouped into fixed-size spatial clusters (metacells).

    Attributes
    ----------
    mesh:
        The source mesh.
    cells_per_cluster:
        Cluster capacity K; the final cluster may be smaller.
    members:
        ``(n_clusters, K)`` cell indices; -1 pads the last cluster.
    vmin, vmax:
        Per-cluster scalar extrema over member cells.
    """

    mesh: TetMesh
    cells_per_cluster: int
    members: np.ndarray
    vmin: np.ndarray
    vmax: np.ndarray

    @property
    def n_clusters(self) -> int:
        return len(self.members)

    @property
    def ids(self) -> np.ndarray:
        return np.arange(self.n_clusters, dtype=np.uint32)

    def constant_mask(self) -> np.ndarray:
        return self.vmin == self.vmax


def cluster_cells(mesh: TetMesh, cells_per_cluster: int = 64) -> CellClusters:
    """Group cells into spatially coherent fixed-size clusters.

    Cells are sorted along the Morton curve of their centroids and
    chunked; Z-order keeps each chunk spatially compact, the property
    that makes per-cluster (vmin, vmax) intervals tight — the
    unstructured analogue of the paper's neighbouring-cell metacells.
    """
    if cells_per_cluster < 1:
        raise ValueError(f"cells_per_cluster must be >= 1, got {cells_per_cluster}")
    if mesh.n_cells == 0:
        raise ValueError("mesh has no cells")
    order = np.argsort(_morton_codes(mesh.cell_centroids()), kind="stable")
    n_clusters = -(-mesh.n_cells // cells_per_cluster)
    members = np.full((n_clusters, cells_per_cluster), -1, dtype=np.int64)
    flat = members.reshape(-1)
    flat[: mesh.n_cells] = order

    cvmin, cvmax = mesh.cell_ranges()
    vmin = np.empty(n_clusters)
    vmax = np.empty(n_clusters)
    for c in range(n_clusters):
        m = members[c][members[c] >= 0]
        vmin[c] = cvmin[m].min()
        vmax[c] = cvmax[m].max()
    return CellClusters(
        mesh=mesh,
        cells_per_cluster=cells_per_cluster,
        members=members,
        vmin=vmin,
        vmax=vmax,
    )
