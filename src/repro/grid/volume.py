"""Structured scalar volumes.

A :class:`Volume` is the unit of input to the preprocessing pipeline: a
dense 3D array of scalars on a regular grid, together with the physical
placement (origin + spacing) used when triangles are emitted in world
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass
class Volume:
    """A structured scalar field on a regular grid.

    Attributes
    ----------
    data:
        3D array of vertex scalars, indexed ``[x, y, z]``.
    spacing:
        Physical distance between adjacent vertices along each axis.
    origin:
        World position of vertex ``(0, 0, 0)``.
    name:
        Human-readable label used in reports.
    """

    data: np.ndarray
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0)
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0)
    name: str = "volume"

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 3:
            raise ValueError(f"volume data must be 3D, got shape {self.data.shape}")
        if any(s < 2 for s in self.data.shape):
            raise ValueError(
                f"volume must have >= 2 vertices along every axis, got {self.data.shape}"
            )

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Raw size of the field in bytes (the paper's 'original data size')."""
        return self.data.nbytes

    @property
    def n_cells(self) -> int:
        nx, ny, nz = self.shape
        return (nx - 1) * (ny - 1) * (nz - 1)

    def value_range(self) -> tuple[float, float]:
        return float(self.data.min()), float(self.data.max())

    def quantize(self, dtype: np.dtype | type = np.uint8, name: str | None = None) -> "Volume":
        """Linearly rescale the field into the full range of an integer dtype.

        This mirrors the one-byte / two-byte quantization of the paper's
        datasets.  A constant field maps to 0.
        """
        dtype = np.dtype(dtype)
        if dtype.kind not in "ui":
            raise ValueError(f"quantize target must be an integer dtype, got {dtype}")
        lo, hi = self.value_range()
        info = np.iinfo(dtype)
        if hi == lo:
            q = np.zeros(self.shape, dtype=dtype)
        else:
            scaled = (self.data.astype(np.float64) - lo) * (info.max / (hi - lo))
            q = np.clip(np.rint(scaled), info.min, info.max).astype(dtype)
        return Volume(q, self.spacing, self.origin, name or f"{self.name}_{dtype.name}")

    def downsample(
        self, factor: int, name: str | None = None, method: str = "stride"
    ) -> "Volume":
        """Downsample by an integer factor along every axis.

        Used to regenerate the paper's 256x256x240 down-sampled
        Richtmyer–Meshkov view (Figure 4) from larger fields.

        ``method="stride"`` keeps every factor-th sample (fast, aliased —
        what large-data pipelines typically do); ``method="mean"``
        box-filters factor^3 neighbourhoods before decimating (smoother
        isosurfaces at the cost of one pass over the data).
        """
        if factor < 1:
            raise ValueError(f"downsample factor must be >= 1, got {factor}")
        if method not in ("stride", "mean"):
            raise ValueError(f"unknown downsample method {method!r}")
        if method == "stride" or factor == 1:
            data = self.data[::factor, ::factor, ::factor].copy()
        else:
            nx, ny, nz = (s // factor * factor for s in self.shape)
            trimmed = self.data[:nx, :ny, :nz].astype(np.float64)
            pooled = trimmed.reshape(
                nx // factor, factor, ny // factor, factor, nz // factor, factor
            ).mean(axis=(1, 3, 5))
            if np.issubdtype(self.dtype, np.integer):
                data = np.rint(pooled).astype(self.dtype)
            else:
                data = pooled.astype(self.dtype)
        if any(s < 2 for s in data.shape):
            raise ValueError(
                f"downsample factor {factor} collapses shape {self.shape} below 2 vertices"
            )
        spacing = tuple(s * factor for s in self.spacing)
        return Volume(data, spacing, self.origin, name or f"{self.name}_ds{factor}")

    def world_coords(self, ijk: np.ndarray) -> np.ndarray:
        """Map vertex indices ``(n, 3)`` to world coordinates ``(n, 3)``."""
        ijk = np.asarray(ijk, dtype=np.float64)
        return np.asarray(self.origin) + ijk * np.asarray(self.spacing)

    @staticmethod
    def from_function(
        fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        shape: tuple[int, int, int],
        bounds: tuple[tuple[float, float], tuple[float, float], tuple[float, float]] = (
            (-1.0, 1.0),
            (-1.0, 1.0),
            (-1.0, 1.0),
        ),
        name: str = "analytic",
    ) -> "Volume":
        """Sample an analytic field ``fn(x, y, z)`` on a regular grid.

        ``fn`` must accept broadcastable coordinate arrays and return the
        scalar field.  The physical bounds are preserved through
        ``spacing``/``origin`` so iso-geometry is comparable across
        resolutions.
        """
        nx, ny, nz = shape
        (x0, x1), (y0, y1), (z0, z1) = bounds
        xs = np.linspace(x0, x1, nx)
        ys = np.linspace(y0, y1, ny)
        zs = np.linspace(z0, z1, nz)
        data = fn(xs[:, None, None], ys[None, :, None], zs[None, None, :])
        data = np.broadcast_to(data, shape).astype(np.float64)
        spacing = (
            (x1 - x0) / max(nx - 1, 1),
            (y1 - y0) / max(ny - 1, 1),
            (z1 - z0) / max(nz - 1, 1),
        )
        return Volume(np.ascontiguousarray(data), spacing, (x0, y0, z0), name)
