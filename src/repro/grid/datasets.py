"""Synthetic datasets.

Two families live here:

* **Analytic ground-truth fields** (sphere, torus, gyroid,
  Marschner–Lobb).  Their isosurfaces have known geometry/topology, which
  the test suite uses to validate extraction end to end (e.g. the sphere's
  Euler characteristic and area).

* **Stand-ins for the paper's Table 1 datasets** (Stanford Bunny CT,
  MRBrain, CTHead, plus the Pressure and Velocity fields).  The originals
  are not redistributable here; the stand-ins match grid dimensions and
  byte depth and qualitatively reproduce the span-space statistics that
  determine index size (see DESIGN.md, substitutions).  Each generator is
  deterministic given its seed.
"""

from __future__ import annotations

import numpy as np

from repro.grid.volume import Volume

# ---------------------------------------------------------------------------
# Analytic fields
# ---------------------------------------------------------------------------


def sphere_field(
    shape: tuple[int, int, int] = (32, 32, 32), radius: float = 0.6, name: str = "sphere"
) -> Volume:
    """Distance-like field whose ``iso = radius`` surface is a sphere.

    Field value is the distance from the domain center, so isosurface at
    value ``r`` is the radius-``r`` sphere.
    """
    return Volume.from_function(
        lambda x, y, z: np.sqrt(x**2 + y**2 + z**2), shape, name=name
    )


def torus_field(
    shape: tuple[int, int, int] = (48, 48, 32),
    major: float = 0.55,
    name: str = "torus",
) -> Volume:
    """Field whose ``iso = r`` surface is a torus of tube radius ``r``."""

    def fn(x, y, z):
        ring = np.sqrt(x**2 + y**2) - major
        return np.sqrt(ring**2 + z**2)

    return Volume.from_function(fn, shape, name=name)


def gyroid_field(
    shape: tuple[int, int, int] = (40, 40, 40), periods: float = 2.0, name: str = "gyroid"
) -> Volume:
    """Triply-periodic gyroid; its 0-isosurface fills the whole domain.

    Useful as a stress test: nearly every metacell is active near iso 0.
    """
    k = np.pi * periods

    def fn(x, y, z):
        return (
            np.sin(k * x) * np.cos(k * y)
            + np.sin(k * y) * np.cos(k * z)
            + np.sin(k * z) * np.cos(k * x)
        )

    return Volume.from_function(fn, shape, name=name)


def marschner_lobb(
    shape: tuple[int, int, int] = (41, 41, 41),
    f_m: float = 6.0,
    alpha: float = 0.25,
    name: str = "marschner_lobb",
) -> Volume:
    """The classic Marschner–Lobb frequency-sweep test signal."""

    def rho(r):
        return np.cos(2 * np.pi * f_m * np.cos(np.pi * r / 2.0))

    def fn(x, y, z):
        r = np.sqrt(x**2 + y**2)
        return ((1 - np.sin(np.pi * z / 2.0)) + alpha * (1 + rho(r))) / (2 * (1 + alpha))

    return Volume.from_function(fn, shape, name=name)


# ---------------------------------------------------------------------------
# Noise helpers (numpy-only band-limited noise)
# ---------------------------------------------------------------------------


def trilinear_upsample(coarse: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    """Resample a coarse 3D grid onto ``shape`` with trilinear interpolation."""
    out_coords = []
    idx0, idx1, fracs = [], [], []
    for axis, (n_out, n_in) in enumerate(zip(shape, coarse.shape)):
        if n_in < 2:
            raise ValueError(f"coarse grid axis {axis} needs >= 2 samples, got {n_in}")
        t = np.linspace(0.0, n_in - 1, n_out)
        i0 = np.minimum(t.astype(np.int64), n_in - 2)
        idx0.append(i0)
        idx1.append(i0 + 1)
        fracs.append(t - i0)
        out_coords.append(t)

    fx = fracs[0][:, None, None]
    fy = fracs[1][None, :, None]
    fz = fracs[2][None, None, :]
    ix0, iy0, iz0 = idx0
    ix1, iy1, iz1 = idx1

    def g(ix, iy, iz):
        return coarse[np.ix_(ix, iy, iz)]

    c000, c001 = g(ix0, iy0, iz0), g(ix0, iy0, iz1)
    c010, c011 = g(ix0, iy1, iz0), g(ix0, iy1, iz1)
    c100, c101 = g(ix1, iy0, iz0), g(ix1, iy0, iz1)
    c110, c111 = g(ix1, iy1, iz0), g(ix1, iy1, iz1)

    c00 = c000 * (1 - fz) + c001 * fz
    c01 = c010 * (1 - fz) + c011 * fz
    c10 = c100 * (1 - fz) + c101 * fz
    c11 = c110 * (1 - fz) + c111 * fz
    c0 = c00 * (1 - fy) + c01 * fy
    c1 = c10 * (1 - fy) + c11 * fy
    return c0 * (1 - fx) + c1 * fx


def smooth_noise(
    shape: tuple[int, int, int],
    feature_size: float,
    rng: np.random.Generator,
    octaves: int = 3,
) -> np.ndarray:
    """Band-limited fractal noise in [-1, 1] with features ~``feature_size`` voxels."""
    total = np.zeros(shape, dtype=np.float64)
    amp, norm = 1.0, 0.0
    size = feature_size
    for _ in range(octaves):
        coarse_shape = tuple(max(2, int(np.ceil(n / max(size, 1.0))) + 1) for n in shape)
        coarse = rng.standard_normal(coarse_shape)
        total += amp * trilinear_upsample(coarse, shape)
        norm += amp
        amp *= 0.5
        size /= 2.0
    total /= norm
    m = np.abs(total).max()
    return total / m if m > 0 else total


def _unit_grid(shape: tuple[int, int, int]):
    xs = np.linspace(-1, 1, shape[0])[:, None, None]
    ys = np.linspace(-1, 1, shape[1])[None, :, None]
    zs = np.linspace(-1, 1, shape[2])[None, None, :]
    return xs, ys, zs


# ---------------------------------------------------------------------------
# Table 1 stand-ins
# ---------------------------------------------------------------------------


def ct_head_like(
    shape: tuple[int, int, int] = (256, 256, 113),
    dtype: np.dtype | type = np.uint16,
    seed: int = 11,
) -> Volume:
    """CT-head-like field: air background, soft-tissue blob, bright bone shell."""
    rng = np.random.default_rng(seed)
    x, y, z = _unit_grid(shape)
    r = np.sqrt((x / 0.85) ** 2 + (y / 0.75) ** 2 + (z / 0.95) ** 2)
    r = r + 0.08 * smooth_noise(shape, feature_size=shape[0] / 6, rng=rng)
    skull = np.exp(-(((r - 0.78) / 0.05) ** 2))  # bright bone shell
    brain = 0.45 * (r < 0.7) * (0.8 + 0.2 * smooth_noise(shape, shape[0] / 10, rng))
    field = 0.05 + brain + 0.9 * skull
    field += 0.01 * rng.standard_normal(shape)
    return Volume(field, name="ct_head_like").quantize(dtype, name="ct_head_like")


def mr_brain_like(
    shape: tuple[int, int, int] = (256, 256, 109),
    dtype: np.dtype | type = np.uint16,
    seed: int = 12,
) -> Volume:
    """MR-brain-like field: smooth tissue contrast bands plus speckle."""
    rng = np.random.default_rng(seed)
    x, y, z = _unit_grid(shape)
    r = np.sqrt((x / 0.8) ** 2 + (y / 0.7) ** 2 + (z / 0.9) ** 2)
    tissue = np.clip(1.0 - r, 0.0, None)
    folds = 0.3 * smooth_noise(shape, feature_size=shape[0] / 16, rng=rng)
    field = tissue * (0.6 + folds) + 0.03 * rng.standard_normal(shape)
    return Volume(field, name="mr_brain_like").quantize(dtype, name="mr_brain_like")


def bunny_ct_like(
    shape: tuple[int, int, int] = (512, 512, 361),
    dtype: np.dtype | type = np.uint16,
    seed: int = 13,
) -> Volume:
    """Bunny-CT-like field: a lumpy solid scanned in a uniform medium."""
    rng = np.random.default_rng(seed)
    x, y, z = _unit_grid(shape)
    body = np.sqrt((x / 0.5) ** 2 + (y / 0.45) ** 2 + ((z + 0.1) / 0.55) ** 2)
    head = np.sqrt(((x - 0.05) / 0.3) ** 2 + (y / 0.3) ** 2 + ((z - 0.55) / 0.3) ** 2)
    solid = np.minimum(body, head)
    solid = solid + 0.12 * smooth_noise(shape, feature_size=shape[0] / 8, rng=rng)
    field = np.where(solid < 1.0, 0.75 + 0.15 * (1 - solid), 0.12)
    field = field + 0.02 * rng.standard_normal(shape)
    return Volume(field, name="bunny_ct_like").quantize(dtype, name="bunny_ct_like")


def pressure_like(
    shape: tuple[int, int, int] = (256, 256, 256),
    dtype: np.dtype | type = np.uint16,
    seed: int = 14,
) -> Volume:
    """Smooth low-frequency pressure-like field.

    Almost every metacell spans a distinct interval (the paper's
    ``N ~ n`` regime noted under Table 1), because the field varies
    everywhere and has essentially no constant regions.
    """
    rng = np.random.default_rng(seed)
    field = smooth_noise(shape, feature_size=shape[0] / 3, rng=rng, octaves=4)
    return Volume(field, name="pressure_like").quantize(dtype, name="pressure_like")


def velocity_like(
    shape: tuple[int, int, int] = (256, 256, 256),
    dtype: np.dtype | type = np.uint16,
    seed: int = 15,
) -> Volume:
    """Velocity-magnitude-like field: vortical swirls over a mean flow."""
    rng = np.random.default_rng(seed)
    u = smooth_noise(shape, feature_size=shape[0] / 5, rng=rng)
    v = smooth_noise(shape, feature_size=shape[0] / 5, rng=rng)
    w = smooth_noise(shape, feature_size=shape[0] / 7, rng=rng)
    mag = np.sqrt(u**2 + v**2 + (0.5 + w) ** 2)
    return Volume(mag, name="velocity_like").quantize(dtype, name="velocity_like")


def sample_field(fn, shape, bounds=((-1, 1), (-1, 1), (-1, 1)), name="analytic") -> Volume:
    """Alias of :meth:`Volume.from_function` kept for API discoverability."""
    return Volume.from_function(fn, shape, bounds, name)
