"""Metacell decomposition (paper Section 4 and Section 7 preamble).

A metacell is a subcube of ``m x m x m`` *vertices* sharing one boundary
vertex layer with each neighbour, so that the ``(m-1)^3`` cells inside a
metacell can be triangulated without touching any other metacell.  For the
Richtmyer–Meshkov dataset the paper uses ``m = 9``: a 2048x2048x1920 grid
becomes 256x256x240 metacells of 734 bytes each.

Volumes whose dimensions are not of the form ``k*(m-1)+1`` are padded by
edge replication.  Replication never introduces isovalue crossings
(adjacent padded values are equal), so the extracted isosurface is
unchanged.

The partition also computes each metacell's scalar interval
``(vmin, vmax)`` — the input to the span-space index — and the constant
mask (``vmin == vmax``) used to cull metacells that can never intersect
any isosurface, the step that halves the Richtmyer–Meshkov dataset on
disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.grid.volume import Volume


def metacell_grid_shape(
    vol_shape: tuple[int, int, int], metacell_shape: tuple[int, int, int]
) -> tuple[int, int, int]:
    """Number of metacells along each axis for a given volume shape."""
    out = []
    for n, m in zip(vol_shape, metacell_shape):
        if m < 2:
            raise ValueError(f"metacell_shape must have >= 2 vertices per axis, got {m}")
        out.append(max(1, -(-(n - 1) // (m - 1))))  # ceil((n-1)/(m-1))
    return tuple(out)  # type: ignore[return-value]


def pad_for_metacells(
    data: np.ndarray, metacell_shape: tuple[int, int, int]
) -> np.ndarray:
    """Edge-replicate ``data`` so every axis has ``k*(m-1)+1`` vertices."""
    grid = metacell_grid_shape(data.shape, metacell_shape)
    target = tuple(k * (m - 1) + 1 for k, m in zip(grid, metacell_shape))
    pads = tuple((0, t - n) for t, n in zip(target, data.shape))
    if all(p == (0, 0) for p in pads):
        return data
    return np.pad(data, pads, mode="edge")


@dataclass
class MetacellPartition:
    """The metacell view of one volume.

    Attributes
    ----------
    volume:
        The source volume (unpadded).
    metacell_shape:
        Vertex dimensions ``(m, m, m)`` of each metacell.
    grid_shape:
        Metacell counts per axis.
    vmin, vmax:
        Per-metacell scalar extrema, flat C-order over ``grid_shape``.
    """

    volume: Volume
    metacell_shape: tuple[int, int, int]
    grid_shape: tuple[int, int, int]
    vmin: np.ndarray
    vmax: np.ndarray
    _padded: np.ndarray

    @property
    def n_metacells(self) -> int:
        return int(np.prod(self.grid_shape))

    @property
    def ids(self) -> np.ndarray:
        """All metacell ids, flat C-order over the metacell grid."""
        return np.arange(self.n_metacells, dtype=np.uint32)

    def constant_mask(self) -> np.ndarray:
        """True where a metacell has a single scalar value everywhere.

        Such metacells intersect no isosurface for any isovalue that has
        crossings (the extraction convention treats a cell as active only
        when the isovalue strictly separates vertex values), so the
        builder drops them from disk — the paper's ~50% space saving.
        """
        return self.vmin == self.vmax

    def id_to_ijk(self, ids: np.ndarray) -> np.ndarray:
        """Metacell id -> metacell grid coordinates, shape ``(n, 3)``."""
        ids = np.asarray(ids, dtype=np.int64)
        gx, gy, gz = self.grid_shape
        i = ids // (gy * gz)
        j = (ids // gz) % gy
        k = ids % gz
        return np.stack([i, j, k], axis=1)

    def ijk_to_id(self, ijk: np.ndarray) -> np.ndarray:
        ijk = np.asarray(ijk, dtype=np.int64)
        gx, gy, gz = self.grid_shape
        return (ijk[..., 0] * gy + ijk[..., 1]) * gz + ijk[..., 2]

    def vertex_origins(self, ids: np.ndarray) -> np.ndarray:
        """Vertex-index origin of each metacell in the padded volume."""
        steps = np.asarray([m - 1 for m in self.metacell_shape], dtype=np.int64)
        return self.id_to_ijk(ids) * steps

    def extract_values(self, ids: np.ndarray) -> np.ndarray:
        """Gather metacell vertex payloads, shape ``(n, m0*m1*m2)``.

        This is the copy that the preprocessing step serializes; queries
        never call it — they read payloads back from disk.
        """
        view = self._strided_view()
        ijk = self.id_to_ijk(ids)
        vals = view[ijk[:, 0], ijk[:, 1], ijk[:, 2]]
        n = len(ids)
        return vals.reshape(n, -1)

    def _strided_view(self) -> np.ndarray:
        """Zero-copy ``(gx, gy, gz, m0, m1, m2)`` overlapping-window view."""
        d = self._padded
        m0, m1, m2 = self.metacell_shape
        gx, gy, gz = self.grid_shape
        s0, s1, s2 = d.strides
        return as_strided(
            d,
            shape=(gx, gy, gz, m0, m1, m2),
            strides=((m0 - 1) * s0, (m1 - 1) * s1, (m2 - 1) * s2, s0, s1, s2),
            writeable=False,
        )


def partition_metacells(
    volume: Volume, metacell_shape: tuple[int, int, int] = (9, 9, 9)
) -> MetacellPartition:
    """Decompose a volume into metacells and compute per-metacell extrema.

    This is the scan pass of the paper's preprocessing: a single pass over
    the data producing, for every metacell, its id and scalar interval.
    """
    if len(metacell_shape) != 3:
        raise ValueError(f"metacell_shape must be 3D, got {metacell_shape}")
    padded = pad_for_metacells(np.ascontiguousarray(volume.data), metacell_shape)
    grid = metacell_grid_shape(volume.shape, metacell_shape)
    part = MetacellPartition(
        volume=volume,
        metacell_shape=tuple(int(m) for m in metacell_shape),  # type: ignore[arg-type]
        grid_shape=grid,
        vmin=np.empty(0),
        vmax=np.empty(0),
        _padded=padded,
    )
    view = part._strided_view()
    part.vmin = view.min(axis=(3, 4, 5)).reshape(-1)
    part.vmax = view.max(axis=(3, 4, 5)).reshape(-1)
    return part
