"""Procedural Richtmyer–Meshkov-instability-like time-varying fields.

The paper evaluates on the ASCI/LLNL Richtmyer–Meshkov instability run:
two gases separated by a perturbed membrane are shocked; bubbles and
spikes grow, merge, and break up into a turbulent mixing layer over 270
time steps of a 2048x2048x1920 one-byte entropy field (2.1 TB total).
That dataset is proprietary and terabyte-scale, so this module provides a
*procedural stand-in* (see DESIGN.md, substitutions).

What the indexing/striping algorithms actually consume is the span-space
distribution of metacell intervals.  The generator therefore reproduces
the qualitative structure that drives that distribution:

* two large homogeneous gas regions (constant metacells — the ~50% that
  preprocessing culls),
* a mixing layer around a perturbed interface whose amplitude and
  internal turbulence grow with time (the active band whose width — and
  hence active-metacell count — varies strongly with the isovalue),
* multi-mode initial perturbation (long + short wavelengths, as in the
  physical setup) whose modes interact as ``t`` advances.

The model is analytic/procedural, not a hydrodynamics solve: evaluation
of any time step is O(volume) and deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.datasets import smooth_noise
from repro.grid.volume import Volume


@dataclass
class RMInstabilityModel:
    """Parameterized Richtmyer–Meshkov-like mixing model.

    Parameters
    ----------
    shape:
        Vertex dimensions of each generated time step.  The mixing
        direction is the ``z`` axis (matching the 1920-deep axis of the
        original).
    n_steps:
        Nominal length of the simulated run (the paper's run has 270).
    light_value, heavy_value:
        Scalar plateau values of the two gases on the 8-bit scale.
    n_modes:
        Number of sinusoidal perturbation modes on the interface.
    seed:
        RNG seed fixing mode phases and the turbulence field.
    """

    shape: tuple[int, int, int] = (64, 64, 60)
    n_steps: int = 270
    light_value: float = 25.0
    heavy_value: float = 225.0
    n_modes: int = 6
    seed: int = 7
    _modes: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        rng = np.random.default_rng(self.seed)
        # Mode table: (kx, ky, phase, amplitude weight).  One long
        # wavelength mode plus progressively shorter ones, as in the
        # physical setup ("superposition of long wavelength and short
        # wavelength disturbances").
        kx = rng.integers(1, 4, size=self.n_modes).astype(np.float64)
        ky = rng.integers(1, 4, size=self.n_modes).astype(np.float64)
        kx[1:] += rng.integers(2, 7, size=self.n_modes - 1)
        ky[1:] += rng.integers(2, 7, size=self.n_modes - 1)
        phase = rng.uniform(0, 2 * np.pi, size=self.n_modes)
        weight = 1.0 / (1.0 + np.arange(self.n_modes))
        self._modes = np.stack([kx, ky, phase, weight], axis=1)

    # -- time-dependent physical quantities ---------------------------------

    def progress(self, t: int) -> float:
        """Normalized simulation time in [0, 1]."""
        if not 0 <= t < self.n_steps:
            raise ValueError(f"time step {t} outside [0, {self.n_steps})")
        return t / max(self.n_steps - 1, 1)

    def interface_z(self, t: int) -> float:
        """Mean interface position (fraction of depth): drifts with the shock."""
        s = self.progress(t)
        return 0.35 + 0.25 * s

    def amplitude(self, t: int) -> float:
        """Perturbation amplitude: linear growth saturating nonlinearly."""
        s = self.progress(t)
        return 0.02 + 0.10 * np.tanh(2.2 * s)

    def mixing_width(self, t: int) -> float:
        """Thickness of the diffuse/turbulent mixing layer."""
        s = self.progress(t)
        return 0.012 + 0.05 * s**1.5

    def turbulence_strength(self, t: int) -> float:
        """Relative strength of small-scale mixing noise (grows with Re)."""
        s = self.progress(t)
        return 0.15 + 0.85 * s**2

    # -- field synthesis -----------------------------------------------------

    def interface_height(self, t: int, nx: int, ny: int) -> np.ndarray:
        """Perturbed interface height field h(x, y) in depth fractions."""
        x = np.linspace(0, 1, nx)[:, None]
        y = np.linspace(0, 1, ny)[None, :]
        s = self.progress(t)
        h = np.zeros((nx, ny))
        for kx, ky, phase, w in self._modes:
            # short modes grow (and then phase-mix) faster than long ones
            growth = np.tanh(s * (1.0 + 0.35 * (kx + ky)))
            h += w * growth * np.sin(2 * np.pi * (kx * x + ky * y) + phase + 1.5 * s * kx)
        h /= np.abs(h).max() + 1e-12
        return self.interface_z(t) + self.amplitude(t) * h

    def evaluate(self, t: int) -> Volume:
        """Generate time step ``t`` as a one-byte :class:`Volume`."""
        nx, ny, nz = self.shape
        h = self.interface_height(t, nx, ny)  # (nx, ny)
        z = np.linspace(0, 1, nz)[None, None, :]
        width = self.mixing_width(t)
        # Signed distance from interface in depth fractions -> smooth blend.
        # Beyond |d| > 3.5 the gases are *exactly* pure: this preserves the
        # large constant regions that preprocessing culls (the paper's ~50%
        # disk saving), which a bare tanh tail would erode after rounding.
        d = (z - h[:, :, None]) / max(width, 1e-6)
        blend = 0.5 * (1.0 + np.tanh(d))
        blend = np.where(d < -3.5, 0.0, np.where(d > 3.5, 1.0, blend))
        fld = self.light_value + (self.heavy_value - self.light_value) * blend

        # Turbulent fluctuations confined strictly to the mixing layer.
        rng = np.random.default_rng(self.seed * 1_000_003 + t)
        envelope = np.exp(-0.5 * d**2)
        envelope = np.where(np.abs(d) > 3.5, 0.0, envelope)
        turb = smooth_noise(self.shape, feature_size=max(nx / 12, 2.0), rng=rng)
        fld = fld + self.turbulence_strength(t) * 95.0 * envelope * turb

        data = np.clip(np.rint(fld), 0, 255).astype(np.uint8)
        return Volume(data, name=f"rm_t{t:03d}")


def rm_timestep(
    t: int,
    shape: tuple[int, int, int] = (64, 64, 60),
    n_steps: int = 270,
    seed: int = 7,
) -> Volume:
    """One-shot convenience wrapper: generate a single RM-like time step."""
    return RMInstabilityModel(shape=shape, n_steps=n_steps, seed=seed).evaluate(t)


def rm_time_series(
    steps: "list[int] | range",
    shape: tuple[int, int, int] = (64, 64, 60),
    n_steps: int = 270,
    seed: int = 7,
):
    """Yield ``(t, Volume)`` for each requested time step.

    Steps are generated lazily so terabyte-style runs can be streamed one
    step at a time through preprocessing, exactly as the paper's pipeline
    scans the original data once.
    """
    model = RMInstabilityModel(shape=shape, n_steps=n_steps, seed=seed)
    for t in steps:
        yield t, model.evaluate(t)
