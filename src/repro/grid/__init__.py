"""Structured-grid volume substrate.

The paper operates on very large structured scalar fields (the LLNL
Richtmyer–Meshkov instability simulation: 2048x2048x1920 one-byte voxels
per time step, 270 steps).  This package provides:

``volume``
    :class:`Volume` — an in-memory structured scalar field with spacing,
    origin, quantization and downsampling helpers.
``metacell``
    The metacell decomposition of Section 4: overlapping 9x9x9-vertex
    subcubes, vectorized per-metacell min/max, constant-metacell culling.
``datasets``
    Analytic ground-truth fields (sphere, torus, Marschner–Lobb, gyroid)
    and synthetic stand-ins for the Table 1 datasets (Bunny, MRBrain,
    CTHead, Pressure, Velocity).
``rm_instability``
    A procedural Richtmyer–Meshkov-like time-varying generator standing in
    for the proprietary 2.1 TB LLNL dataset (see DESIGN.md, substitutions).
"""

from repro.grid.volume import Volume
from repro.grid.metacell import (
    MetacellPartition,
    metacell_grid_shape,
    pad_for_metacells,
    partition_metacells,
)
from repro.grid.datasets import (
    bunny_ct_like,
    ct_head_like,
    gyroid_field,
    marschner_lobb,
    mr_brain_like,
    pressure_like,
    sample_field,
    sphere_field,
    torus_field,
    velocity_like,
)
from repro.grid.rm_instability import RMInstabilityModel, rm_time_series, rm_timestep

__all__ = [
    "Volume",
    "MetacellPartition",
    "metacell_grid_shape",
    "pad_for_metacells",
    "partition_metacells",
    "sample_field",
    "sphere_field",
    "torus_field",
    "gyroid_field",
    "marschner_lobb",
    "bunny_ct_like",
    "ct_head_like",
    "mr_brain_like",
    "pressure_like",
    "velocity_like",
    "RMInstabilityModel",
    "rm_timestep",
    "rm_time_series",
]
