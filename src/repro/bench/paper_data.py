"""The paper's reported numbers, as data.

The IPPS 2006 text embeds its detailed per-isovalue tables as images, so
only the quantities restated in prose are available; they are collected
here and used by the benches to print paper-vs-measured comparisons.
Where a table's cell values are not recoverable from the text (Tables
2–8 bodies), the benches compare against the *shape* constraints below.
"""

from __future__ import annotations

#: Section 6/7 hardware and dataset facts.
PAPER_FACTS = {
    "disk_bandwidth_mb_s": 50.0,
    "rm_grid": (2048, 2048, 1920),
    "rm_time_steps": 270,
    "rm_bytes_per_step": 7.5 * 2**30,
    "rm_total_bytes": 2.1 * 2**40,
    "metacell_shape": (9, 9, 9),
    "metacell_record_bytes": 734,
    "metacell_grid": (256, 256, 240),
    "metacells_stored_step250": 5_592_802,
    "stored_bytes_step250": 3.828 * 2**30,
    "space_saving_step250": 0.49,
    "index_bytes_single_step": 6 * 1024,
    "index_bytes_all_steps": 1.6 * 2**20,
    "preprocess_minutes_single_step": 30,
}

#: Section 7.1 single-node observations (Table 2 summary).
PAPER_SINGLE_NODE = {
    "isovalues": list(range(10, 211, 20)),
    "triangles_min": 100e6,
    "triangles_max": 650e6,
    "rate_tri_per_s": (3.5e6, 4.0e6),
    "io_rate_mb_s": 50.0,
    # 'a linear relationship between the I/O time and the number of
    # triangles generated'
    "io_linear_in_output": True,
    # 'the triangle generation stage is the bottleneck'
    "triangulation_is_bottleneck": True,
}

#: Section 7.1 multi-node observations (Tables 3-5, Figures 5-6).
PAPER_SPEEDUPS = {
    4: (3.54, 3.97),
    8: (6.91, 7.83),
}

#: Table 8 configuration (time-varying case).
PAPER_TIMEVARYING = {
    "steps": list(range(180, 196)),
    "isovalue": 70,
    "nodes": 4,
}

#: Table 1 datasets: name -> (grid dims, scalar bytes).  The paper's
#: measured index sizes are in the (image) table; the claim restated in
#: prose is that the compact structure is 'substantially smaller', at
#: least 2x and usually much more, including for the N ~ n Pressure /
#: Velocity datasets.
PAPER_TABLE1_DATASETS = {
    "bunny": ((512, 512, 361), 2),
    "mrbrain": ((256, 256, 109), 2),
    "cthead": ((256, 256, 113), 2),
    "pressure": ((256, 256, 256), 2),
    "velocity": ((256, 256, 256), 2),
}

#: Figure 4 configuration.
PAPER_FIG4 = {
    "isovalue": 190,
    "time_step": 250,
    "downsampled_grid": (256, 256, 240),
}
