"""Assemble all bench outputs into one Markdown report.

Run after the bench suite::

    pytest benchmarks/ --benchmark-only
    python -m repro.bench.report

writes ``benchmarks/output/REPORT.md`` concatenating every persisted
table/figure in the paper's order, with generation metadata.
"""

from __future__ import annotations

import platform
from datetime import datetime, timezone
from pathlib import Path

from repro._version import __version__
from repro.bench.harness import OUTPUT_DIR

#: Section order: (heading, output file).
SECTIONS = [
    ("Preprocessing (Section 7 preamble)", "preprocess_stats.txt"),
    ("Table 1 — index sizes", "table1_index_sizes.txt"),
    ("Table 2 — single node", "table2_single_node.txt"),
    ("Table 3 — two nodes", "table3_2_nodes.txt"),
    ("Table 4 — four nodes", "table4_4_nodes.txt"),
    ("Table 5 — eight nodes", "table5_8_nodes.txt"),
    ("Table 6 — active metacell balance", "table6_amc_balance.txt"),
    ("Table 7 — triangle balance", "table7_triangle_balance.txt"),
    ("Table 8 — time-varying", "table8_timevarying.txt"),
    ("Figures 1 & 2 — span space and tree structure", "fig1_fig2_structures.txt"),
    ("Figure 4 — isosurface render", "fig4_render.txt"),
    ("Figure 5 — overall time", "fig5_overall_time.txt"),
    ("Figure 6 — speedups", "fig6_speedups.txt"),
    ("Ablation — distribution schemes", "ablation_distribution.txt"),
    ("Ablation — query I/O", "ablation_query_io.txt"),
    ("Ablation — metacell size", "ablation_metacell_size.txt"),
    ("Ablation — compositing schedules", "ablation_compositing.txt"),
    ("Ablation — external index blocking", "ablation_external_index.txt"),
    ("Ablation — Case-2 read-ahead", "ablation_read_ahead.txt"),
    ("Ablation — parallel execution models", "ablation_parallel_baseline.txt"),
    ("Weak scaling", "weak_scaling.txt"),
    ("Interactive exploration", "interactive_exploration.txt"),
    ("Unstructured pipeline", "unstructured_pipeline.txt"),
    ("Python wall-clock throughput", "python_throughput.txt"),
]


def build_report(output_dir: Path | None = None) -> Path:
    """Concatenate available bench outputs into REPORT.md."""
    out_dir = Path(output_dir) if output_dir else OUTPUT_DIR
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    lines = [
        "# Bench report — out-of-core isosurface extraction reproduction",
        "",
        f"Generated {stamp} · repro {__version__} · "
        f"python {platform.python_version()} on {platform.machine()}",
        "",
        "Paper: Wang, JaJa, Varshney — IPPS 2006.  See EXPERIMENTS.md for "
        "the paper-vs-measured discussion; this file is the raw output of "
        "the most recent `pytest benchmarks/ --benchmark-only` run.",
        "",
    ]
    missing = []
    for heading, name in SECTIONS:
        path = out_dir / name
        if not path.exists():
            missing.append(name)
            continue
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    if missing:
        lines.append("## Missing outputs")
        lines.append("")
        lines.append(
            "The following benches have not been run (re-run the bench suite):"
        )
        for name in missing:
            lines.append(f"* `{name}`")
        lines.append("")
    report = out_dir / "REPORT.md"
    report.parent.mkdir(parents=True, exist_ok=True)
    report.write_text("\n".join(lines))
    return report


def main() -> int:
    path = build_report()
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
