"""ASCII table rendering for the bench reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    floatfmt: str = "{:.3f}",
) -> str:
    """Render rows as a boxed ASCII table.

    Floats are formatted with ``floatfmt``; everything else via ``str``.
    """
    def cell(v) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row with {len(row)} cells under {len(headers)} headers"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(ch: str = "-", joint: str = "+") -> str:
        return joint + joint.join(ch * (w + 2) for w in widths) + joint

    def render_row(cells) -> str:
        return "|" + "|".join(f" {c:>{w}} " for c, w in zip(cells, widths)) + "|"

    out = []
    if title:
        out.append(title)
    out.append(line())
    out.append(render_row(headers))
    out.append(line("="))
    for row in str_rows:
        out.append(render_row(row))
    out.append(line())
    return "\n".join(out)


def format_kv(title: str, pairs: "list[tuple[str, object]]") -> str:
    """Render a labelled key/value block."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title]
    for k, v in pairs:
        if isinstance(v, float):
            v = f"{v:.4g}"
        lines.append(f"  {k:<{width}} : {v}")
    return "\n".join(lines)


def human_bytes(n: float) -> str:
    """1536 -> '1.5 KiB'."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    raise AssertionError("unreachable")
