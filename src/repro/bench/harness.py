"""Shared harness for the table/figure reproduction benches.

Scaling contract
----------------
The paper's runs use a 7.5 GB time step; the benches default to a
~100^3 synthetic step (override with ``REPRO_BENCH_SCALE=2,3,...``).
Per-metacell costs (bytes read, cells examined, triangles emitted) are
scale-invariant, so stage-time *ratios* transfer directly — with one
exception: disk seeks are charged per *brick*, and scaled-down volumes
have bricks thousands of times smaller than the paper's (~10 records vs
~5000), so a physical 8 ms seek would dominate everything and hide the
algorithm.  :func:`scaled_perf_model` therefore scales seek latency by
the measured mean brick size relative to the paper's, preserving the
paper's seek-to-transfer ratio.  Raw counts (blocks, seeks) are reported
unscaled in every bench output.

The expensive sweep over {isovalues} x {1, 2, 4, 8 nodes} is computed
once per pytest session and shared by the Table 2–7 / Figure 5–6
benches via :func:`get_sweep`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bench.paper_data import PAPER_FACTS
from repro.grid.rm_instability import RMInstabilityModel
from repro.grid.volume import Volume
from repro.io.cost_model import IOCostModel
from repro.parallel.cluster import ClusterResult, SimulatedCluster
from repro.parallel.perfmodel import PAPER_CLUSTER, PerformanceModel

#: Where benches drop their tables/CSVs/images.
OUTPUT_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "output"

#: Mean brick payload on the paper's time step 250: 5,592,802 records
#: over the O(n log n) brick count (n = 256 one-byte endpoints).
_PAPER_MEAN_BRICK_BYTES = (
    PAPER_FACTS["metacells_stored_step250"] / 1000 * PAPER_FACTS["metacell_record_bytes"]
)


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by all benches (env-overridable)."""

    #: The paper sweeps isovalues 10..210 (step 20) over its 0..255
    #: entropy field.  Our stand-in's dynamic range is ~[16, 243], so the
    #: equivalent interior sweep is 30..230 — same count, same step, same
    #: relative coverage of the value range.
    scale: int = 1
    isovalues: tuple = tuple(range(30, 231, 20))
    metacell_shape: tuple = (9, 9, 9)
    time_step: int = 250
    n_steps: int = 270
    seed: int = 7
    #: Framebuffer for modeled render/composite costs, scaled with the
    #: data: the paper moves a ~21 MB buffer per node against ~40 s of
    #: extraction (0.04% of node time); a 32x32 buffer against our ~20 ms
    #: extractions keeps the same proportion.  Figure 4 renders at full
    #: resolution regardless.
    image_size: tuple = (32, 32)
    node_counts: tuple = (1, 2, 4, 8)

    @property
    def rm_shape(self) -> tuple:
        """k*8+1 vertices per axis so 9^3 metacells tile exactly."""
        kx = 12 * self.scale
        kz = 11 * self.scale
        return (8 * kx + 1, 8 * kx + 1, 8 * kz + 1)

    @staticmethod
    def from_env() -> "BenchConfig":
        """Build the config from REPRO_BENCH_SCALE (default 1)."""
        scale = int(os.environ.get("REPRO_BENCH_SCALE", "1"))
        if scale < 1:
            raise ValueError(f"REPRO_BENCH_SCALE must be >= 1, got {scale}")
        return BenchConfig(scale=scale)


def rm_bench_volume(cfg: BenchConfig, time_step: int | None = None) -> Volume:
    """The bench's stand-in for the paper's RM time step."""
    model = RMInstabilityModel(shape=cfg.rm_shape, n_steps=cfg.n_steps, seed=cfg.seed)
    return model.evaluate(cfg.time_step if time_step is None else time_step)


def scaled_perf_model(dataset, base: PerformanceModel = PAPER_CLUSTER) -> PerformanceModel:
    """Scale the *granularity* constants (seek latency, block size) to the
    dataset's mean brick size; all bandwidths and compute rates stay
    physical.

    At the paper's scale a brick holds ~5000 records (~4 MiB): one 8 ms
    seek and one 8 KiB partial block per brick are noise.  A scaled-down
    volume has ~10-record bricks, where the same constants would charge
    more for per-brick overhead than for the data itself — a pure
    artifact of miniaturization.  Scaling both constants by
    ``mean_brick_bytes / paper_mean_brick_bytes`` keeps the
    overhead-to-transfer ratio equal to the paper's, so stage-time shapes
    transfer.  Raw block/seek *counts* remain available unscaled in every
    result's ``io_stats``.
    """
    tree = dataset.tree
    if tree.n_bricks == 0:
        return base
    mean_brick_bytes = tree.n_records / tree.n_bricks * dataset.codec.record_size
    factor = min(1.0, mean_brick_bytes / _PAPER_MEAN_BRICK_BYTES)
    disk = IOCostModel(
        block_size=max(64, int(base.disk.block_size * factor)),
        bandwidth=base.disk.bandwidth,
        seek_latency=max(base.disk.seek_latency * factor, 1e-7),
    )
    return PerformanceModel(disk=disk, cpu=base.cpu, gpu=base.gpu, network=base.network)


@dataclass
class SweepRow:
    """One (p, isovalue) cell of the paper's experiment grid."""

    p: int
    lam: float
    n_active_metacells: int
    n_triangles: int
    io_time: float
    triangulation_time: float
    render_time: float
    composite_time: float
    total_time: float
    blocks_read: int
    seeks: int
    measured_seconds: float
    per_node_amc: "list[int]"
    per_node_tris: "list[int]"
    per_node_io: "list[float]"
    per_node_tri_t: "list[float]"
    per_node_render_t: "list[float]"

    @property
    def rate_tri_per_s(self) -> float:
        return self.n_triangles / self.total_time if self.total_time > 0 else 0.0


@dataclass
class SweepData:
    """The full {p} x {isovalue} sweep used by Tables 2–7 and Figs 5–6."""

    cfg: BenchConfig
    report: object
    rows: "dict[tuple[int, float], SweepRow]" = field(default_factory=dict)

    def row(self, p: int, lam: float) -> SweepRow:
        """The (node count, isovalue) cell of the sweep."""
        return self.rows[(p, float(lam))]

    def series(self, p: int, attr: str) -> "tuple[list[float], list[float]]":
        """(isovalues, attr values) series for one node count."""
        lams = sorted({k[1] for k in self.rows if k[0] == p})
        return lams, [getattr(self.rows[(p, lam)], attr) for lam in lams]


def _result_to_row(res: ClusterResult, measured: float) -> SweepRow:
    return SweepRow(
        p=res.p,
        lam=res.lam,
        n_active_metacells=res.n_active_metacells,
        n_triangles=res.n_triangles,
        io_time=max(n.io_time for n in res.nodes),
        triangulation_time=max(n.triangulation_time for n in res.nodes),
        render_time=max(n.render_time for n in res.nodes),
        composite_time=res.composite_time,
        total_time=res.total_time,
        blocks_read=sum(n.io_stats.blocks_read for n in res.nodes),
        seeks=sum(n.io_stats.seeks for n in res.nodes),
        measured_seconds=measured,
        per_node_amc=[n.n_active_metacells for n in res.nodes],
        per_node_tris=[n.n_triangles for n in res.nodes],
        per_node_io=[n.io_time for n in res.nodes],
        per_node_tri_t=[n.triangulation_time for n in res.nodes],
        per_node_render_t=[n.render_time for n in res.nodes],
    )


_SWEEP_CACHE: "dict[BenchConfig, SweepData]" = {}
_CLUSTER_CACHE: "dict[tuple[BenchConfig, int], SimulatedCluster]" = {}


def get_cluster(cfg: BenchConfig, p: int) -> SimulatedCluster:
    """Build (or reuse) the p-node cluster over the bench RM volume with
    the brick-size-scaled performance model."""
    key = (cfg, p)
    if key not in _CLUSTER_CACHE:
        volume = rm_bench_volume(cfg)
        # Probe build to measure brick sizes, then build with scaled model.
        from repro.core.builder import build_indexed_dataset

        probe = build_indexed_dataset(volume, cfg.metacell_shape)
        perf = scaled_perf_model(probe)
        _CLUSTER_CACHE[key] = SimulatedCluster(
            volume, p, cfg.metacell_shape, perf=perf, image_size=cfg.image_size
        )
    return _CLUSTER_CACHE[key]


def get_sweep(cfg: BenchConfig) -> SweepData:
    """Run (once per session) the full paper sweep."""
    if cfg in _SWEEP_CACHE:
        return _SWEEP_CACHE[cfg]
    import time

    data = SweepData(cfg=cfg, report=None)
    for p in cfg.node_counts:
        cluster = get_cluster(cfg, p)
        data.report = cluster.report
        for lam in cfg.isovalues:
            t0 = time.perf_counter()
            res = cluster.extract(float(lam))
            measured = time.perf_counter() - t0
            data.rows[(p, float(lam))] = _result_to_row(res, measured)
    _SWEEP_CACHE[cfg] = data
    return data


def output_path(name: str) -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR / name


def emit(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/output/."""
    print()
    print(text)
    output_path(name).write_text(text + "\n")


# -- machine-readable bench output ------------------------------------------

#: Schema tag stamped into every ``BENCH_<name>.json``; bump on any
#: incompatible payload change so downstream consumers (CI's
#: ``tools/check_bench_schema.py``, dashboards) fail loudly instead of
#: silently mis-parsing.
BENCH_SCHEMA = "repro-bench/1"


def validate_bench_payload(payload) -> None:
    """Raise ``ValueError`` unless *payload* is a valid ``repro-bench/1``
    document.

    The contract: ``schema`` equals :data:`BENCH_SCHEMA`; ``name`` is a
    non-empty string; ``scale`` is a positive int; ``metrics`` is a
    non-empty mapping of string names to finite numbers; an optional
    ``extra`` mapping carries free-form context (string keys, JSON
    scalars).  No other top-level keys are allowed.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"bench payload must be a dict, got {type(payload).__name__}")
    allowed = {"schema", "name", "scale", "metrics", "extra"}
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown bench payload keys: {sorted(unknown)}")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench schema mismatch: want {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"bench name must be a non-empty string, got {name!r}")
    scale = payload.get("scale")
    if not isinstance(scale, int) or isinstance(scale, bool) or scale < 1:
        raise ValueError(f"bench scale must be a positive int, got {scale!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError("bench metrics must be a non-empty dict")
    for key, value in metrics.items():
        if not isinstance(key, str) or not key:
            raise ValueError(f"bench metric names must be non-empty strings, got {key!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"bench metric {key!r} must be a number, got {value!r}")
        if not math.isfinite(value):
            raise ValueError(f"bench metric {key!r} must be finite, got {value!r}")
    extra = payload.get("extra", {})
    if not isinstance(extra, dict) or any(not isinstance(k, str) for k in extra):
        raise ValueError("bench extra must be a dict with string keys")


def emit_bench_json(name: str, metrics: dict, scale: int = 1,
                    extra: "dict | None" = None) -> Path:
    """Persist one bench's headline numbers as ``BENCH_<name>.json``.

    The payload is validated against :data:`BENCH_SCHEMA` before writing
    and serialized with sorted keys, so same-inputs re-runs produce
    byte-identical files.  Returns the path written.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "scale": scale,
        "metrics": dict(metrics),
    }
    if extra:
        payload["extra"] = dict(extra)
    validate_bench_payload(payload)
    path = output_path(f"BENCH_{name}.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
