"""ASCII charts and CSV dumps for the figure-reproduction benches."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np


def ascii_chart(
    series: "Mapping[str, tuple[Sequence[float], Sequence[float]]]",
    width: int = 68,
    height: int = 18,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Plot one or more (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker character; shared axes are auto-scaled.
    """
    markers = "ox+*#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if len(xs_all) == 0:
        return "(empty chart)"
    x0, x1 = float(xs_all.min()), float(xs_all.max())
    y0, y1 = float(ys_all.min()), float(ys_all.max())
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    grid = [[" "] * width for _ in range(height)]
    for (label, (xs, ys)), marker in zip(series.items(), markers):
        for x, y in zip(xs, ys):
            cx = int(round((float(x) - x0) / (x1 - x0) * (width - 1)))
            cy = int(round((float(y) - y0) / (y1 - y0) * (height - 1)))
            grid[height - 1 - cy][cx] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y1:>10.3g} ^")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y0:>10.3g} +" + "-" * width + f"> {xlabel}")
    lines.append(" " * 12 + f"[{x0:.3g} .. {x1:.3g}]   y: {ylabel}")
    legend = "   ".join(
        f"{m} = {label}" for (label, _), m in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def heatmap_to_rgb(
    hist: np.ndarray,
    log_scale: bool = True,
    low=(12, 16, 38),
    high=(255, 214, 84),
) -> np.ndarray:
    """Map a 2D histogram to an RGB uint8 image (origin bottom-left).

    Used by the Figure-1 reproduction: span-space density, with the
    histogram's x axis (vmin) horizontal and y axis (vmax) growing
    upward, so the diagonal support reads like the paper's diagram.
    """
    hist = np.asarray(hist, dtype=np.float64)
    v = np.log1p(hist) if log_scale else hist
    top = v.max()
    t = v / top if top > 0 else v
    lo = np.asarray(low, dtype=np.float64)
    hi = np.asarray(high, dtype=np.float64)
    rgb = lo[None, None, :] * (1 - t[..., None]) + hi[None, None, :] * t[..., None]
    # hist[i, j] -> pixel row (flip j to put vmax up), column i.
    img = rgb.transpose(1, 0, 2)[::-1]
    return np.clip(img + 0.5, 0, 255).astype(np.uint8)


def draw_box(
    img: np.ndarray, row0: int, row1: int, col0: int, col1: int, color=(255, 80, 60)
) -> None:
    """Draw a 1-pixel rectangle outline in place (clipped to the image)."""
    h, w = img.shape[:2]
    row0, row1 = sorted((max(0, min(row0, h - 1)), max(0, min(row1, h - 1))))
    col0, col1 = sorted((max(0, min(col0, w - 1)), max(0, min(col1, w - 1))))
    c = np.asarray(color, dtype=np.uint8)
    img[row0, col0 : col1 + 1] = c
    img[row1, col0 : col1 + 1] = c
    img[row0 : row1 + 1, col0] = c
    img[row0 : row1 + 1, col1] = c


def upscale_nearest(img: np.ndarray, factor: int) -> np.ndarray:
    """Integer nearest-neighbour upscale (crisp pixels for small grids)."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return np.repeat(np.repeat(img, factor, axis=0), factor, axis=1)


def write_csv(
    path: str | Path, headers: Sequence[str], rows: "Sequence[Sequence]"
) -> Path:
    """Dump rows to CSV (for external replotting of any figure)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
