"""Benchmark harness: shared config, paper reference data, formatting.

The actual benches live in ``benchmarks/`` at the repository root, one
file per paper table/figure plus the ablations; this package holds the
machinery they share.
"""

from repro.bench.harness import (
    BenchConfig,
    SweepData,
    SweepRow,
    emit,
    get_cluster,
    get_sweep,
    output_path,
    rm_bench_volume,
    scaled_perf_model,
)
from repro.bench.figures import ascii_chart, write_csv
from repro.bench.tables import format_kv, format_table, human_bytes

__all__ = [
    "BenchConfig",
    "SweepData",
    "SweepRow",
    "emit",
    "get_cluster",
    "get_sweep",
    "output_path",
    "rm_bench_volume",
    "scaled_perf_model",
    "ascii_chart",
    "write_csv",
    "format_table",
    "format_kv",
    "human_bytes",
]
