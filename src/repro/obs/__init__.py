"""Observability: structured tracing and metrics on the modeled clock.

The paper's performance claims (Sections 6-7) are statements about
per-stage time: I/O-optimal retrieval, balanced triangulation, bounded
compositing overhead.  This package makes those quantities *visible*
without perturbing them:

* :class:`~repro.obs.tracer.Tracer` opens nested spans per pipeline
  stage (plan, brick read, checksum verify, triangulate, rasterize,
  composite) whose timestamps are **modeled seconds** read off the
  device meters — so traces are deterministic and seed-reproducible,
  byte for byte.
* :class:`~repro.obs.metrics.MetricsRegistry` unifies the formerly
  disconnected counters (``IOStats``, ``NodeMetrics``, health
  transitions, deadline coverage) into one flat, queryable namespace.
* :mod:`~repro.obs.export` writes Chrome trace-event JSON (loadable in
  ``chrome://tracing`` / Perfetto) and a flat metrics JSON.

The default tracer is :data:`~repro.obs.tracer.NULL_TRACER`, a shared
no-op: uninstrumented runs pay nothing beyond an attribute check, and
healthy-path I/O accounting is untouched either way (tracing only
*reads* the meters the pipeline already keeps).
"""

from repro.obs.export import (
    chrome_trace_events,
    dumps_chrome_trace,
    dumps_metrics,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    EventRecord,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    coerce_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "coerce_tracer",
    "Span",
    "SpanRecord",
    "EventRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "dumps_chrome_trace",
    "dumps_metrics",
    "write_chrome_trace",
    "write_metrics_json",
]
