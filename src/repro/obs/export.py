"""Deterministic trace/metrics serialization.

Chrome trace-event format (the ``chrome://tracing`` / Perfetto JSON
flavour): spans become complete events (``"ph": "X"``) with microsecond
timestamps, instant annotations become ``"ph": "i"`` events, and each
modeled track (cluster, node0, node1, ...) is named via thread-name
metadata events.  Everything is sorted by a deterministic key and
serialized with sorted keys and fixed separators, so two same-seed runs
produce **byte-identical** files — the reproducibility contract the
acceptance test pins.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Trace timestamps are microseconds of modeled time.
_US = 1e6


def _track_ids(tracer) -> "dict[str, int]":
    """Stable track -> tid mapping (sorted track names, tid from 1)."""
    return {name: i + 1 for i, name in enumerate(tracer.tracks())}


def chrome_trace_events(tracer) -> "list[dict]":
    """The tracer's contents as a list of Chrome trace-event dicts."""
    tids = _track_ids(tracer)
    events: "list[tuple]" = []
    for name, tid in tids.items():
        events.append((tid, -1.0, 0.0, 0, {
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": name},
        }))
    for s in tracer.spans:
        tid = tids[s.track]
        events.append((tid, s.start, -s.duration, s.seq, {
            "ph": "X", "pid": 1, "tid": tid, "name": s.name,
            "cat": s.category, "ts": s.start * _US, "dur": s.duration * _US,
            "args": dict(s.args),
        }))
    for e in tracer.events:
        tid = tids[e.track]
        events.append((tid, e.time, 0.0, e.seq, {
            "ph": "i", "pid": 1, "tid": tid, "name": e.name,
            "cat": e.category, "ts": e.time * _US, "s": "t",
            "args": dict(e.args),
        }))
    # Sort: per track, by start time, longest span first (so parents
    # precede their children at equal timestamps), then emission order.
    events.sort(key=lambda t: t[:4])
    return [ev for *_, ev in events]


def dumps_chrome_trace(tracer) -> str:
    """Chrome-loadable JSON text (deterministic bytes)."""
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "modeled-seconds", "source": "repro.obs"},
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(path, tracer) -> Path:
    """Write the trace as Chrome trace-event JSON; returns the path."""
    p = Path(path)
    p.write_text(dumps_chrome_trace(tracer))
    return p


def dumps_metrics(registry, extra: "dict | None" = None) -> str:
    """Flat metrics JSON text: one sorted ``{name: value}`` mapping."""
    doc = {"schema": "repro-metrics/1", "metrics": registry.to_dict()}
    if extra:
        doc.update(extra)
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def write_metrics_json(path, registry, extra: "dict | None" = None) -> Path:
    """Write the registry as flat metrics JSON; returns the path."""
    p = Path(path)
    p.write_text(dumps_metrics(registry, extra))
    return p
