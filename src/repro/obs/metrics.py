"""One queryable namespace for every counter the pipeline keeps.

Before this module, the repo's observability was four disconnected
structs: :class:`~repro.io.blockdevice.IOStats` (device meters),
:class:`~repro.parallel.metrics.NodeMetrics` (per-node stage times),
:class:`~repro.core.deadline.DeadlineReport` (budget accounting), and
the health monitor's transition log.  A :class:`MetricsRegistry` unifies
them under dotted names (``io.blocks_read``, ``node.2.coverage``,
``cluster.recovery.replica-read``, ``health.transitions``, ...) with
three instrument kinds:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — last-written value (``set``);
* :class:`Histogram` — count/sum/min/max of observations (``observe``).

``to_dict()`` flattens everything into one sorted ``{name: number}``
mapping (histograms contribute ``name.count`` / ``name.sum`` /
``name.min`` / ``name.max``), which is what the flat metrics JSON
exporter and the ``repro metrics`` CLI print.  All values derive from
counted work on the modeled clock, so registries are deterministic
across same-seed runs.
"""

from __future__ import annotations

from collections import deque

from repro.io.cost_model import latency_quantile


class SlidingWindow:
    """Bounded window of the most recent observations with deterministic
    nearest-rank quantiles.

    The registry's :class:`Histogram` deliberately keeps only
    count/sum/min/max — cheap and mergeable — but a load controller
    needs *recent* tail latency (p99 of the last N completions), which a
    lifetime summary cannot provide.  This is that instrument: a
    fixed-capacity deque plus :func:`~repro.io.cost_model.latency_quantile`,
    so same-seed runs see bit-identical quantiles.
    """

    __slots__ = ("_window",)

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"window capacity must be >= 1, got {capacity}")
        self._window: "deque[float]" = deque(maxlen=capacity)

    def observe(self, value: "int | float") -> None:
        self._window.append(float(value))

    def quantile(self, q: float) -> "float | None":
        """Nearest-rank quantile of the window, or None when empty."""
        if not self._window:
            return None
        return latency_quantile(list(self._window), q)

    def __len__(self) -> int:
        return len(self._window)


class Counter:
    """Monotonically increasing metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "int | float" = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "int | float" = 0

    def set(self, value: "int | float") -> None:
        self.value = value


class Histogram:
    """Streaming summary of observations: count, sum, min, max."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum: "int | float" = 0
        self.min: "int | float | None" = None
        self.max: "int | float | None" = None

    def observe(self, value: "int | float") -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges, and histograms in one flat namespace.

    A name belongs to exactly one instrument kind; re-registering it as
    a different kind raises, which catches namespace collisions early.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.inc("io.blocks_read", 42)
    >>> reg.set_gauge("cluster.coverage", 1.0)
    >>> reg.observe("io.read_seconds", 0.5)
    >>> reg.observe("io.read_seconds", 1.5)
    >>> reg.to_dict()["io.blocks_read"]
    42
    >>> reg.to_dict()["io.read_seconds.mean"]
    1.0
    """

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    # -- instrument access ----------------------------------------------

    def _check_free(self, name: str, kind: "dict") -> None:
        for store, label in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if store is not kind and name in store:
                raise ValueError(f"metric {name!r} already registered as a {label}")

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, self._counters)
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, self._gauges)
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram()
        return self._histograms[name]

    # -- conveniences ---------------------------------------------------

    def inc(self, name: str, amount: "int | float" = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: "int | float") -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: "int | float") -> None:
        self.histogram(name).observe(value)

    def absorb_io_stats(self, stats, prefix: str = "io") -> None:
        """Fold an :class:`~repro.io.blockdevice.IOStats` (or anything
        with its counter attributes) into ``{prefix}.*`` counters.

        This is the unification point: every device meter in a run —
        node disks, hedged wrappers, replica hosts — lands in the same
        namespace, additive.
        """
        for name, value in stats.as_dict().items():
            self.inc(f"{prefix}.{name}", value)

    def absorb_cache_stats(self, stats, prefix: str = "cache") -> None:
        """Publish a :class:`~repro.io.cache.CacheStats` snapshot as
        ``{prefix}.hits`` / ``.misses`` / ``.evictions`` /
        ``.invalidations`` / ``.hit_rate`` gauges.

        Gauges, not counters: ``CacheStats`` is already cumulative over
        the device's lifetime, so re-publishing after every query must
        overwrite rather than double-count.  Multiple caches fold into
        one namespace by summing snapshots before the call, or by
        distinct prefixes (``cache.node0`` etc.).
        """
        self.set_gauge(f"{prefix}.hits", stats.hits)
        self.set_gauge(f"{prefix}.misses", stats.misses)
        self.set_gauge(f"{prefix}.evictions", stats.evictions)
        self.set_gauge(f"{prefix}.invalidations", stats.invalidations)
        self.set_gauge(f"{prefix}.hit_rate", stats.hit_rate)

    def absorb_result_cache_stats(self, stats, prefix: str = "rcache") -> None:
        """Publish a :class:`~repro.serve.rcache.ResultCacheStats`
        snapshot as ``{prefix}.*`` gauges — same cumulative-overwrite
        contract as :meth:`absorb_cache_stats`, with the two tiers
        (record prefixes, triangle batches) broken out alongside the
        combined totals.
        """
        self.set_gauge(f"{prefix}.hits", stats.hits)
        self.set_gauge(f"{prefix}.misses", stats.misses)
        self.set_gauge(f"{prefix}.hit_rate", stats.hit_rate)
        self.set_gauge(f"{prefix}.record_hits", stats.record_hits)
        self.set_gauge(f"{prefix}.record_misses", stats.record_misses)
        self.set_gauge(f"{prefix}.mesh_hits", stats.mesh_hits)
        self.set_gauge(f"{prefix}.mesh_misses", stats.mesh_misses)
        self.set_gauge(f"{prefix}.evictions", stats.evictions)
        self.set_gauge(f"{prefix}.invalidations", stats.invalidations)
        self.set_gauge(f"{prefix}.records_from_cache",
                       stats.records_from_cache)

    def remove_prefix(self, prefix: str) -> int:
        """Drop every instrument named ``prefix`` or ``prefix.*``;
        returns how many were removed.

        The elastic cluster uses this when a member leaves for good: a
        gone node's ``elastic.node.<id>.*`` gauges would otherwise
        report its last-published values forever, which reads as a live
        node to dashboards.  Counters that must survive the node (bytes
        migrated, failovers) live under cluster-wide names and are
        untouched.
        """
        removed = 0
        for store in (self._counters, self._gauges, self._histograms):
            doomed = [
                k for k in store
                if k == prefix or k.startswith(prefix + ".")
            ]
            for k in doomed:
                del store[k]
            removed += len(doomed)
        return removed

    # -- queries and export ---------------------------------------------

    def query(self, prefix: str) -> "dict[str, int | float]":
        """Flat view of every metric whose name starts with ``prefix``."""
        return {
            k: v for k, v in self.to_dict().items()
            if k == prefix or k.startswith(prefix + ".")
        }

    def value(self, name: str) -> "int | float":
        """The current value of a counter or gauge by exact name."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        raise KeyError(f"no counter or gauge named {name!r}")

    def to_dict(self) -> "dict[str, int | float]":
        """Everything, flattened and sorted by name."""
        out: "dict[str, int | float]" = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            out[f"{name}.count"] = h.count
            out[f"{name}.sum"] = h.sum
            out[f"{name}.mean"] = h.mean
            if h.min is not None:
                out[f"{name}.min"] = h.min
                out[f"{name}.max"] = h.max
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
