"""Structured spans on the modeled clock.

A :class:`Tracer` records what the pipeline did and how long each part
took in **modeled seconds** — the same clock the cost model derives from
counted blocks, seeks, and injected fault delay.  Wall time never enters
a trace, which is what makes two same-seed runs produce byte-identical
trace files (the property ``tests/test_trace_cluster.py`` pins).

Time model
----------
Every span lives on a *track* (one per simulated node, plus a cluster
track), and each track carries a monotone cursor starting at 0.0.  A
span opened on a track starts at the track's cursor; code inside the
span *charges* modeled seconds (usually a device-meter delta), which
advances the cursor; closing the span fixes its duration as the cursor
movement while it was open.  Children therefore nest exactly inside
their parent and their durations sum to at most the parent's — the
invariant the span tests assert.

Summary spans whose extent is only known after the fact (a node's final
accounted stage times, the composite step) are emitted explicitly with
:meth:`Tracer.record`.

Naming
------
Span and instant names are dotted, prefixed by subsystem: ``io.*`` and
``node.*`` for the extraction pipeline, ``serve.*`` for the serving
front-end, and ``elastic.*`` for membership events — ``elastic.migrate``
per stripe move, ``elastic.rebalance.start``/``.done`` bracketing a
plan, ``elastic.autoscale`` per scale decision, all on an ``elastic``
track with ``category="elastic"`` so Perfetto can filter the control
plane from the data plane.

Cross-query result reuse emits ``rcache.*`` instants with
``category="cache"``: ``rcache.mesh_hit`` when a node's whole answer is
served from the λ-keyed result cache without touching the plan
(``args``: stripe, lam), and ``rcache.coalesce`` when the serving layer
attaches a duplicate in-flight query to its leader instead of
dispatching it (``args``: request, leader, lam).  Both are free
on the modeled clock by construction — the instants exist so a trace
shows *why* an extraction or dispatch left no ``io.*`` spans behind.

The module-level :data:`NULL_TRACER` is the shared no-op used whenever
no tracer was supplied; its methods do nothing and allocate nothing, so
the un-traced hot path stays effectively free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Track used when a span is opened with no track and none is active.
DEFAULT_TRACK = "main"


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: a named interval of modeled time on a track."""

    name: str
    category: str
    track: str
    start: float
    duration: float
    args: "dict"
    seq: int


@dataclass(frozen=True)
class EventRecord:
    """One instant annotation (hedge fired, retry, speculation, ...)."""

    name: str
    category: str
    track: str
    time: float
    args: "dict"
    seq: int


class Span:
    """An open span; context-manager handle returned by :meth:`Tracer.span`.

    While open, :meth:`charge` advances the owning track's modeled
    cursor (and thereby this span's eventual duration), and
    :meth:`annotate` drops instant events at the current cursor.
    """

    __slots__ = ("_tracer", "name", "category", "track", "start", "args", "_closed")

    def __init__(self, tracer: "Tracer", name: str, category: str, track: str,
                 start: float, args: "dict") -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.args = args
        self._closed = False

    def charge(self, seconds: float) -> None:
        """Advance this span's track cursor by ``seconds`` of modeled time."""
        self._tracer.charge(seconds, track=self.track)

    def annotate(self, name: str, args: "dict | None" = None,
                 category: "str | None" = None) -> None:
        """Record an instant event at the current cursor of this track."""
        self._tracer.instant(
            name, args=args, track=self.track,
            category=category or self.category,
        )

    def merge_args(self, **kwargs) -> None:
        """Attach (or overwrite) args on the span record."""
        self.args.update(kwargs)

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._tracer._close_span(self)


class Tracer:
    """Collects spans and instant events on per-track modeled clocks.

    Examples
    --------
    >>> tr = Tracer()
    >>> with tr.span("extract", track="node0") as sp:
    ...     with tr.span("read") as rd:      # inherits track "node0"
    ...         rd.charge(0.25)
    ...     sp.annotate("hedge.fired")
    >>> [(s.name, s.start, s.duration) for s in tr.spans]
    [('read', 0.0, 0.25), ('extract', 0.0, 0.25)]
    >>> tr.cursor("node0")
    0.25
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.spans: "list[SpanRecord]" = []
        self.events: "list[EventRecord]" = []
        self._cursor: "dict[str, float]" = {}
        self._open: "list[Span]" = []
        self._seq = 0

    # -- clock ----------------------------------------------------------

    def cursor(self, track: "str | None" = None) -> float:
        """Current modeled time of ``track`` (default: the active track)."""
        return self._cursor.get(self._resolve_track(track), 0.0)

    def charge(self, seconds: float, track: "str | None" = None) -> None:
        """Advance a track's cursor by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        key = self._resolve_track(track)
        self._cursor[key] = self._cursor.get(key, 0.0) + seconds

    def seek(self, track: str, t: float) -> None:
        """Move a track's cursor forward to at least ``t`` (monotone)."""
        self._cursor[track] = max(self._cursor.get(track, 0.0), t)

    def _resolve_track(self, track: "str | None") -> str:
        if track is not None:
            return track
        if self._open:
            return self._open[-1].track
        return DEFAULT_TRACK

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- spans ----------------------------------------------------------

    def span(self, name: str, track: "str | None" = None,
             category: str = "pipeline", args: "dict | None" = None) -> Span:
        """Open a span at the track cursor; close it to record it.

        ``track=None`` inherits the innermost open span's track (or
        :data:`DEFAULT_TRACK` at top level), which lets library code emit
        spans without knowing which node it runs on.
        """
        key = self._resolve_track(track)
        sp = Span(self, name, category, key,
                  self._cursor.get(key, 0.0), dict(args or {}))
        self._open.append(sp)
        return sp

    def _close_span(self, sp: Span) -> None:
        # Spans close LIFO in correct code; tolerate out-of-order closes
        # (e.g. a generator finalized late) by removing wherever it is.
        try:
            self._open.remove(sp)
        except ValueError:  # pragma: no cover - double close is a no-op
            pass
        end = self._cursor.get(sp.track, 0.0)
        self.spans.append(SpanRecord(
            name=sp.name, category=sp.category, track=sp.track,
            start=sp.start, duration=end - sp.start, args=sp.args,
            seq=self._next_seq(),
        ))

    def io_span(self, name: str, device, track: "str | None" = None,
                category: str = "io", args: "dict | None" = None) -> "_IOSpan":
        """A span whose duration is the modeled read time charged to
        ``device``'s meter while it was open (blocks, seeks, fault
        delay — everything :meth:`IOStats.read_time` covers)."""
        return _IOSpan(self, name, device, track, category, args)

    def record(self, name: str, track: str, start: float, duration: float,
               category: str = "pipeline", args: "dict | None" = None) -> None:
        """Emit a span with explicit extent (post-hoc summary spans)."""
        if duration < 0:
            raise ValueError(f"span duration must be >= 0, got {duration}")
        self.spans.append(SpanRecord(
            name=name, category=category, track=track, start=start,
            duration=duration, args=dict(args or {}), seq=self._next_seq(),
        ))
        self.seek(track, start + duration)

    def instant(self, name: str, args: "dict | None" = None,
                track: "str | None" = None, category: str = "event") -> None:
        """Record an instant event at the current cursor of ``track``."""
        key = self._resolve_track(track)
        self.events.append(EventRecord(
            name=name, category=category, track=key,
            time=self._cursor.get(key, 0.0), args=dict(args or {}),
            seq=self._next_seq(),
        ))

    # -- queries --------------------------------------------------------

    def tracks(self) -> "list[str]":
        """Every track that appeared, in deterministic (sorted) order."""
        seen = {s.track for s in self.spans} | {e.track for e in self.events}
        return sorted(seen)

    def find(self, name: "str | None" = None, category: "str | None" = None,
             track: "str | None" = None) -> "list[SpanRecord]":
        """Closed spans matching every given filter, in emission order."""
        return [
            s for s in self.spans
            if (name is None or s.name == name)
            and (category is None or s.category == category)
            and (track is None or s.track == track)
        ]

    def total(self, name: "str | None" = None, category: "str | None" = None,
              track: "str | None" = None) -> float:
        """Summed duration of matching spans.

        Use a *leaf or summary* span name to avoid double counting —
        nested spans each carry their own full duration.
        """
        return sum(s.duration for s in self.find(name, category, track))


class _IOSpan:
    """Context manager pairing a span with a device-meter delta."""

    __slots__ = ("_tracer", "_name", "_device", "_track", "_category",
                 "_args", "_before", "_span")

    def __init__(self, tracer, name, device, track, category, args) -> None:
        self._tracer = tracer
        self._name = name
        self._device = device
        self._track = track
        self._category = category
        self._args = args

    def __enter__(self) -> Span:
        self._before = self._device.stats.copy()
        self._span = self._tracer.span(
            self._name, track=self._track, category=self._category,
            args=self._args,
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        delta = self._device.stats - self._before
        self._span.charge(delta.read_time(self._device.cost_model))
        self._span.merge_args(
            blocks=delta.blocks_read, seeks=delta.seeks,
            bytes=delta.bytes_read,
        )
        if delta.retries or delta.checksum_failures:
            self._span.merge_args(
                retries=delta.retries,
                checksum_failures=delta.checksum_failures,
            )
        self._span.close()


class _NullSpan:
    """Inert span handle; every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def charge(self, seconds: float) -> None:
        return None

    def annotate(self, name: str, args=None, category=None) -> None:
        return None

    def merge_args(self, **kwargs) -> None:
        return None

    def close(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Shared do-nothing tracer: the zero-overhead disabled default.

    Matches the :class:`Tracer` surface used by instrumented code; every
    call returns immediately without allocating, so library code never
    needs ``if tracer is not None`` guards.
    """

    enabled: bool = False
    spans: "tuple" = ()
    events: "tuple" = ()

    def span(self, name, track=None, category="pipeline", args=None) -> _NullSpan:
        return _NULL_SPAN

    def io_span(self, name, device, track=None, category="io", args=None) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name, track, start, duration, category="pipeline", args=None) -> None:
        return None

    def instant(self, name, args=None, track=None, category="event") -> None:
        return None

    def charge(self, seconds, track=None) -> None:
        return None

    def seek(self, track, t) -> None:
        return None

    def cursor(self, track=None) -> float:
        return 0.0

    def tracks(self) -> "list[str]":
        return []

    def find(self, name=None, category=None, track=None) -> "list":
        return []

    def total(self, name=None, category=None, track=None) -> float:
        return 0.0


#: The shared no-op tracer used when no tracer is supplied.
NULL_TRACER = NullTracer()


def coerce_tracer(tracer: "Tracer | NullTracer | None"):
    """``None`` -> :data:`NULL_TRACER`; anything else passes through."""
    return NULL_TRACER if tracer is None else tracer
