"""repro — out-of-core parallel isosurface extraction and rendering.

A faithful, self-contained reproduction of:

    Qin Wang, Joseph JaJa, Amitabh Varshney.
    "An Efficient and Scalable Parallel Algorithm for Out-of-Core
    Isosurface Extraction and Rendering."  IPPS/IPDPS 2006.

The package implements the paper's compact interval tree index, the
span-space brick layout, the I/O-optimal isosurface query, round-robin
brick striping across cluster nodes, Marching Cubes triangulation, and a
software sort-last rendering pipeline — plus simulated substrates (block
devices, cluster nodes) standing in for the paper's hardware.  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every table and figure.

Quickstart
----------
>>> from repro import sphere_field, IsosurfacePipeline
>>> pipe = IsosurfacePipeline.from_volume(sphere_field((24, 24, 24)))
>>> surface = pipe.extract(0.5)
>>> surface.mesh.n_triangles > 0
True
"""

from repro._version import __version__
from repro.core import (
    CompactIntervalTree,
    ExternalCompactIndex,
    IndexedDataset,
    IntervalSet,
    TimeVaryingIndex,
    build_indexed_dataset,
    build_persistent_dataset,
    build_striped_datasets,
    build_unstructured_dataset,
    QueryOptions,
    execute_query,
    extract_unstructured,
    load_dataset,
    save_dataset,
)
from repro.grid import (
    RMInstabilityModel,
    Volume,
    gyroid_field,
    partition_metacells,
    rm_time_series,
    rm_timestep,
    sphere_field,
    torus_field,
)
from repro.io import (
    BrickCorruptionError,
    DeviceFailedError,
    FaultInjectingDevice,
    FaultPlan,
    FileBackedDevice,
    IOCostModel,
    IOStats,
    RetryPolicy,
    SimulatedBlockDevice,
    StorageFault,
)
from repro.mc import MarchingCubes, TriangleMesh, extract_isosurface
from repro.pipeline import ExtractionResult, IsosurfacePipeline
from repro.parallel import ClusterResult, ExtractRequest, SimulatedCluster
from repro.obs import MetricsRegistry, Tracer
from repro.render import Camera, Framebuffer, composite, render_mesh

__all__ = [
    "__version__",
    # core
    "CompactIntervalTree",
    "IndexedDataset",
    "IntervalSet",
    "TimeVaryingIndex",
    "build_indexed_dataset",
    "build_striped_datasets",
    "build_persistent_dataset",
    "build_unstructured_dataset",
    "extract_unstructured",
    "save_dataset",
    "load_dataset",
    "ExternalCompactIndex",
    "execute_query",
    "QueryOptions",
    # grid
    "Volume",
    "RMInstabilityModel",
    "rm_timestep",
    "rm_time_series",
    "sphere_field",
    "torus_field",
    "gyroid_field",
    "partition_metacells",
    # io
    "SimulatedBlockDevice",
    "FileBackedDevice",
    "IOCostModel",
    "IOStats",
    "FaultPlan",
    "FaultInjectingDevice",
    "RetryPolicy",
    "StorageFault",
    "DeviceFailedError",
    "BrickCorruptionError",
    # mc
    "MarchingCubes",
    "TriangleMesh",
    "extract_isosurface",
    # pipeline
    "IsosurfacePipeline",
    "ExtractionResult",
    # parallel
    "SimulatedCluster",
    "ClusterResult",
    "ExtractRequest",
    # obs
    "Tracer",
    "MetricsRegistry",
    # render
    "Camera",
    "Framebuffer",
    "render_mesh",
    "composite",
]
