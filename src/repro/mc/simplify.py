"""Mesh decimation by uniform vertex clustering (Rossignac–Borrel).

The paper's surfaces exceed 500 million triangles — far beyond what a
downstream tool wants to ingest.  Vertex clustering is the classic
out-of-core-friendly decimator: snap vertices to a uniform grid, merge
each cell's vertices into one representative, drop collapsed faces.  It
is a single streaming pass (no connectivity queries), which is why large
-data pipelines use it despite the topological roughness: clustering can
pinch thin features, so closedness is preserved only down to the feature
size.

Complexity: O(V + F); memory: O(occupied cells).
"""

from __future__ import annotations

import numpy as np

from repro.mc.geometry import TriangleMesh


def simplify_vertex_clustering(
    mesh: TriangleMesh, cell_size: float, representative: str = "mean"
) -> TriangleMesh:
    """Decimate a mesh by clustering vertices on a uniform grid.

    Parameters
    ----------
    mesh:
        Input mesh (soup or indexed; duplicates merge automatically).
    cell_size:
        Edge length of the clustering grid in world units.  Output
        vertex spacing is at least ~``cell_size``; triangle count drops
        roughly with the surface area in cell units.
    representative:
        ``"mean"`` places each output vertex at the centroid of its
        cluster (smoother); ``"center"`` snaps to the cell center
        (faster to reason about, used by some hardware pipelines).

    Returns
    -------
    TriangleMesh
        With degenerate (collapsed) and duplicate faces removed.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    if representative not in ("mean", "center"):
        raise ValueError(f"unknown representative {representative!r}")
    if mesh.n_vertices == 0:
        return TriangleMesh()

    origin = mesh.vertices.min(axis=0)
    cells = np.floor((mesh.vertices - origin) / cell_size).astype(np.int64)
    # Unique cell per vertex -> cluster index.
    uniq, inverse = np.unique(cells, axis=0, return_inverse=True)

    if representative == "mean":
        reps = np.zeros((len(uniq), 3))
        counts = np.bincount(inverse, minlength=len(uniq)).astype(np.float64)
        for axis in range(3):
            reps[:, axis] = np.bincount(
                inverse, weights=mesh.vertices[:, axis], minlength=len(uniq)
            )
        reps /= counts[:, None]
    else:
        reps = origin + (uniq + 0.5) * cell_size

    faces = inverse[mesh.faces]
    ok = (
        (faces[:, 0] != faces[:, 1])
        & (faces[:, 1] != faces[:, 2])
        & (faces[:, 0] != faces[:, 2])
    )
    faces = faces[ok]
    if len(faces):
        # Drop duplicate faces (ignoring rotation) that clustering creates
        # when two parallel sheets collapse onto the same cells.
        lo = faces.min(axis=1)
        hi = faces.max(axis=1)
        mid = faces.sum(axis=1) - lo - hi
        key = np.stack([lo, mid, hi], axis=1)
        _, first = np.unique(key, axis=0, return_index=True)
        faces = faces[np.sort(first)]
    return TriangleMesh(reps, faces)


def simplify_to_budget(
    mesh: TriangleMesh, target_triangles: int, max_rounds: int = 12
) -> TriangleMesh:
    """Decimate until the mesh fits a triangle budget.

    Doubles the clustering cell size per round until under budget (or
    the mesh stops shrinking).  Returns the input unchanged when it is
    already within budget.
    """
    if target_triangles < 1:
        raise ValueError(f"target must be >= 1, got {target_triangles}")
    if mesh.n_triangles <= target_triangles:
        return mesh
    lo, hi = mesh.bounding_box()
    extent = float(np.max(hi - lo))
    if extent == 0:
        return mesh
    # Start near the expected cell size: area scales ~ (extent/h)^2.
    h = extent * (target_triangles / max(mesh.n_triangles, 1)) ** 0.5 / 8
    out = mesh
    for _ in range(max_rounds):
        candidate = simplify_vertex_clustering(mesh, h)
        if candidate.n_triangles <= target_triangles:
            return candidate
        if candidate.n_triangles >= out.n_triangles and out is not mesh:
            break
        out = candidate
        h *= 1.6
    return out
