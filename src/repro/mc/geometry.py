"""Indexed triangle meshes and their validation invariants.

:class:`TriangleMesh` is the output type of every extraction path.  It
carries the measurement and invariant-checking machinery the test suite
and benches rely on: watertightness (every interior edge shared by
exactly two consistently-oriented triangles), Euler characteristic,
enclosed volume, and surface area.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(V, 3)`` float array of vertex positions.
    faces:
        ``(F, 3)`` int array of vertex indices, counter-clockwise when
        viewed from the normal side.
    """

    vertices: np.ndarray = field(default_factory=lambda: np.empty((0, 3), dtype=np.float64))
    faces: np.ndarray = field(default_factory=lambda: np.empty((0, 3), dtype=np.int64))

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.float64).reshape(-1, 3)
        self.faces = np.asarray(self.faces, dtype=np.int64).reshape(-1, 3)
        if len(self.faces) and len(self.vertices):
            if self.faces.max() >= len(self.vertices) or self.faces.min() < 0:
                raise ValueError(
                    f"face indices outside [0, {len(self.vertices)}): "
                    f"range [{self.faces.min()}, {self.faces.max()}]"
                )
        elif len(self.faces):
            raise ValueError("faces present but no vertices")

    @classmethod
    def _from_validated(cls, vertices: np.ndarray, faces: np.ndarray) -> "TriangleMesh":
        """Construct without re-validating index bounds.

        Internal fast path for extraction kernels whose construction
        guarantees ``faces`` indexes ``vertices`` in range.  ``vertices``
        must already be ``(V, 3)`` float64 and ``faces`` ``(F, 3)`` int64;
        the bounds scan in ``__post_init__`` is skipped.
        """
        mesh = cls.__new__(cls)
        mesh.vertices = vertices
        mesh.faces = faces
        return mesh

    # -- basic measures -------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_triangles(self) -> int:
        return len(self.faces)

    def triangle_corners(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        v = self.vertices
        f = self.faces
        return v[f[:, 0]], v[f[:, 1]], v[f[:, 2]]

    def face_normals(self, normalized: bool = True) -> np.ndarray:
        a, b, c = self.triangle_corners()
        n = np.cross(b - a, c - a)
        if normalized:
            norms = np.linalg.norm(n, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            n = n / norms
        return n

    def face_areas(self) -> np.ndarray:
        a, b, c = self.triangle_corners()
        return 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)

    def area(self) -> float:
        return float(self.face_areas().sum())

    def enclosed_volume(self) -> float:
        """Signed volume via the divergence theorem.

        Positive when face normals point consistently *outward* of the
        enclosed region; meaningful only for closed meshes.
        """
        a, b, c = self.triangle_corners()
        return float(np.einsum("ij,ij->i", a, np.cross(b, c)).sum() / 6.0)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        if self.n_vertices == 0:
            z = np.zeros(3)
            return z, z
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def vertex_normals(self) -> np.ndarray:
        """Area-weighted vertex normals (unnormalized face normals summed)."""
        n = np.zeros_like(self.vertices)
        fn = self.face_normals(normalized=False)
        for k in range(3):
            np.add.at(n, self.faces[:, k], fn)
        norms = np.linalg.norm(n, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return n / norms

    # -- transforms & composition ---------------------------------------------

    def translated(self, offset) -> "TriangleMesh":
        return TriangleMesh(self.vertices + np.asarray(offset, dtype=np.float64), self.faces)

    def scaled(self, factor) -> "TriangleMesh":
        return TriangleMesh(self.vertices * np.asarray(factor, dtype=np.float64), self.faces)

    @staticmethod
    def concat(meshes: "list[TriangleMesh]") -> "TriangleMesh":
        meshes = [m for m in meshes if m.n_triangles or m.n_vertices]
        if not meshes:
            return TriangleMesh()
        verts, faces, base = [], [], 0
        for m in meshes:
            verts.append(m.vertices)
            faces.append(m.faces + base)
            base += m.n_vertices
        return TriangleMesh(np.concatenate(verts), np.concatenate(faces))

    def weld(self, decimals: int = 8) -> "TriangleMesh":
        """Merge spatially coincident vertices (rounded to ``decimals``)
        and drop triangles that become degenerate."""
        if self.n_vertices == 0:
            return TriangleMesh()
        key = np.round(self.vertices, decimals)
        uniq, inverse = np.unique(key, axis=0, return_inverse=True)
        faces = inverse[self.faces]
        ok = (
            (faces[:, 0] != faces[:, 1])
            & (faces[:, 1] != faces[:, 2])
            & (faces[:, 0] != faces[:, 2])
        )
        return TriangleMesh(uniq, faces[ok])

    # -- topology invariants ----------------------------------------------------

    def _directed_edges(self) -> np.ndarray:
        f = self.faces
        return np.concatenate([f[:, [0, 1]], f[:, [1, 2]], f[:, [2, 0]]])

    def edge_counts(self) -> "tuple[np.ndarray, np.ndarray]":
        """Undirected unique edges and their incidence counts."""
        de = self._directed_edges()
        und = np.sort(de, axis=1)
        uniq, counts = np.unique(und, axis=0, return_counts=True)
        return uniq, counts

    def n_edges(self) -> int:
        return len(self.edge_counts()[0])

    def boundary_edge_count(self) -> int:
        _, counts = self.edge_counts()
        return int((counts == 1).sum())

    def is_closed(self) -> bool:
        """Every edge shared by exactly two triangles."""
        if self.n_triangles == 0:
            return False
        _, counts = self.edge_counts()
        return bool(np.all(counts == 2))

    def is_consistently_oriented(self) -> bool:
        """No directed edge appears twice (adjacent faces disagree on
        winding exactly when one directed edge repeats)."""
        de = self._directed_edges()
        uniq, counts = np.unique(de, axis=0, return_counts=True)
        return bool(np.all(counts == 1))

    def euler_characteristic(self) -> int:
        """V - E + F (2 for a sphere-like closed surface)."""
        return self.n_vertices - self.n_edges() + self.n_triangles

    def validate_watertight(self) -> None:
        """Raise AssertionError unless closed and consistently oriented."""
        assert self.n_triangles > 0, "empty mesh"
        assert self.is_closed(), (
            f"mesh has {self.boundary_edge_count()} boundary edges"
        )
        assert self.is_consistently_oriented(), "inconsistent winding"
