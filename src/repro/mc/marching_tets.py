"""Marching tetrahedra: an independent extraction oracle.

Each cell is split into six tetrahedra sharing the main diagonal
``v0–v6``.  The decomposition's face diagonals agree between adjacent
cells (``(x,0,0)–(x,1,1)``, ``(0,y,0)–(1,y,1)``, ``(0,0,z)–(1,1,z)``), so
the extracted surface is crack-free — making this a fully independent
cross-check for the derived Marching Cubes tables: both must produce
closed surfaces with the same topology and closely matching enclosed
volume/area on smooth fields.

Triangle windings per (tetrahedron, sign-case) are derived numerically at
import by orienting each candidate triangle toward the negative side,
matching the Marching Cubes convention.
"""

from __future__ import annotations

import numpy as np

from repro.mc.geometry import TriangleMesh
from repro.mc.tables import CORNERS

#: Six tetrahedra around the main diagonal v0-v6 (cube vertex ids).
TETS = np.array(
    [
        [0, 1, 2, 6],
        [0, 2, 3, 6],
        [0, 3, 7, 6],
        [0, 7, 4, 6],
        [0, 4, 5, 6],
        [0, 5, 1, 6],
    ],
    dtype=np.int64,
)


def _tet_case_table():
    """For each tet and 4-bit sign case: list of triangles, each a list of
    three (lo_vertex, hi_vertex) cube-vertex-id pairs to interpolate."""
    table: dict[tuple[int, int], list] = {}
    for ti, tet in enumerate(TETS):
        coords = CORNERS[tet]
        for case in range(16):
            pos = [(case >> i) & 1 == 1 for i in range(4)]
            npos = sum(pos)
            if npos in (0, 4):
                continue
            pos_idx = [i for i in range(4) if pos[i]]
            neg_idx = [i for i in range(4) if not pos[i]]
            tris_local: list[list[tuple[int, int]]] = []
            if npos in (1, 3):
                lone = pos_idx[0] if npos == 1 else neg_idx[0]
                others = [i for i in range(4) if i != lone]
                tris_local.append([(lone, o) for o in others])
            else:  # 2-2: quad over four crossing edges, cycled correctly
                u, v = pos_idx
                x, y = neg_idx
                quad = [(u, x), (u, y), (v, y), (v, x)]
                tris_local.append([quad[0], quad[1], quad[2]])
                tris_local.append([quad[0], quad[2], quad[3]])
            # Fix winding: representative values pos=1, neg=0, iso=0.5 —
            # crossing points are edge midpoints.
            centroid_pos = coords[pos_idx].mean(axis=0)
            centroid_neg = coords[neg_idx].mean(axis=0)
            out = []
            for tri in tris_local:
                pts = np.array(
                    [0.5 * (coords[a] + coords[b]) for a, b in tri]
                )
                n = np.cross(pts[1] - pts[0], pts[2] - pts[0])
                if np.dot(n, centroid_neg - centroid_pos) < 0:
                    tri = [tri[0], tri[2], tri[1]]
                out.append([(int(tet[a]), int(tet[b])) for a, b in tri])
            table[(ti, case)] = out
    return table


_TET_TABLE = _tet_case_table()


def _generic_case_table():
    """Case table over abstract tet vertex slots 0..3 (no geometry):
    case -> list of triangles, each a list of three (lo, hi) slot pairs.
    Winding is resolved numerically at extraction time."""
    table: dict[int, list] = {}
    for case in range(1, 15):
        pos = [i for i in range(4) if (case >> i) & 1]
        neg = [i for i in range(4) if not (case >> i) & 1]
        tris = []
        if len(pos) in (1, 3):
            lone = pos[0] if len(pos) == 1 else neg[0]
            others = [i for i in range(4) if i != lone]
            tris.append([(lone, o) for o in others])
        else:
            u, v = pos
            x, y = neg
            quad = [(u, x), (u, y), (v, y), (v, x)]
            tris.append([quad[0], quad[1], quad[2]])
            tris.append([quad[0], quad[2], quad[3]])
        table[case] = tris
    return table


_GENERIC_TET_TABLE = _generic_case_table()


def marching_tets_generic(
    cell_points: np.ndarray, cell_values: np.ndarray, iso: float
) -> TriangleMesh:
    """Extract the isosurface of arbitrary tetrahedral cells.

    Parameters
    ----------
    cell_points:
        ``(n, 4, 3)`` vertex positions per tetrahedron (any orientation;
        degenerate/zero-volume tets contribute nothing harmful).
    cell_values:
        ``(n, 4)`` scalar values at the tet vertices.
    iso:
        Isovalue; a vertex is *positive* iff its value exceeds ``iso``.

    Returns
    -------
    TriangleMesh
        Triangle soup with normals oriented toward the negative side
        (the structured extractors' convention), resolved numerically
        per triangle.
    """
    cell_points = np.asarray(cell_points, dtype=np.float64).reshape(-1, 4, 3)
    cell_values = np.asarray(cell_values, dtype=np.float64).reshape(-1, 4)
    if len(cell_points) != len(cell_values):
        raise ValueError(
            f"{len(cell_points)} cells of points vs {len(cell_values)} of values"
        )
    iso = float(iso)
    case = ((cell_values > iso) << np.arange(4)[None, :]).sum(axis=1)

    tri_chunks = []
    for c in range(1, 15):
        sel = np.flatnonzero(case == c)
        if len(sel) == 0:
            continue
        pts_c = cell_points[sel]
        vals_c = cell_values[sel]
        pos = [i for i in range(4) if (c >> i) & 1]
        neg = [i for i in range(4) if not (c >> i) & 1]
        centroid_pos = pts_c[:, pos].mean(axis=1)
        centroid_neg = pts_c[:, neg].mean(axis=1)
        for tri in _GENERIC_TET_TABLE[c]:
            corners = np.empty((len(sel), 3, 3))
            for k, (a, b) in enumerate(tri):
                s1 = vals_c[:, a]
                s2 = vals_c[:, b]
                t = ((iso - s1) / (s2 - s1))[:, None]
                corners[:, k] = pts_c[:, a] * (1 - t) + pts_c[:, b] * t
            n = np.cross(corners[:, 1] - corners[:, 0], corners[:, 2] - corners[:, 0])
            flip = np.einsum("ij,ij->i", n, centroid_neg - centroid_pos) < 0
            corners[flip] = corners[flip][:, [0, 2, 1]]
            tri_chunks.append(corners)

    if not tri_chunks:
        return TriangleMesh()
    all_pts = np.concatenate(tri_chunks).reshape(-1, 3)
    faces = np.arange(len(all_pts), dtype=np.int64).reshape(-1, 3)
    return TriangleMesh(all_pts, faces)


def marching_tetrahedra(
    values: np.ndarray,
    iso: float,
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
) -> TriangleMesh:
    """Extract the isosurface with the 6-tet decomposition.

    Returns a triangle soup (duplicate vertices across tets); call
    :meth:`TriangleMesh.weld` before topology checks.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 3:
        raise ValueError(f"expected a 3D grid, got shape {values.shape}")
    iso = float(iso)
    nx, ny, nz = values.shape

    # Per-cell corner value arrays, indexed by cube vertex id.
    corner_vals = []
    for dx, dy, dz in CORNERS.astype(np.int64):
        corner_vals.append(values[dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz])
    corner_vals = np.stack([c.reshape(-1) for c in corner_vals])  # (8, ncells)

    ncells = corner_vals.shape[1]
    cell_idx = np.arange(ncells)
    ci, cj, ck = np.unravel_index(cell_idx, (nx - 1, ny - 1, nz - 1))
    cell_origin = np.stack([ci, cj, ck], axis=1).astype(np.float64)

    tri_pts = []
    for ti, tet in enumerate(TETS):
        tvals = corner_vals[tet]  # (4, ncells)
        case = ((tvals > iso) << np.arange(4)[:, None]).sum(axis=0)
        for c in range(1, 15):
            sel = np.flatnonzero(case == c)
            if len(sel) == 0 or (ti, c) not in _TET_TABLE:
                continue
            for tri in _TET_TABLE[(ti, c)]:
                pts = np.empty((len(sel), 3, 3), dtype=np.float64)
                for corner, (a, b) in enumerate(tri):
                    s1 = corner_vals[a][sel]
                    s2 = corner_vals[b][sel]
                    t = ((iso - s1) / (s2 - s1))[:, None]
                    p = CORNERS[a][None, :] * (1 - t) + CORNERS[b][None, :] * t
                    pts[:, corner, :] = p + cell_origin[sel]
                tri_pts.append(pts)

    if not tri_pts:
        return TriangleMesh()
    all_pts = np.concatenate(tri_pts).reshape(-1, 3)
    all_pts = all_pts * np.asarray(spacing, dtype=np.float64) + np.asarray(
        origin, dtype=np.float64
    )
    faces = np.arange(len(all_pts), dtype=np.int64).reshape(-1, 3)
    return TriangleMesh(all_pts, faces)
