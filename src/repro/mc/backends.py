"""Pluggable extraction-kernel registry.

Every extraction path in the repo — serial, coalesced, the shared-memory
pipeline, cluster nodes, the serving front-end — resolves its
triangulation kernel through this registry, keyed by a short backend
name carried on :class:`repro.core.query.QueryOptions` /
:class:`repro.parallel.cluster.ExtractRequest` (and ``--backend`` on the
CLI).  The paper's crack-free per-metacell triangulation property is
what makes kernels swappable per request: each backend consumes the same
``(values, iso, origins)`` batch contract and produces a self-consistent
surface for the same metacell set.

Built-in backends
-----------------
``mc-batch``
    The second-generation vectorized Marching Cubes batch kernel
    (:func:`repro.mc.marching_cubes.marching_cubes_batch`).  Exact: its
    output is bit-identical to serial per-cell MC, so it is the default
    and the reference everything else is tested against.
``surface-nets``
    The sign-driven dual kernel
    (:func:`repro.mc.surface_nets.surface_nets_batch`) — same topology,
    smoothed/decimated geometry, roughly twice the throughput.  Not
    pipeline-capable (phase 2 is global, so the surface cannot be
    assembled from independently-triangulated jobs); pipelined callers
    fall back to the serial path automatically.

The registry is append-only process state; tests register throwaway
backends and remove them with :func:`unregister_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mc.marching_cubes import _extract_batch_chunks, marching_cubes_batch
from repro.mc.surface_nets import surface_nets_batch

#: The backend used when a request does not name one.
DEFAULT_BACKEND = "mc-batch"


@dataclass(frozen=True)
class KernelBackend:
    """One registered extraction kernel.

    Parameters
    ----------
    name:
        Registry key, as carried by ``QueryOptions.backend`` /
        ``ExtractRequest.backend`` / ``--backend``.
    batch:
        The full batch entry point, signature-compatible with
        :func:`repro.mc.marching_cubes.marching_cubes_batch`
        (``values, iso, origins, spacing=, world_origin=, chunk=,
        with_normals=``), returning a world-placed
        :class:`~repro.mc.geometry.TriangleMesh` (or ``(mesh, normals)``).
    extract_chunks:
        Lattice-unit chunked kernel used by the shared-memory pipeline
        workers, signature ``(values, iso, origins, chunk, with_normals)
        -> (mesh, normals-or-None)``; ``None`` when the backend cannot
        triangulate independent jobs (see ``supports_pipeline``).
    exact:
        True when the kernel reproduces serial per-cell Marching Cubes
        bit-for-bit; such backends may share cached meshes with each
        other, inexact ones get their own cache key space.
    supports_pipeline:
        Whether independently-triangulated metacell jobs concatenate to
        the same surface the serial kernel produces.  When False, the
        pipelined path silently degrades to one serial kernel call.
    """

    name: str
    batch: "object"
    extract_chunks: "object | None"
    exact: bool
    supports_pipeline: bool


_REGISTRY: "dict[str, KernelBackend]" = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register (or replace) a kernel backend under ``backend.name``."""
    if not backend.name or not isinstance(backend.name, str):
        raise ValueError(f"backend name must be a non-empty string, got {backend.name!r}")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend registered by a test; built-ins stay."""
    _REGISTRY.pop(name, None)


def available_backends() -> "tuple[str, ...]":
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def get_backend(name: "str | None" = None) -> KernelBackend:
    """Resolve a backend by name (``None`` means :data:`DEFAULT_BACKEND`)."""
    key = DEFAULT_BACKEND if name is None else name
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown extraction backend {key!r}; "
            f"known backends: {', '.join(sorted(_REGISTRY))}"
        ) from None


def validate_backend(name: str) -> str:
    """Validate a backend name for an options object; returns it."""
    get_backend(name)
    return name


register_backend(
    KernelBackend(
        name="mc-batch",
        batch=marching_cubes_batch,
        extract_chunks=_extract_batch_chunks,
        exact=True,
        supports_pipeline=True,
    )
)
register_backend(
    KernelBackend(
        name="surface-nets",
        batch=surface_nets_batch,
        extract_chunks=None,
        exact=False,
        supports_pipeline=False,
    )
)
