"""Mesh export/import: Wavefront OBJ and binary PLY.

Extracted isosurfaces are only useful if they can leave the pipeline;
these two formats cover essentially every downstream mesh tool.  The
OBJ reader exists mainly to round-trip in tests and to import small
reference meshes.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.mc.geometry import TriangleMesh


def write_obj(path, mesh: TriangleMesh, comment: str = "") -> Path:
    """Write a mesh as ASCII Wavefront OBJ (1-based face indices)."""
    path = Path(path)
    lines = []
    if comment:
        for c in comment.splitlines():
            lines.append(f"# {c}")
    for v in mesh.vertices:
        lines.append(f"v {v[0]:.9g} {v[1]:.9g} {v[2]:.9g}")
    for f in mesh.faces:
        lines.append(f"f {f[0] + 1} {f[1] + 1} {f[2] + 1}")
    path.write_text("\n".join(lines) + "\n")
    return path


def read_obj(path) -> TriangleMesh:
    """Read a triangle-only ASCII OBJ (v/f statements; fans polygons)."""
    vertices = []
    faces = []
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "v":
            if len(parts) < 4:
                raise ValueError(f"malformed vertex line: {raw!r}")
            vertices.append([float(parts[1]), float(parts[2]), float(parts[3])])
        elif parts[0] == "f":
            idx = [int(p.split("/")[0]) - 1 for p in parts[1:]]
            if len(idx) < 3:
                raise ValueError(f"malformed face line: {raw!r}")
            for k in range(1, len(idx) - 1):  # fan for polygons
                faces.append([idx[0], idx[k], idx[k + 1]])
    return TriangleMesh(
        np.asarray(vertices, dtype=np.float64),
        np.asarray(faces, dtype=np.int64) if faces else np.empty((0, 3), dtype=np.int64),
    )


def write_ply(path, mesh: TriangleMesh, normals: np.ndarray | None = None) -> Path:
    """Write a mesh as binary little-endian PLY, optionally with vertex
    normals."""
    path = Path(path)
    n_v = mesh.n_vertices
    n_f = mesh.n_triangles
    header = ["ply", "format binary_little_endian 1.0", f"element vertex {n_v}"]
    header += ["property float x", "property float y", "property float z"]
    if normals is not None:
        normals = np.asarray(normals, dtype=np.float32).reshape(n_v, 3)
        header += ["property float nx", "property float ny", "property float nz"]
    header += [
        f"element face {n_f}",
        "property list uchar int vertex_indices",
        "end_header",
    ]
    with open(path, "wb") as fh:
        fh.write(("\n".join(header) + "\n").encode())
        verts = mesh.vertices.astype(np.float32)
        if normals is not None:
            verts = np.concatenate([verts, normals], axis=1)
        fh.write(np.ascontiguousarray(verts).tobytes())
        for f in mesh.faces:
            fh.write(struct.pack("<Biii", 3, int(f[0]), int(f[1]), int(f[2])))
    return path


def read_ply(path) -> TriangleMesh:
    """Read back a binary PLY written by :func:`write_ply`."""
    data = Path(path).read_bytes()
    end = data.index(b"end_header\n") + len(b"end_header\n")
    header = data[:end].decode().splitlines()
    n_v = n_f = 0
    props_per_vertex = 0
    in_vertex = False
    for line in header:
        if line.startswith("element vertex"):
            n_v = int(line.split()[-1])
            in_vertex = True
        elif line.startswith("element face"):
            n_f = int(line.split()[-1])
            in_vertex = False
        elif line.startswith("property float") and in_vertex:
            props_per_vertex += 1
    body = data[end:]
    vbytes = n_v * props_per_vertex * 4
    verts = np.frombuffer(body[:vbytes], dtype="<f4").reshape(n_v, props_per_vertex)
    faces = np.empty((n_f, 3), dtype=np.int64)
    off = vbytes
    for i in range(n_f):
        count = body[off]
        if count != 3:
            raise ValueError(f"non-triangle face with {count} vertices")
        faces[i] = struct.unpack_from("<iii", body, off + 1)
        off += 1 + 12
    return TriangleMesh(verts[:, :3].astype(np.float64), faces)
