"""Bounded-memory streaming mesh output.

At the paper's scale a single isosurface exceeds 500 million triangles —
tens of GB of geometry that must go straight from the extractor to disk
without ever forming one in-memory mesh.  :class:`StreamingMeshWriter`
accepts meshes chunk by chunk (e.g. one query-result batch, or one
metacell group, at a time), spools vertices and faces to temporary
files, and assembles a valid binary PLY (or ASCII OBJ) on ``close()``
when the totals are finally known.

Peak memory is one chunk; the spool lives next to the output file.

Example
-------
::

    with StreamingMeshWriter("surface.ply") as w:
        for batch in batches:                 # e.g. per 512 metacells
            mesh = marching_cubes_batch(batch, iso, origins)
            w.add_mesh(mesh)
    # surface.ply is complete here; w.n_triangles has the total.
"""

from __future__ import annotations

import shutil
import struct
from pathlib import Path

import numpy as np

from repro.mc.geometry import TriangleMesh


class StreamingMeshWriter:
    """Accumulate mesh chunks into one on-disk OBJ/PLY file.

    Parameters
    ----------
    path:
        Output file; format chosen by extension (``.ply`` binary
        little-endian, ``.obj`` ASCII).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        suffix = self.path.suffix.lower()
        if suffix not in (".ply", ".obj"):
            raise ValueError(f"unsupported extension {suffix!r}; use .ply or .obj")
        self.format = suffix[1:]
        self._vert_spool = open(self.path.with_suffix(self.path.suffix + ".vtmp"), "w+b")
        self._face_spool = open(self.path.with_suffix(self.path.suffix + ".ftmp"), "w+b")
        self.n_vertices = 0
        self.n_triangles = 0
        self._closed = False

    # ------------------------------------------------------------------

    def add_mesh(self, mesh: TriangleMesh) -> None:
        """Append one chunk; face indices are offset automatically."""
        if self._closed:
            raise ValueError("writer already closed")
        if mesh.n_vertices == 0:
            return
        self._vert_spool.write(
            np.ascontiguousarray(mesh.vertices, dtype="<f4").tobytes()
        )
        if mesh.n_triangles:
            faces = (mesh.faces + self.n_vertices).astype("<i4")
            self._face_spool.write(np.ascontiguousarray(faces).tobytes())
        self.n_vertices += mesh.n_vertices
        self.n_triangles += mesh.n_triangles

    def add_soup(self, vertices: np.ndarray, faces: np.ndarray) -> None:
        """Append raw arrays (same contract as :meth:`add_mesh`)."""
        self.add_mesh(TriangleMesh(vertices, faces))

    # ------------------------------------------------------------------

    def _stream_spool(self, spool, transform, chunk_items: int, item_bytes: int):
        spool.seek(0)
        while True:
            buf = spool.read(chunk_items * item_bytes)
            if not buf:
                break
            yield transform(buf)

    def close(self) -> Path:
        """Assemble the final file and remove the spools."""
        if self._closed:
            return self.path
        self._closed = True
        try:
            if self.format == "ply":
                self._write_ply()
            else:
                self._write_obj()
        finally:
            vpath = Path(self._vert_spool.name)
            fpath = Path(self._face_spool.name)
            self._vert_spool.close()
            self._face_spool.close()
            vpath.unlink(missing_ok=True)
            fpath.unlink(missing_ok=True)
        return self.path

    def _write_ply(self) -> None:
        header = "\n".join([
            "ply",
            "format binary_little_endian 1.0",
            f"element vertex {self.n_vertices}",
            "property float x",
            "property float y",
            "property float z",
            f"element face {self.n_triangles}",
            "property list uchar int vertex_indices",
            "end_header",
        ]) + "\n"
        with open(self.path, "wb") as out:
            out.write(header.encode())
            self._vert_spool.seek(0)
            shutil.copyfileobj(self._vert_spool, out, length=1 << 20)
            # Faces need the uchar count prefix per triangle.
            self._face_spool.seek(0)
            while True:
                buf = self._face_spool.read((1 << 16) * 12)
                if not buf:
                    break
                tri = np.frombuffer(buf, dtype="<i4").reshape(-1, 3)
                block = bytearray()
                for f in tri:
                    block += struct.pack("<Biii", 3, int(f[0]), int(f[1]), int(f[2]))
                out.write(block)

    def _write_obj(self) -> None:
        with open(self.path, "w") as out:
            out.write(f"# streamed mesh: {self.n_vertices} vertices, "
                      f"{self.n_triangles} faces\n")
            self._vert_spool.seek(0)
            while True:
                buf = self._vert_spool.read((1 << 16) * 12)
                if not buf:
                    break
                verts = np.frombuffer(buf, dtype="<f4").reshape(-1, 3)
                out.writelines(
                    f"v {v[0]:.9g} {v[1]:.9g} {v[2]:.9g}\n" for v in verts
                )
            self._face_spool.seek(0)
            while True:
                buf = self._face_spool.read((1 << 16) * 12)
                if not buf:
                    break
                faces = np.frombuffer(buf, dtype="<i4").reshape(-1, 3)
                out.writelines(
                    f"f {f[0] + 1} {f[1] + 1} {f[2] + 1}\n" for f in faces
                )

    # ------------------------------------------------------------------

    def __enter__(self) -> "StreamingMeshWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:  # abandon cleanly on error
            self._closed = True
            for spool in (self._vert_spool, self._face_spool):
                name = Path(spool.name)
                spool.close()
                name.unlink(missing_ok=True)


def stream_isosurface_to_file(dataset, lam: float, path, chunk_metacells: int = 512):
    """Extract an isosurface straight to disk with bounded memory.

    Reads the active metacells in batches of ``chunk_metacells``,
    triangulates each batch, and appends it to a streaming writer —
    the end-to-end out-of-core path for surfaces that exceed RAM.
    Returns ``(path, n_triangles)``.
    """
    from repro.core.query import execute_query
    from repro.mc.marching_cubes import marching_cubes_batch

    qr = execute_query(dataset, lam)
    meta = dataset.meta
    codec = dataset.codec
    with StreamingMeshWriter(path) as writer:
        for s in range(0, qr.n_active, chunk_metacells):
            e = min(s + chunk_metacells, qr.n_active)
            values = codec.values_grid(qr.records)[s:e]
            origins = meta.vertex_origins(qr.records.ids[s:e])
            mesh = marching_cubes_batch(
                values, lam, origins, spacing=meta.spacing, world_origin=meta.origin
            )
            writer.add_mesh(mesh)
    return writer.path, writer.n_triangles
