"""Vectorized SurfaceNets (dual) isosurface extraction over metacell batches.

Where Marching Cubes triangulates *within* each active cell from a
256-case table, SurfaceNets is the dual construction (Gibson 1998; see
also "A High-Performance SurfaceNets Discrete Isocontouring Algorithm"
in PAPERS.md): one vertex per active cell and one quad per sign-crossing
lattice edge, connecting the four cells that share the edge.  Vertices
sit at cell centers (the fast "discrete" variant, the default) and can
optionally be relaxed toward the average of their face-adjacent surface
neighbours, clamped to stay inside their own cell — a smoothed,
lower-tessellation surface with the same topology as MC.  The trade-offs
are catalogued in docs/PERFMODEL.md ("Extraction kernels").

The kernel is sign-driven: apart from the ``values > iso`` comparison it
never touches the scalar field, so there is no per-edge interpolation,
no case table, and no triangle gather — the phase costs are a handful of
separable passes over the payload plus integer index arithmetic on the
crossing edges.  That is what makes it substantially faster than even
the second-generation MC batch path.

The extractor is built for the out-of-core batch shape
(:func:`surface_nets_batch` mirrors
:func:`repro.mc.marching_cubes.marching_cubes_batch`) and preserves its
crack-free boundary contract by working in *global* lattice coordinates:

* **Phase 1 (chunked, memory-bounded)** — per chunk of metacells: the
  crossing lattice edges of each axis family, emitted as flat indices
  into the batch's global bounding-box lattice with a sign-orientation
  bit (field above iso at the edge's low end).  Each metacell
  suppresses the crossing edges on its transverse-high vertex layers: a
  shared edge is emitted exactly once (by the neighbour that owns it as
  a low layer), and an edge *only* a high layer could emit has fewer
  than four adjacent cells in the batch, so its quad would be dropped
  anyway — no deduplication pass is ever needed.
* **Phase 2 (global)** — each edge's four adjacent cells are resolved
  through a dense int32 cell-index lattice over the batch bounding box
  (or binary search when the box is too large to materialize), the quad
  is emitted with orientation-controlled winding, quads touching a cell
  absent from the batch are dropped (holes appear only where data is
  genuinely absent, exactly as with per-metacell MC), the referenced
  cells become the vertices (every cell a surviving quad touches is by
  construction a sign-mixed "active" cell), those vertices are
  optionally relaxed, and each quad is split into two triangles.

The bounding-box lattice carries one ghost layer on every side, so the
adjacency stencils of edges on the box faces land on never-registered
ghost slots instead of wrapping around the flat index space — off-batch
probes resolve to "absent" by construction.

Because cells tile space (no cell is duplicated across metacells),
phase 2 makes the output *independent of the chunk size*: the mesh is a
function of the set of metacells in the batch alone.  Unlike MC the
surface cannot be produced by concatenating independently-extracted
pieces, so the kernel registry marks this backend
``supports_pipeline=False`` and the shared-memory pipeline falls back to
its serial path.
"""

from __future__ import annotations

import numpy as np

from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import DEFAULT_BATCH_CHUNK, _apply_world_transform

#: Default number of constrained-Laplacian relaxation sweeps applied to
#: the cell-center vertices.  The default is 0 — the discrete
#: (VTK-``SurfaceNets3D``-style) surface, which is what makes this
#: backend ~2x faster than MC; each sweep adds roughly 25% kernel time
#: and removes most of the staircase aliasing.
DEFAULT_RELAX_ITERS = 0

#: Blend factor per sweep: ``v <- (1 - a) * v + a * mean(neighbours)``,
#: then clamped back into the vertex's own cell (the clamp is what keeps
#: the mesh crack-free and non-self-intersecting).
_RELAX_ALPHA = 0.6

#: Above this many lattice sites the dense int32 cell lattice
#: (4 bytes/site) is not materialized and phase 2 falls back to binary
#: search on the same flat ids (which are then carried as int64).
_DENSE_GRID_CAP = 1 << 25

#: Cells adjacent to an axis-``a`` crossing edge, as (db, dc) offsets in
#: the cyclic transverse axes (a=0 -> (y, z), a=1 -> (z, x),
#: a=2 -> (x, y)), in counter-clockwise order around +a so the quad
#: normal follows the right-hand rule along +a.
_QUAD_CELL_STEPS = ((-1, -1), (0, -1), (0, 0), (-1, 0))

#: Per-payload-shape local flat-id grids (see :func:`_local_site_grid`),
#: keyed by (nx, ny, nz, sx, sy, dtype).  Bounded: cleared wholesale if
#: it ever grows past the cap (payload shapes are few in practice).
_SITE_GRID_CACHE: dict = {}
_SITE_GRID_CACHE_CAP = 64


def _local_site_grid(nx, ny, nz, sx, sy, dtype):
    """Bounding-box flat-id offset of each cell of one metacell.

    The (nx-1, ny-1, nz-1) cell lattice of a payload, as offsets
    relative to the metacell's origin site in the global bounding-box
    lattice with strides (sx, sy, 1).
    """
    key = (nx, ny, nz, sx, sy, dtype)
    got = _SITE_GRID_CACHE.get(key)
    if got is not None:
        return got
    ii = np.arange(nx - 1, dtype=dtype)[:, None, None]
    jj = np.arange(ny - 1, dtype=dtype)[None, :, None]
    kk = np.arange(nz - 1, dtype=dtype)[None, None, :]
    loc = ii * sx + jj * sy + kk
    if len(_SITE_GRID_CACHE) >= _SITE_GRID_CACHE_CAP:
        _SITE_GRID_CACHE.clear()
    _SITE_GRID_CACHE[key] = loc
    return loc


def _lattice_frame(origins: np.ndarray, mshape):
    """Ghost-padded bounding-box frame of the batch in lattice units.

    Returns ``(rel, dims, lo)``: per-metacell origins in the padded
    bounding-box lattice (one ghost layer on every side, so adjacency
    stencils of boundary cells never wrap), the padded per-axis site
    counts, and the minimal global vertex coordinate (to restore
    absolute placement after decoding).  All phase 1/2 ids are flat
    indices into this ``dims`` lattice.
    """
    org = np.rint(origins).astype(np.int64)
    if not np.array_equal(org, np.asarray(origins, dtype=np.float64)):
        raise ValueError(
            "surface-nets requires integer lattice origins "
            "(metacell origins in vertex-index units)"
        )
    lo = org.min(axis=0)
    dims = org.max(axis=0) - lo + np.asarray(mshape, dtype=np.int64) + 2
    return org - lo + 1, dims, lo


def _sn_chunk_arrays(values: np.ndarray, iso: float, rel: np.ndarray, sx, sy, id_dtype):
    """Phase 1 over one chunk: cell sites + owned crossing edges.

    Returns ``(site_flat, edges)`` — the flat bounding-box ids of every
    cell of the chunk (in payload enumeration order), and per axis
    family ``edges[axis] = (edge_flat, orient)`` for the crossing edges
    this chunk owns (transverse-high layers suppressed, see the module
    docstring).  ``orient`` is True when the field is above iso at the
    edge's low end.
    """
    b, nx, ny, nz = values.shape
    if values.dtype.kind in "ui":
        # Integer payloads (e.g. quantized uint8 codecs) admit a native
        # integer sign test: v > iso  <=>  v >= floor(iso) + 1, avoiding
        # a float promotion of the whole chunk.
        thr = int(np.floor(iso)) + 1
        info = np.iinfo(values.dtype)
        if thr <= info.min:
            pos = np.ones(values.shape, dtype=bool)
        elif thr > info.max:
            pos = np.zeros(values.shape, dtype=bool)
        else:
            pos = values >= values.dtype.type(thr)
    else:
        pos = values > iso

    loc = _local_site_grid(nx, ny, nz, sx, sy, id_dtype)
    rel = rel.astype(id_dtype)
    mbase = rel[:, 0] * sx
    mbase += rel[:, 1] * sy
    mbase += rel[:, 2]
    site_flat = (mbase[:, None, None, None] + loc).reshape(-1)

    # One contiguous copy of the low-corner signs serves all three xor
    # operands *and* the orientation gather (the edge's low end is its
    # own lattice site).
    plo = np.ascontiguousarray(pos[:, :-1, :-1, :-1])
    plo_flat = plo.reshape(-1)
    highs = (pos[:, 1:, :-1, :-1], pos[:, :-1, 1:, :-1], pos[:, :-1, :-1, 1:])
    edges = []
    for hi in highs:
        where = np.flatnonzero((plo ^ hi).reshape(-1))
        edges.append((site_flat[where], plo_flat[where]))
    return site_flat, edges


def _relax_vertices(verts, nbr3, inv_deg, floor_c, iters):
    """Constrained-Laplacian smoothing of the cell-center vertices.

    Each sweep moves every vertex toward the mean of its face-adjacent
    surface neighbours and clamps it back into its own unit cell — the
    classic SurfaceNets relaxation.  ``nbr3`` is (6, 3*V)
    component-expanded flat indices into the extended vertex buffer
    (missing neighbours point at an appended zero row, so no mask
    multiplies are needed; flat 1-D gathers are several times faster
    than (V, 3) row gathers); ``inv_deg`` is ``alpha / degree`` per
    vertex.  Operates in place on ``verts`` (global lattice units);
    deterministic, so the chunk-size invariance of the assembled mesh
    carries over.
    """
    nv = len(verts)
    if iters <= 0 or nv == 0:
        return verts
    ext = np.zeros((nv + 1) * 3)
    cmax = floor_c + 1.0
    for _ in range(iters):
        ext[: nv * 3] = verts.reshape(-1)
        acc = np.add.reduce(ext[nbr3], axis=0).reshape(nv, 3)
        acc *= inv_deg
        verts *= 1.0 - _RELAX_ALPHA
        verts += acc
        np.clip(verts, floor_c, cmax, out=verts)
    return verts


def _extract_sn_chunks(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    chunk: int = DEFAULT_BATCH_CHUNK,
    relax_iters: int = DEFAULT_RELAX_ITERS,
) -> TriangleMesh:
    """Chunked SurfaceNets extraction in lattice units (both phases).

    The output geometry is identical for every ``chunk`` value — phase 2
    is global, so the mesh depends only on the *set* of metacells in the
    batch.
    """
    values = np.asarray(values)
    if len(values) == 0:
        return TriangleMesh()
    rel, dims, lo = _lattice_frame(origins, values.shape[1:])
    sx = int(dims[1] * dims[2])
    sy = int(dims[2])
    grid_n = int(dims[0] * dims[1] * dims[2])
    dense = grid_n <= _DENSE_GRID_CAP
    id_dtype = np.int32 if dense else np.int64

    site_parts = []
    edge_parts = [[] for _ in range(3)]
    orient_parts = [[] for _ in range(3)]
    for s in range(0, len(values), chunk):
        e = min(s + chunk, len(values))
        site_flat, edges = _sn_chunk_arrays(
            values[s:e], iso, rel[s:e], sx, sy, id_dtype
        )
        site_parts.append(site_flat)
        for axis in range(3):
            edge_parts[axis].append(edges[axis][0])
            orient_parts[axis].append(edges[axis][1])

    cell_flat = site_parts[0] if len(site_parts) == 1 else np.concatenate(site_parts)
    n_cells = len(cell_flat)

    # Cell-id resolution: dense int32 lattice when the bounding box is
    # affordable, sorted binary search otherwise.  Cells tile space, so
    # cell_flat has no duplicates; every batch cell is registered and
    # the quad-survivor compaction below keeps only the active ones.
    # Ghost slots are never registered, so off-batch stencil probes
    # resolve to "absent".
    if dense:
        lut = np.full(grid_n, -1, dtype=np.int32)
        lut[cell_flat] = np.arange(n_cells, dtype=np.int32)

        def resolve(cand):
            got = lut[cand]
            return got, got >= 0
    else:
        order = np.argsort(cell_flat)
        sorted_flat = cell_flat[order]

        def resolve(cand):
            idx = np.searchsorted(sorted_flat, cand)
            np.minimum(idx, n_cells - 1, out=idx)
            found = sorted_flat[idx] == cand
            return order[idx], found

    # One wound quad per crossing edge.  The three axis families are
    # resolved in a single batched pass: an edge's four adjacent-cell
    # offsets depend only on its axis, so with the edges grouped by axis
    # the (E, 4) offset table is a row-repeat of three 4-entry stencils.
    flat_parts, oflat_parts, stencils, counts = [], [], [], []
    for axis in range(3):
        parts = edge_parts[axis]
        flat = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if len(flat) == 0:
            continue
        oparts = orient_parts[axis]
        flat_parts.append(flat)
        oflat_parts.append(oparts[0] if len(oparts) == 1 else np.concatenate(oparts))
        bc = ((sy, 1), (1, sx), (sx, sy))[axis]
        stencils.append([db * bc[0] + dc * bc[1] for db, dc in _QUAD_CELL_STEPS])
        counts.append(len(flat))
    if not flat_parts:
        return TriangleMesh()
    flat_all = flat_parts[0] if len(flat_parts) == 1 else np.concatenate(flat_parts)
    orient_all = oflat_parts[0] if len(oflat_parts) == 1 else np.concatenate(oflat_parts)
    offs = np.repeat(np.asarray(stencils, dtype=id_dtype), counts, axis=0)
    if dense:
        # All four cells present <=> no -1 in the row <=> OR of the four
        # sign bits clear — no intermediate (E, 4) found mask needed.
        cells = lut[flat_all[:, None] + offs]
        keep = cells[:, 0] | cells[:, 1]
        keep |= cells[:, 2]
        keep |= cells[:, 3]
        keep = keep >= 0
    else:
        cells, found = resolve(flat_all[:, None] + offs)
        keep = found[:, 0] & found[:, 1]
        keep &= found[:, 2]
        keep &= found[:, 3]
    cells = np.compress(keep, cells, axis=0)
    if len(cells) == 0:
        return TriangleMesh()
    o = np.compress(keep, orient_all)

    # Compact to the cells actually referenced by surviving quads: those
    # are exactly the sign-mixed cells the surface passes through.
    # flatnonzero + scatter beats a cumsum-based remap (cumsum is a
    # sequential scan over every registered cell); unused remap slots
    # stay uninitialized and are never gathered.
    used = np.zeros(n_cells, dtype=bool)
    used[cells] = True
    idx_used = np.flatnonzero(used)
    n_used = len(idx_used)
    remap = np.empty(n_cells, dtype=np.int64)
    remap[idx_used] = np.arange(n_used, dtype=np.int64)
    flat_used = cell_flat[idx_used]

    # Decode padded-lattice coordinates and restore absolute placement:
    # global = decoded - 1 (ghost layer) + lo (bounding-box anchor).
    gx = flat_used // sx
    rem = flat_used - gx * sx
    gy = rem // sy
    gz = rem - gy * sy
    off = lo - 1
    floor_c = np.empty((n_used, 3))
    floor_c[:, 0] = gx + off[0]
    floor_c[:, 1] = gy + off[1]
    floor_c[:, 2] = gz + off[2]
    verts = floor_c + 0.5

    if relax_iters > 0:
        steps6 = np.array([sx, -sx, sy, -sy, 1, -1], dtype=id_dtype)
        if dense:
            # A fresh lattice resolving straight to *compact active*
            # vertex ids (a fresh memset is far cheaper than a sparse
            # reset of the registration lattice), removing the
            # used[]/remap[] gathers from the neighbour probe.
            lut_v = np.full(grid_n, -1, dtype=np.int32)
            lut_v[flat_used] = np.arange(n_used, dtype=np.int32)
            nbr6 = lut_v[steps6[:, None] + flat_used[None, :]]
            found6 = nbr6 >= 0
            nbr6[~found6] = n_used
        else:
            got6, found6 = resolve(steps6[:, None] + flat_used[None, :])
            found6 &= used[got6]
            nbr6 = np.where(found6, remap[got6], n_used)
        deg = np.add.reduce(found6, axis=0)
        np.maximum(deg, 1, out=deg)
        inv_deg = (_RELAX_ALPHA / deg)[:, None]
        nbr6 *= 3
        nbr3 = np.empty((6, n_used, 3), dtype=nbr6.dtype)
        nbr3[:, :, 0] = nbr6
        nbr3[:, :, 1] = nbr6
        nbr3[:, :, 2] = nbr6
        nbr3[:, :, 1] += 1
        nbr3[:, :, 2] += 2
        _relax_vertices(verts, nbr3.reshape(6, -1), inv_deg, floor_c, relax_iters)

    # Winding columns (c0, m1, c2, m2): the m1/m2 swap flips the quad
    # orientation; a single (Q, 4) gather then remaps to compact ids.
    q_raw = np.empty((len(cells), 4), dtype=cells.dtype)
    q_raw[:, 0] = cells[:, 0]
    q_raw[:, 1] = np.where(o, cells[:, 1], cells[:, 3])
    q_raw[:, 2] = cells[:, 2]
    q_raw[:, 3] = np.where(o, cells[:, 3], cells[:, 1])
    quads = remap[q_raw]
    faces = quads[:, (0, 1, 2, 0, 2, 3)].reshape(-1, 3)
    return TriangleMesh._from_validated(verts, faces)


def _vertex_normals(mesh: TriangleMesh) -> np.ndarray:
    """Area-weighted per-vertex normals from the final world geometry.

    SurfaceNets quads are wound so their normals agree with MC's
    convention (pointing toward the below-iso side), so accumulating
    face normals reproduces the orientation callers expect from
    ``marching_cubes_batch(..., with_normals=True)``.
    """
    nv = len(mesh.vertices)
    if nv == 0:
        return np.empty((0, 3))
    v = mesh.vertices
    f = mesh.faces
    fn = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
    normals = np.zeros((nv, 3))
    for k in range(3):
        for c in range(3):
            normals[:, c] += np.bincount(f[:, k], weights=fn[:, c], minlength=nv)
    norms = np.linalg.norm(normals, axis=1, keepdims=True)
    norms[norms < 1e-12] = 1.0
    normals /= norms
    return normals


def surface_nets(
    values: np.ndarray,
    iso: float,
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
    relax_iters: int = DEFAULT_RELAX_ITERS,
) -> TriangleMesh:
    """Extract a SurfaceNets isosurface from one full grid.

    Drop-in alternative to :func:`repro.mc.marching_cubes.marching_cubes`
    producing a dual mesh: same active cells, same topology, one vertex
    per active cell instead of one per edge crossing.
    """
    values = np.asarray(values)
    if values.ndim != 3:
        raise ValueError(f"expected a 3D grid, got shape {values.shape}")
    mesh = _extract_sn_chunks(
        values[None], float(iso), np.zeros((1, 3)), relax_iters=relax_iters
    )
    return _apply_world_transform(mesh, None, spacing, origin, False)


def surface_nets_batch(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    spacing=(1.0, 1.0, 1.0),
    world_origin=(0.0, 0.0, 0.0),
    chunk: int = DEFAULT_BATCH_CHUNK,
    with_normals: bool = False,
    relax_iters: int = DEFAULT_RELAX_ITERS,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Extract a SurfaceNets surface from a batch of metacell payloads.

    Mirrors :func:`repro.mc.marching_cubes.marching_cubes_batch`
    (shapes, origins, spacing, chunking, ``with_normals``) and honours
    the same crack-free boundary contract: adjacent metacells share
    vertex layers, so their shared crossing edges carry identical signs
    and the stitched quads are exact — no T-junctions, no gaps.  Unlike
    MC the mesh is globally *indexed* (dual vertices are unique per
    cell), so no weld pass is needed before watertightness checks.

    With ``with_normals=True`` returns ``(mesh, normals)``; the
    per-vertex normals are area-weighted accumulations of the face
    normals, oriented to match MC's toward-the-below-iso convention.
    ``relax_iters`` controls the constrained smoothing sweeps (0, the
    default, gives the discrete cell-center surface).
    """
    values = np.asarray(values)
    if values.ndim != 4:
        raise ValueError(f"expected (n, mx, my, mz) batch, got shape {values.shape}")
    origins = np.asarray(origins, dtype=np.float64).reshape(len(values), 3)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    mesh = _extract_sn_chunks(values, float(iso), origins, chunk, relax_iters)
    mesh = _apply_world_transform(mesh, None, spacing, world_origin, False)
    if not with_normals:
        return mesh
    return mesh, _vertex_normals(mesh)
