"""Vectorized Marching Cubes over grids and metacell batches.

Two entry points:

* :func:`marching_cubes` — extract from one full grid, with vertices
  welded globally through lattice-edge identification (every crossing on
  a lattice edge is computed once and shared by all incident cells), so
  the output is an indexed, watertight mesh with no duplicate vertices.

* :func:`marching_cubes_batch` — extract from a *batch* of metacell
  payloads at once (the shape in which the out-of-core query delivers
  active data).  Welding happens within each metacell; across metacells,
  boundary vertices coincide exactly (shared vertex layers + identical
  interpolation inputs), so the concatenated surface is crack-free even
  though it is not globally indexed — the same property the paper relies
  on for embarrassingly parallel triangulation.

The case tables come from :mod:`repro.mc.tables`, derived — not
transcribed — at import time.
"""

from __future__ import annotations

import numpy as np

from repro.mc.geometry import TriangleMesh
from repro.mc.tables import (
    EDGE_AXIS,
    EDGE_CELL_OFFSET,
    MAX_TRI,
    N_TRI,
    TRI_TABLE_PADDED,
)

#: Corner bit order: bit b corresponds to CORNERS[b] of tables.py.
_CORNER_OFFSETS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [1, 1, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [1, 1, 1],
        [0, 1, 1],
    ],
    dtype=np.int64,
)

#: Metacells triangulated per call in the batch path, bounding memory.
DEFAULT_BATCH_CHUNK = 512


def _edge_family_shapes(b, nx, ny, nz):
    return (
        (b, nx - 1, ny, nz),  # x edges
        (b, nx, ny - 1, nz),  # y edges
        (b, nx, ny, nz - 1),  # z edges
    )


def _extract_batch(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    with_normals: bool = False,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Core extraction over ``values`` of shape (B, nx, ny, nz).

    ``origins`` — (B, 3) lattice offsets added to vertex coordinates
    (still in vertex-index units; world scaling is applied by callers).

    With ``with_normals=True`` also returns per-vertex unit normals from
    the *local* field gradient (central differences within each batch
    element, linearly interpolated along the crossing edge, negated to
    point toward the < iso side).  Every quantity is computable from the
    element's own payload — no global volume required.
    """
    values = np.asarray(values, dtype=np.float64)
    b, nx, ny, nz = values.shape
    pos = values > iso
    grads = None
    if with_normals:
        # (B, nx, ny, nz, 3) central-difference gradient per element.
        gx, gy, gz = np.gradient(values, axis=(1, 2, 3))
        grads = np.stack([gx, gy, gz], axis=-1)

    # --- per-cell case index ------------------------------------------------
    case = np.zeros((b, nx - 1, ny - 1, nz - 1), dtype=np.uint16)
    for bit, (dx, dy, dz) in enumerate(_CORNER_OFFSETS):
        case |= (
            pos[:, dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz].astype(np.uint16)
            << bit
        )

    case_flat = case.reshape(-1)
    tri_counts = N_TRI[case_flat]
    active = np.flatnonzero(tri_counts)
    if len(active) == 0:
        if with_normals:
            return TriangleMesh(), np.empty((0, 3))
        return TriangleMesh()

    # --- lattice-edge crossing vertices --------------------------------------
    shapes = _edge_family_shapes(b, nx, ny, nz)
    sizes = [int(np.prod(s)) for s in shapes]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    cross_masks = [
        pos[:, :-1, :, :] != pos[:, 1:, :, :],
        pos[:, :, :-1, :] != pos[:, :, 1:, :],
        pos[:, :, :, :-1] != pos[:, :, :, 1:],
    ]
    lowers = [values[:, :-1, :, :], values[:, :, :-1, :], values[:, :, :, :-1]]
    uppers = [values[:, 1:, :, :], values[:, :, 1:, :], values[:, :, :, 1:]]

    vid = np.full(offsets[-1], -1, dtype=np.int64)
    vert_chunks = []
    normal_chunks = []
    n_verts = 0
    for axis in range(3):
        mask_flat = cross_masks[axis].reshape(-1)
        where = np.flatnonzero(mask_flat)
        if len(where) == 0:
            continue
        vid[offsets[axis] + where] = n_verts + np.arange(len(where))
        n_verts += len(where)

        s1 = lowers[axis].reshape(-1)[where]
        s2 = uppers[axis].reshape(-1)[where]
        t = (iso - s1) / (s2 - s1)
        bb, ii, jj, kk = np.unravel_index(where, shapes[axis])
        pts = np.stack([ii, jj, kk], axis=1).astype(np.float64)
        pts[:, axis] += t
        pts += origins[bb]
        vert_chunks.append(pts)

        if grads is not None:
            hi = [ii, jj, kk]
            hi[axis] = hi[axis] + 1
            g1 = grads[bb, ii, jj, kk]
            g2 = grads[bb, hi[0], hi[1], hi[2]]
            g = g1 * (1 - t[:, None]) + g2 * t[:, None]
            n = -g
            norms = np.linalg.norm(n, axis=1, keepdims=True)
            norms[norms < 1e-12] = 1.0
            normal_chunks.append(n / norms)

    vertices = np.concatenate(vert_chunks) if vert_chunks else np.empty((0, 3))
    normals = (
        np.concatenate(normal_chunks)
        if (grads is not None and normal_chunks)
        else np.empty((0, 3))
    )

    # --- triangle gathering ----------------------------------------------------
    act_cases = case_flat[active]
    edges = TRI_TABLE_PADDED[act_cases]  # (A, MAX_TRI, 3)
    keep = np.arange(MAX_TRI)[None, :] < N_TRI[act_cases][:, None]  # (A, MAX_TRI)
    tri_edges = edges[keep]  # (T, 3) local edge ids
    tri_cells = np.repeat(active, N_TRI[act_cases])  # (T,)

    bb, ci, cj, ck = np.unravel_index(tri_cells, case.shape)
    faces = np.empty((len(tri_edges), 3), dtype=np.int64)
    for corner in range(3):
        e = tri_edges[:, corner]
        fam = EDGE_AXIS[e]
        off = EDGE_CELL_OFFSET[e]
        li, lj, lk = ci + off[:, 0], cj + off[:, 1], ck + off[:, 2]
        flat = np.empty(len(e), dtype=np.int64)
        for axis in range(3):
            sel = fam == axis
            if not sel.any():
                continue
            flat[sel] = offsets[axis] + np.ravel_multi_index(
                (bb[sel], li[sel], lj[sel], lk[sel]), shapes[axis]
            )
        faces[:, corner] = vid[flat]
    if faces.min(initial=0) < 0:
        raise AssertionError(
            "triangle references a lattice edge without a crossing — "
            "case table / crossing mask inconsistency"
        )
    mesh = TriangleMesh(vertices, faces)
    if with_normals:
        return mesh, normals
    return mesh


def marching_cubes(
    values: np.ndarray,
    iso: float,
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
) -> TriangleMesh:
    """Extract the isosurface of a full grid as a welded indexed mesh.

    Parameters
    ----------
    values:
        ``(nx, ny, nz)`` scalar field (vertex samples).
    iso:
        Isovalue; a cell is active iff ``iso`` strictly separates vertex
        values (``v > iso`` on one side, ``v <= iso`` on the other).
    origin, spacing:
        World placement of the grid.

    Returns
    -------
    TriangleMesh
        With normals pointing toward the ``< iso`` side.
    """
    values = np.asarray(values)
    if values.ndim != 3:
        raise ValueError(f"expected a 3D grid, got shape {values.shape}")
    mesh = _extract_batch(values[None], float(iso), np.zeros((1, 3)))
    if mesh.n_vertices:
        mesh = TriangleMesh(
            mesh.vertices * np.asarray(spacing, dtype=np.float64)
            + np.asarray(origin, dtype=np.float64),
            mesh.faces,
        )
    return mesh


def marching_cubes_batch(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    spacing=(1.0, 1.0, 1.0),
    world_origin=(0.0, 0.0, 0.0),
    chunk: int = DEFAULT_BATCH_CHUNK,
    with_normals: bool = False,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Extract from a batch of equally-shaped sub-grids (metacells).

    Parameters
    ----------
    values:
        ``(n, mx, my, mz)`` stacked metacell payloads.
    iso:
        Isovalue.
    origins:
        ``(n, 3)`` lattice origin (in vertex-index units of the parent
        volume) of each metacell.
    spacing, world_origin:
        World placement of the parent volume.
    chunk:
        Metacells processed per vectorized pass (memory bound).
    with_normals:
        Also return per-vertex unit normals computed from each
        metacell's *own* payload gradient — the smooth-shading input a
        cluster node can produce without the global volume.

    Returns
    -------
    TriangleMesh
        Concatenation of all per-metacell surfaces.  Coincident
        vertices on shared metacell boundaries are *not* merged (call
        :meth:`TriangleMesh.weld` if a globally indexed mesh is needed).
        With ``with_normals=True``: ``(mesh, normals)``.
    """
    values = np.asarray(values)
    if values.ndim != 4:
        raise ValueError(f"expected (n, mx, my, mz) batch, got shape {values.shape}")
    origins = np.asarray(origins, dtype=np.float64).reshape(len(values), 3)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")

    meshes = []
    normal_parts = []
    for s in range(0, len(values), chunk):
        e = min(s + chunk, len(values))
        out = _extract_batch(
            values[s:e], float(iso), origins[s:e], with_normals=with_normals
        )
        if with_normals:
            m, n = out
            meshes.append(m)
            normal_parts.append(n)
        else:
            meshes.append(out)
    mesh = TriangleMesh.concat(meshes)
    if mesh.n_vertices:
        mesh = TriangleMesh(
            mesh.vertices * np.asarray(spacing, dtype=np.float64)
            + np.asarray(world_origin, dtype=np.float64),
            mesh.faces,
        )
    if with_normals:
        normals = (
            np.concatenate(normal_parts) if normal_parts else np.empty((0, 3))
        )
        # Anisotropic spacing shears normals: transform by the inverse
        # scale and renormalize.
        sp = np.asarray(spacing, dtype=np.float64)
        if mesh.n_vertices and not np.allclose(sp, sp[0]):
            normals = normals / sp
            norms = np.linalg.norm(normals, axis=1, keepdims=True)
            norms[norms < 1e-12] = 1.0
            normals = normals / norms
        return mesh, normals
    return mesh


def count_active_cells(values: np.ndarray, iso: float) -> int:
    """Number of cells whose corner values straddle ``iso`` (no geometry)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 3:
        values = values[None]
    pos = values > iso
    b, nx, ny, nz = values.shape
    case = np.zeros((b, nx - 1, ny - 1, nz - 1), dtype=np.uint8)
    any_pos = np.zeros((b, nx - 1, ny - 1, nz - 1), dtype=bool)
    all_pos = np.ones((b, nx - 1, ny - 1, nz - 1), dtype=bool)
    for dx, dy, dz in _CORNER_OFFSETS:
        c = pos[:, dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz]
        any_pos |= c
        all_pos &= c
    del case
    return int((any_pos & ~all_pos).sum())
