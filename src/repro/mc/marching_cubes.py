"""Vectorized Marching Cubes over grids and metacell batches.

Two entry points:

* :func:`marching_cubes` — extract from one full grid, with vertices
  welded globally through lattice-edge identification (every crossing on
  a lattice edge is computed once and shared by all incident cells), so
  the output is an indexed, watertight mesh with no duplicate vertices.

* :func:`marching_cubes_batch` — extract from a *batch* of metacell
  payloads at once (the shape in which the out-of-core query delivers
  active data).  Welding happens within each metacell; across metacells,
  boundary vertices coincide exactly (shared vertex layers + identical
  interpolation inputs), so the concatenated surface is crack-free even
  though it is not globally indexed — the same property the paper relies
  on for embarrassingly parallel triangulation.

The case tables come from :mod:`repro.mc.tables`, derived — not
transcribed — at import time.
"""

from __future__ import annotations

import numpy as np

from repro.mc.geometry import TriangleMesh
from repro.mc.tables import (
    EDGE_AXIS,
    EDGE_CELL_OFFSET,
    MAX_TRI,
    N_TRI,
    TRI_TABLE_PADDED,
)

#: Corner bit order: bit b corresponds to CORNERS[b] of tables.py.
_CORNER_OFFSETS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [1, 1, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [1, 1, 1],
        [0, 1, 1],
    ],
    dtype=np.int64,
)

#: Metacells triangulated per call in the batch path, bounding memory.
DEFAULT_BATCH_CHUNK = 512


def _edge_family_shapes(b, nx, ny, nz):
    return (
        (b, nx - 1, ny, nz),  # x edges
        (b, nx, ny - 1, nz),  # y edges
        (b, nx, ny, nz - 1),  # z edges
    )


class _BatchScratch:
    """Reusable per-chunk work buffers for :func:`_extract_batch`.

    The batch path allocates one lattice-edge id table per chunk (three
    edge families over every cell of the chunk — megabytes at the
    default chunk size).  Allocating it fresh each chunk costs a page
    fault per touched page; a scratch object handed down by
    :func:`marching_cubes_batch` amortizes that across chunks.
    """

    __slots__ = ("_vid",)

    def __init__(self) -> None:
        self._vid = np.empty(0, dtype=np.int64)

    def vid(self, n: int) -> np.ndarray:
        """An ``int64`` buffer of length ``n`` pre-filled with -1."""
        if len(self._vid) < n:
            self._vid = np.empty(n, dtype=np.int64)
        out = self._vid[:n]
        out.fill(-1)
        return out


def _extract_batch(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    with_normals: bool = False,
    scratch: "_BatchScratch | None" = None,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Core extraction over ``values`` of shape (B, nx, ny, nz).

    ``origins`` — (B, 3) lattice offsets added to vertex coordinates
    (still in vertex-index units; world scaling is applied by callers).

    With ``with_normals=True`` also returns per-vertex unit normals from
    the *local* field gradient (central differences within each batch
    element, linearly interpolated along the crossing edge, negated to
    point toward the < iso side).  Every quantity is computable from the
    element's own payload — no global volume required.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    b, nx, ny, nz = values.shape
    pos = values > iso

    # --- per-cell case index ------------------------------------------------
    # Computed before anything else so empty chunks skip the gradient,
    # crossing-mask, and edge-family allocations entirely.
    case = np.zeros((b, nx - 1, ny - 1, nz - 1), dtype=np.uint16)
    for bit, (dx, dy, dz) in enumerate(_CORNER_OFFSETS):
        case |= (
            pos[:, dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz].astype(np.uint16)
            << bit
        )

    case_flat = case.reshape(-1)
    tri_counts = N_TRI[case_flat]
    active = np.flatnonzero(tri_counts)
    if len(active) == 0:
        if with_normals:
            return TriangleMesh(), np.empty((0, 3))
        return TriangleMesh()

    grads = None
    if with_normals:
        # (B, nx, ny, nz, 3) central-difference gradient per element.
        gx, gy, gz = np.gradient(values, axis=(1, 2, 3))
        grads = np.stack([gx, gy, gz], axis=-1)

    # --- lattice-edge crossing vertices --------------------------------------
    shapes = _edge_family_shapes(b, nx, ny, nz)
    sizes = [int(np.prod(s)) for s in shapes]
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    # C-order strides (in elements) of each edge-family grid and of the
    # value grid: crossing scalars are gathered straight out of the
    # contiguous value array by flat index instead of materializing the
    # six shifted-view copies `reshape(-1)` would force.
    fam_strides = [(s[1] * s[2] * s[3], s[2] * s[3], s[3], 1) for s in shapes]
    val_strides = (nx * ny * nz, ny * nz, nz, 1)
    values_flat = values.reshape(-1)

    cross_masks = [
        pos[:, :-1, :, :] != pos[:, 1:, :, :],
        pos[:, :, :-1, :] != pos[:, :, 1:, :],
        pos[:, :, :, :-1] != pos[:, :, :, 1:],
    ]

    vid = (scratch or _BatchScratch()).vid(int(offsets[-1]))
    vert_chunks = []
    normal_chunks = []
    n_verts = 0
    for axis in range(3):
        where = np.flatnonzero(cross_masks[axis].reshape(-1))
        if len(where) == 0:
            continue
        vid[offsets[axis] + where] = n_verts + np.arange(len(where))
        n_verts += len(where)

        bb, ii, jj, kk = np.unravel_index(where, shapes[axis])
        lo = (
            bb * val_strides[0]
            + ii * val_strides[1]
            + jj * val_strides[2]
            + kk * val_strides[3]
        )
        s1 = values_flat[lo]
        s2 = values_flat[lo + val_strides[axis + 1]]
        t = (iso - s1) / (s2 - s1)
        pts = np.empty((len(where), 3), dtype=np.float64)
        pts[:, 0] = ii
        pts[:, 1] = jj
        pts[:, 2] = kk
        pts[:, axis] += t
        pts += origins[bb]
        vert_chunks.append(pts)

        if grads is not None:
            hi = [ii, jj, kk]
            hi[axis] = hi[axis] + 1
            g1 = grads[bb, ii, jj, kk]
            g2 = grads[bb, hi[0], hi[1], hi[2]]
            g = g1 * (1 - t[:, None]) + g2 * t[:, None]
            n = -g
            norms = np.linalg.norm(n, axis=1, keepdims=True)
            norms[norms < 1e-12] = 1.0
            normal_chunks.append(n / norms)

    vertices = np.concatenate(vert_chunks) if vert_chunks else np.empty((0, 3))
    normals = (
        np.concatenate(normal_chunks)
        if (grads is not None and normal_chunks)
        else np.empty((0, 3))
    )

    # --- triangle gathering ----------------------------------------------------
    act_cases = case_flat[active]
    act_counts = tri_counts[active]
    edges = TRI_TABLE_PADDED[act_cases]  # (A, MAX_TRI, 3)
    keep = np.arange(MAX_TRI)[None, :] < act_counts[:, None]  # (A, MAX_TRI)
    tri_edges = edges[keep].reshape(-1, 3)  # (T, 3) local edge ids
    tri_cells = np.repeat(active, act_counts)  # (T,)

    bb, ci, cj, ck = np.unravel_index(tri_cells, case.shape)
    # Each of the 12 local edge ids maps affinely into the concatenated
    # edge-id table: vid_index = W0[e]*bb + W1[e]*ci + W2[e]*cj
    # + W3[e]*ck + C[e], with the weights taken from the edge's family
    # strides and the constant folding in the family offset and the
    # edge's cell-offset.  One fused gather replaces the per-corner,
    # per-family `ravel_multi_index` passes.
    W = np.empty((4, len(EDGE_AXIS)), dtype=np.int64)
    C = np.empty(len(EDGE_AXIS), dtype=np.int64)
    for e in range(len(EDGE_AXIS)):
        a = int(EDGE_AXIS[e])
        st = fam_strides[a]
        off = EDGE_CELL_OFFSET[e]
        W[:, e] = st
        C[e] = (
            offsets[a]
            + int(off[0]) * st[1]
            + int(off[1]) * st[2]
            + int(off[2]) * st[3]
        )
    flat = (
        W[0][tri_edges] * bb[:, None]
        + W[1][tri_edges] * ci[:, None]
        + W[2][tri_edges] * cj[:, None]
        + W[3][tri_edges] * ck[:, None]
        + C[tri_edges]
    )
    faces = vid[flat]
    if faces.min(initial=0) < 0:
        raise AssertionError(
            "triangle references a lattice edge without a crossing — "
            "case table / crossing mask inconsistency"
        )
    mesh = TriangleMesh(vertices, faces)
    if with_normals:
        return mesh, normals
    return mesh


def marching_cubes(
    values: np.ndarray,
    iso: float,
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
) -> TriangleMesh:
    """Extract the isosurface of a full grid as a welded indexed mesh.

    Parameters
    ----------
    values:
        ``(nx, ny, nz)`` scalar field (vertex samples).
    iso:
        Isovalue; a cell is active iff ``iso`` strictly separates vertex
        values (``v > iso`` on one side, ``v <= iso`` on the other).
    origin, spacing:
        World placement of the grid.

    Returns
    -------
    TriangleMesh
        With normals pointing toward the ``< iso`` side.
    """
    values = np.asarray(values)
    if values.ndim != 3:
        raise ValueError(f"expected a 3D grid, got shape {values.shape}")
    mesh = _extract_batch(values[None], float(iso), np.zeros((1, 3)))
    if mesh.n_vertices:
        mesh = TriangleMesh(
            mesh.vertices * np.asarray(spacing, dtype=np.float64)
            + np.asarray(origin, dtype=np.float64),
            mesh.faces,
        )
    return mesh


def marching_cubes_batch(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    spacing=(1.0, 1.0, 1.0),
    world_origin=(0.0, 0.0, 0.0),
    chunk: int = DEFAULT_BATCH_CHUNK,
    with_normals: bool = False,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Extract from a batch of equally-shaped sub-grids (metacells).

    Parameters
    ----------
    values:
        ``(n, mx, my, mz)`` stacked metacell payloads.
    iso:
        Isovalue.
    origins:
        ``(n, 3)`` lattice origin (in vertex-index units of the parent
        volume) of each metacell.
    spacing, world_origin:
        World placement of the parent volume.
    chunk:
        Metacells processed per vectorized pass (memory bound).
    with_normals:
        Also return per-vertex unit normals computed from each
        metacell's *own* payload gradient — the smooth-shading input a
        cluster node can produce without the global volume.

    Returns
    -------
    TriangleMesh
        Concatenation of all per-metacell surfaces.  Coincident
        vertices on shared metacell boundaries are *not* merged (call
        :meth:`TriangleMesh.weld` if a globally indexed mesh is needed).
        With ``with_normals=True``: ``(mesh, normals)``.
    """
    values = np.asarray(values)
    if values.ndim != 4:
        raise ValueError(f"expected (n, mx, my, mz) batch, got shape {values.shape}")
    origins = np.asarray(origins, dtype=np.float64).reshape(len(values), 3)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")

    mesh, normals = _extract_batch_chunks(
        values, float(iso), origins, chunk, with_normals
    )
    return _apply_world_transform(mesh, normals, spacing, world_origin, with_normals)


def _extract_batch_chunks(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    chunk: int = DEFAULT_BATCH_CHUNK,
    with_normals: bool = False,
) -> "tuple[TriangleMesh, np.ndarray | None]":
    """Chunked extraction in lattice units, before world placement.

    Shared by :func:`marching_cubes_batch` and the shared-memory
    pipeline workers (``repro.parallel.pipeline``): both cut the global
    metacell stream on the same ``chunk`` boundaries and concatenate in
    stream order, so a parallel run reassembles to the bit-identical
    mesh a serial run produces.  Returns ``(mesh, normals-or-None)``
    with vertices still in vertex-index units.
    """
    meshes = []
    normal_parts = []
    scratch = _BatchScratch()
    for s in range(0, len(values), chunk):
        e = min(s + chunk, len(values))
        out = _extract_batch(
            values[s:e], iso, origins[s:e], with_normals=with_normals,
            scratch=scratch,
        )
        if with_normals:
            m, n = out
            meshes.append(m)
            normal_parts.append(n)
        else:
            meshes.append(out)
    mesh = TriangleMesh.concat(meshes)
    if not with_normals:
        return mesh, None
    normals = np.concatenate(normal_parts) if normal_parts else np.empty((0, 3))
    return mesh, normals


def _apply_world_transform(
    mesh: "TriangleMesh",
    normals: "np.ndarray | None",
    spacing,
    world_origin,
    with_normals: bool,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Place a lattice-unit mesh into world coordinates (final stage)."""
    if mesh.n_vertices:
        mesh = TriangleMesh(
            mesh.vertices * np.asarray(spacing, dtype=np.float64)
            + np.asarray(world_origin, dtype=np.float64),
            mesh.faces,
        )
    if with_normals:
        if normals is None:
            normals = np.empty((0, 3))
        # Anisotropic spacing shears normals: transform by the inverse
        # scale and renormalize.
        sp = np.asarray(spacing, dtype=np.float64)
        if mesh.n_vertices and not np.allclose(sp, sp[0]):
            normals = normals / sp
            norms = np.linalg.norm(normals, axis=1, keepdims=True)
            norms[norms < 1e-12] = 1.0
            normals = normals / norms
        return mesh, normals
    return mesh


def count_active_cells(values: np.ndarray, iso: float) -> int:
    """Number of cells whose corner values straddle ``iso`` (no geometry)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 3:
        values = values[None]
    pos = values > iso
    b, nx, ny, nz = values.shape
    case = np.zeros((b, nx - 1, ny - 1, nz - 1), dtype=np.uint8)
    any_pos = np.zeros((b, nx - 1, ny - 1, nz - 1), dtype=bool)
    all_pos = np.ones((b, nx - 1, ny - 1, nz - 1), dtype=bool)
    for dx, dy, dz in _CORNER_OFFSETS:
        c = pos[:, dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz]
        any_pos |= c
        all_pos &= c
    del case
    return int((any_pos & ~all_pos).sum())
