"""Vectorized Marching Cubes over grids and metacell batches.

Two entry points:

* :func:`marching_cubes` — extract from one full grid, with vertices
  welded globally through lattice-edge identification (every crossing on
  a lattice edge is computed once and shared by all incident cells), so
  the output is an indexed, watertight mesh with no duplicate vertices.

* :func:`marching_cubes_batch` — extract from a *batch* of metacell
  payloads at once (the shape in which the out-of-core query delivers
  active data).  Welding happens within each metacell; across metacells,
  boundary vertices coincide exactly (shared vertex layers + identical
  interpolation inputs), so the concatenated surface is crack-free even
  though it is not globally indexed — the same property the paper relies
  on for embarrassingly parallel triangulation.

The case tables come from :mod:`repro.mc.tables`, derived — not
transcribed — at import time.

Second-generation batch path (the ``mc-batch`` backend of
:mod:`repro.mc.backends`): active cells are found by a separable
any/all corner sweep *before* the payload is copied or cast (empty
chunks never touch the float path), case indices are gathered sparsely
for the active cells only, the per-case triangle triples come from one
flat precomputed table (:data:`_TRI_ROWS` / :data:`_TRI_START`) instead
of a padded-table boolean mask, the per-shape affine edge-gather weights
are cached across chunks (:func:`_edge_gather_tables`), and the
interpolation temporaries live in the chunk-shared :class:`_BatchScratch`.
The triangle and vertex *ordering* is unchanged — family-major crossing
enumeration, cell-major triangle emission — so the output is
bit-identical to the first-generation kernel and to the serial path.
"""

from __future__ import annotations

import numpy as np

from repro.mc.geometry import TriangleMesh
from repro.mc.tables import (
    EDGE_AXIS,
    EDGE_CELL_OFFSET,
    MAX_TRI,
    N_TRI,
    TRI_TABLE_PADDED,
)

#: Corner bit order: bit b corresponds to CORNERS[b] of tables.py.
_CORNER_OFFSETS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [1, 1, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [1, 1, 1],
        [0, 1, 1],
    ],
    dtype=np.int64,
)

#: Metacells triangulated per call in the batch path, bounding memory.
#: Tunable per request via ``QueryOptions.batch_chunk`` /
#: ``ExtractRequest.batch_chunk``; the serial bit-identity contract of
#: the shared-memory pipeline is pinned to this default.
DEFAULT_BATCH_CHUNK = 512

#: Flat per-case triangle table: the (edge, edge, edge) triples of every
#: case concatenated in case order, with ``_TRI_START[case]`` the first
#: row of that case.  Replaces the padded-table + boolean-mask gather:
#: triangle rows are addressed directly as
#: ``_TRI_START[case] + 0..N_TRI[case]-1``.
_TRI_ROWS = TRI_TABLE_PADDED[
    np.arange(MAX_TRI)[None, :] < N_TRI[:, None]
].reshape(-1, 3)
_TRI_START = np.zeros(256, dtype=np.int64)
_TRI_START[1:] = np.cumsum(N_TRI[:-1])

#: Edge family (axis) of every triangle-corner edge in :data:`_TRI_ROWS`
#: — shape-independent, so expanded once at import.
_TRI_AXROWS = EDGE_AXIS[_TRI_ROWS]


def _edge_family_shapes(b, nx, ny, nz):
    return (
        (b, nx - 1, ny, nz),  # x edges
        (b, nx, ny - 1, nz),  # y edges
        (b, nx, ny, nz - 1),  # z edges
    )


#: Per-(batch, metacell-shape) affine gather tables, cached across
#: chunks and calls: the batch path sees the same one or two shapes
#: thousands of times per extraction, and rebuilding the weights was a
#: measurable per-chunk Python loop.
_GATHER_TABLE_CACHE: "dict[tuple[int, int, int, int], tuple]" = {}


def _edge_gather_tables(b: int, nx: int, ny: int, nz: int) -> tuple:
    """Precomputed per-shape strides for the edge/corner gathers.

    Returns ``(shapes, offsets, val_strides, fam_strides, d_rows,
    corner_offs)``:

    * ``shapes`` — the three edge-family grid shapes;
    * ``offsets`` — start of each family in the concatenated edge table;
    * ``val_strides`` — C-order element strides of the value grid;
    * ``fam_strides`` (3, 4) — C-order strides of each family grid, so a
      cell's *family base* (the flat id of its (0,0,0)-offset edge in
      family ``a``) is ``offsets[a] + (b,i,j,k) · fam_strides[a]``;
    * ``d_rows`` — :data:`_TRI_ROWS` expanded to each edge's flat offset
      from its cell's family base, i.e. the per-case edge-gather strides:
      edge ``e``'s id is ``base[axis(e)] + d_rows[row, corner]``;
    * ``corner_offs`` (8,) — flat value-grid offset of each cell corner
      relative to the cell's low corner, in corner-bit order.
    """
    key = (b, nx, ny, nz)
    hit = _GATHER_TABLE_CACHE.get(key)
    if hit is not None:
        return hit
    shapes = _edge_family_shapes(b, nx, ny, nz)
    sizes = [int(np.prod(s)) for s in shapes]
    offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    fam_strides = np.array(
        [(s[1] * s[2] * s[3], s[2] * s[3], s[3], 1) for s in shapes],
        dtype=np.int64,
    )
    val_strides = (nx * ny * nz, ny * nz, nz, 1)
    d_edge = np.empty(len(EDGE_AXIS), dtype=np.int64)
    for e in range(len(EDGE_AXIS)):
        st = fam_strides[int(EDGE_AXIS[e])]
        off = EDGE_CELL_OFFSET[e]
        d_edge[e] = int(off[0]) * st[1] + int(off[1]) * st[2] + int(off[2]) * st[3]
    d_rows = d_edge[_TRI_ROWS]
    corner_offs = np.array(
        [
            dx * val_strides[1] + dy * val_strides[2] + dz * val_strides[3]
            for dx, dy, dz in _CORNER_OFFSETS
        ],
        dtype=np.int64,
    )
    if len(_GATHER_TABLE_CACHE) > 64:
        _GATHER_TABLE_CACHE.clear()
    entry = (shapes, offsets, val_strides, fam_strides, d_rows, corner_offs)
    _GATHER_TABLE_CACHE[key] = entry
    return entry


class _BatchScratch:
    """Reusable per-chunk work buffers for :func:`_extract_batch`.

    The batch path allocates one lattice-edge id table per chunk (three
    edge families over every cell of the chunk — megabytes at the
    default chunk size) plus several crossing-sized interpolation
    temporaries.  Allocating them fresh each chunk costs a page fault
    per touched page; a scratch object handed down by
    :func:`marching_cubes_batch` amortizes that across chunks.

    The edge-id table is kept *sparsely clean*: instead of re-filling
    the whole table with -1 every chunk, the extraction resets exactly
    the entries it set — O(crossings) instead of O(table).
    """

    __slots__ = ("_vid", "_i64a", "_i64b", "_f64a", "_f64b", "_u8a", "_u8b")

    def __init__(self) -> None:
        self._vid = np.empty(0, dtype=np.int64)
        self._i64a = np.empty(0, dtype=np.int64)
        self._i64b = np.empty(0, dtype=np.int64)
        self._f64a = np.empty(0, dtype=np.float64)
        self._f64b = np.empty(0, dtype=np.float64)
        self._u8a = np.empty(0, dtype=np.uint8)
        self._u8b = np.empty(0, dtype=np.uint8)

    def vid(self, n: int) -> np.ndarray:
        """An ``int32`` edge-id table of length ``n``, every entry -1.

        ``int32`` keeps the randomly-gathered table half the size (a
        chunk's crossing count is far below 2**31).  The caller owns
        returning it to the all--1 state (sparse reset of the entries it
        wrote) before the next chunk uses it.
        """
        if len(self._vid) < n:
            self._vid = np.empty(n, dtype=np.int32)
            self._vid.fill(-1)
        return self._vid[:n]

    def _grow(self, name: str, n: int, dtype) -> np.ndarray:
        buf = getattr(self, name)
        if len(buf) < n:
            buf = np.empty(n, dtype=dtype)
            setattr(self, name, buf)
        return buf[:n]

    def i64a(self, n: int) -> np.ndarray:
        return self._grow("_i64a", n, np.int64)

    def i64b(self, n: int) -> np.ndarray:
        return self._grow("_i64b", n, np.int64)

    def f64a(self, n: int) -> np.ndarray:
        return self._grow("_f64a", n, np.float64)

    def f64b(self, n: int) -> np.ndarray:
        return self._grow("_f64b", n, np.float64)

    def u8a(self, n: int) -> np.ndarray:
        return self._grow("_u8a", n, np.uint8)

    def u8b(self, n: int) -> np.ndarray:
        return self._grow("_u8b", n, np.uint8)


def _mixed_cells_mask(pos: np.ndarray) -> np.ndarray:
    """Cells whose 8 corner signs are mixed, via separable any/all
    sweeps (three shrinking passes instead of eight full-lattice ones)."""
    any_x = pos[:, 1:] | pos[:, :-1]
    all_x = pos[:, 1:] & pos[:, :-1]
    any_xy = any_x[:, :, 1:] | any_x[:, :, :-1]
    all_xy = all_x[:, :, 1:] & all_x[:, :, :-1]
    mixed = any_xy[:, :, :, 1:] | any_xy[:, :, :, :-1]
    allc = all_xy[:, :, :, 1:] & all_xy[:, :, :, :-1]
    np.logical_and(mixed, ~allc, out=mixed)
    return mixed


def _extract_batch_arrays(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    with_normals: bool = False,
    scratch: "_BatchScratch | None" = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None]":
    """Core extraction over ``values`` of shape (B, nx, ny, nz).

    Returns raw ``(vertices, faces, normals-or-None)`` in lattice units
    (``origins`` already applied); :func:`_extract_batch` wraps the
    result in a validated :class:`TriangleMesh`.

    ``origins`` — (B, 3) lattice offsets added to vertex coordinates
    (still in vertex-index units; world scaling is applied by callers).

    With ``with_normals=True`` the third element carries per-vertex unit
    normals from the *local* field gradient (central differences within
    each batch element, linearly interpolated along the crossing edge,
    negated to point toward the < iso side).  Every quantity is
    computable from the element's own payload — no global volume
    required.
    """
    b, nx, ny, nz = values.shape
    pos = values > iso

    # --- active-cell prefilter ---------------------------------------------
    # Runs on the raw payload *before* any cast or contiguous copy, so
    # empty chunks cost three boolean sweeps and nothing else.
    active = np.flatnonzero(_mixed_cells_mask(pos).reshape(-1))
    if len(active) == 0:
        empty = np.empty((0, 3))
        return empty, np.empty((0, 3), dtype=np.int64), (
            np.empty((0, 3)) if with_normals else None
        )

    values = np.ascontiguousarray(values, dtype=np.float64)
    shapes, offsets, val_strides, fam_strides, d_rows, corner_offs = (
        _edge_gather_tables(b, nx, ny, nz)
    )
    scratch = scratch or _BatchScratch()

    grads = None
    if with_normals:
        # (B, nx, ny, nz, 3) central-difference gradient per element.
        gx, gy, gz = np.gradient(values, axis=(1, 2, 3))
        grads = np.stack([gx, gy, gz], axis=-1)

    values_flat = values.reshape(-1)
    pos_flat = np.ascontiguousarray(pos).reshape(-1)

    # --- per-cell case index -------------------------------------------------
    # Dense path for surface-heavy chunks (eight strided uint8 passes
    # over the cell lattice, one gather at the end); sparse path when
    # active cells are rare (eight corner gathers at the active cells
    # only).  `case` lives in scratch until the triangle stage consumes
    # it; no uint8 scratch buffer is touched in between.
    n_act = len(active)
    n_cells = b * (nx - 1) * (ny - 1) * (nz - 1)
    cb, ci, cj, ck = np.unravel_index(active, (b, nx - 1, ny - 1, nz - 1))
    base = scratch.i64a(n_act)
    tmp = scratch.i64b(n_act)
    np.multiply(cb, val_strides[0], out=base)
    np.multiply(ci, val_strides[1], out=tmp)
    base += tmp
    np.multiply(cj, val_strides[2], out=tmp)
    base += tmp
    np.multiply(ck, val_strides[3], out=tmp)
    base += tmp
    if 4 * n_act >= n_cells:
        cell_shape = (b, nx - 1, ny - 1, nz - 1)
        cword = scratch.u8a(n_cells).reshape(cell_shape)
        tmp8 = scratch.u8b(n_cells).reshape(cell_shape)
        pos8 = pos.view(np.uint8)
        for bit, (dx, dy, dz) in enumerate(_CORNER_OFFSETS):
            win = pos8[:, dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz]
            if bit == 0:
                np.copyto(cword, win)
            else:
                np.left_shift(win, bit, out=tmp8)
                np.bitwise_or(cword, tmp8, out=cword)
        case = cword.reshape(-1)[active]
    else:
        pos_u8 = pos_flat.view(np.uint8)
        case = scratch.u8a(n_act)
        case.fill(0)
        corner = scratch.u8b(n_act)
        for bit in range(8):
            np.add(base, corner_offs[bit], out=tmp)
            np.take(pos_u8, tmp, out=corner)
            np.left_shift(corner, bit, out=corner)
            np.bitwise_or(case, corner, out=case)
    act_counts = N_TRI[case]

    # Per-cell family bases for the triangle stage, derived from the
    # value-grid base while it is still live in scratch (the crossing
    # loop below reuses the integer buffers): family a differs from the
    # value grid only in axis a's extent, so each base is one
    # multiply-subtract away instead of four stride multiplies.
    bases = np.empty((n_act, 3), dtype=np.int64)
    bx, by, bz = bases[:, 0], bases[:, 1], bases[:, 2]
    np.multiply(cb, val_strides[1], out=bx)
    np.subtract(base, bx, out=bx)  # offsets[0] == 0
    np.multiply(cb, nx, out=tmp)
    tmp += ci  # cb*nx + ci, shared by the y and z families
    np.multiply(tmp, nz, out=by)
    np.subtract(base, by, out=by)
    by += offsets[1]
    np.multiply(tmp, ny, out=bz)
    bz += cj
    np.subtract(base, bz, out=bz)
    bz += offsets[2]

    # --- lattice-edge crossing vertices --------------------------------------
    # Crossing scalars are gathered straight out of the contiguous value
    # array by flat index instead of materializing the six shifted-view
    # copies `reshape(-1)` would force.
    vid = scratch.vid(int(offsets[-1]))
    vert_chunks = []
    normal_chunks = []
    wheres: "list[np.ndarray]" = []
    n_verts = 0
    for axis in range(3):
        sl_lo = tuple(
            slice(None, -1) if a == axis + 1 else slice(None) for a in range(4)
        )
        sl_hi = tuple(
            slice(1, None) if a == axis + 1 else slice(None) for a in range(4)
        )
        where = np.flatnonzero((pos[sl_lo] ^ pos[sl_hi]).reshape(-1))
        wheres.append(where)
        if len(where) == 0:
            continue
        vid[offsets[axis] + where] = np.arange(
            n_verts, n_verts + len(where), dtype=np.int32
        )
        n_verts += len(where)

        eb, ii, jj, kk = np.unravel_index(where, shapes[axis])
        n = len(where)
        lo = scratch.i64a(n)
        tmp = scratch.i64b(n)
        np.multiply(eb, val_strides[0], out=lo)
        np.multiply(ii, val_strides[1], out=tmp)
        lo += tmp
        np.multiply(jj, val_strides[2], out=tmp)
        lo += tmp
        np.multiply(kk, val_strides[3], out=tmp)
        lo += tmp
        s1 = scratch.f64a(n)
        s2 = scratch.f64b(n)
        np.take(values_flat, lo, out=s1)
        lo += val_strides[axis + 1]
        np.take(values_flat, lo, out=s2)
        # t = (iso - s1) / (s2 - s1), computed in place in the scratch
        # buffers (same operation order as the reference kernel, so the
        # float results are bit-identical).
        np.subtract(s2, s1, out=s2)
        np.subtract(iso, s1, out=s1)
        np.divide(s1, s2, out=s1)
        t = s1
        pts = np.empty((n, 3), dtype=np.float64)
        pts[:, 0] = ii
        pts[:, 1] = jj
        pts[:, 2] = kk
        pts[:, axis] += t
        pts += origins[eb]
        vert_chunks.append(pts)

        if grads is not None:
            hi = [ii, jj, kk]
            hi[axis] = hi[axis] + 1
            g1 = grads[eb, ii, jj, kk]
            g2 = grads[eb, hi[0], hi[1], hi[2]]
            g = g1 * (1 - t[:, None]) + g2 * t[:, None]
            nrm = -g
            norms = np.linalg.norm(nrm, axis=1, keepdims=True)
            norms[norms < 1e-12] = 1.0
            normal_chunks.append(nrm / norms)

    vertices = np.concatenate(vert_chunks) if vert_chunks else np.empty((0, 3))
    normals = (
        np.concatenate(normal_chunks)
        if (grads is not None and normal_chunks)
        else np.empty((0, 3))
    )

    # --- triangle gathering ----------------------------------------------------
    # Table-driven flat gather: each active cell's triangle rows are
    # addressed directly in the concatenated per-case table, replacing
    # the (A, MAX_TRI, 3) padded gather + boolean keep mask.  Emission
    # order (cell-major, table order within a cell) is unchanged.
    total = int(act_counts.sum())
    cum = np.cumsum(act_counts)
    # rows[t] = _TRI_START[case] + rank-within-cell, built from one
    # repeat of the per-cell start minus the exclusive cumsum.
    rows = np.repeat(_TRI_START[case] + act_counts - cum, act_counts)
    rows += np.arange(total, dtype=np.int64)
    # A cell's 12 edge ids are its three per-family bases plus the
    # cached per-case offsets (`d_rows`): two small-table gathers and one
    # base gather replace the four stride multiplies per corner.
    tri_cell3 = np.repeat(np.arange(0, 3 * n_act, 3, dtype=np.int64), act_counts)
    flat = _TRI_AXROWS[rows]
    flat += tri_cell3[:, None]
    flat = bases.reshape(-1)[flat]
    flat += d_rows[rows]
    faces = vid[flat]
    bad = faces.min(initial=0) < 0
    # Sparse reset: return exactly the entries this chunk set to -1 so
    # the shared scratch table is clean for the next chunk without a
    # full-table fill.
    for axis, where in enumerate(wheres):
        if len(where):
            vid[offsets[axis] + where] = -1
    if bad:
        raise AssertionError(
            "triangle references a lattice edge without a crossing — "
            "case table / crossing mask inconsistency"
        )
    return vertices, faces, (normals if with_normals else None)


def _extract_batch(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    with_normals: bool = False,
    scratch: "_BatchScratch | None" = None,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Core extraction wrapped in a validated :class:`TriangleMesh`
    (see :func:`_extract_batch_arrays` for the array-level contract)."""
    vertices, faces, normals = _extract_batch_arrays(
        np.asarray(values), iso, origins, with_normals=with_normals,
        scratch=scratch,
    )
    mesh = TriangleMesh(vertices, faces)
    if with_normals:
        return mesh, (normals if normals is not None else np.empty((0, 3)))
    return mesh


def marching_cubes(
    values: np.ndarray,
    iso: float,
    origin=(0.0, 0.0, 0.0),
    spacing=(1.0, 1.0, 1.0),
) -> TriangleMesh:
    """Extract the isosurface of a full grid as a welded indexed mesh.

    Parameters
    ----------
    values:
        ``(nx, ny, nz)`` scalar field (vertex samples).
    iso:
        Isovalue; a cell is active iff ``iso`` strictly separates vertex
        values (``v > iso`` on one side, ``v <= iso`` on the other).
    origin, spacing:
        World placement of the grid.

    Returns
    -------
    TriangleMesh
        With normals pointing toward the ``< iso`` side.
    """
    values = np.asarray(values)
    if values.ndim != 3:
        raise ValueError(f"expected a 3D grid, got shape {values.shape}")
    mesh = _extract_batch(values[None], float(iso), np.zeros((1, 3)))
    if mesh.n_vertices:
        mesh = TriangleMesh(
            mesh.vertices * np.asarray(spacing, dtype=np.float64)
            + np.asarray(origin, dtype=np.float64),
            mesh.faces,
        )
    return mesh


def marching_cubes_batch(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    spacing=(1.0, 1.0, 1.0),
    world_origin=(0.0, 0.0, 0.0),
    chunk: int = DEFAULT_BATCH_CHUNK,
    with_normals: bool = False,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Extract from a batch of equally-shaped sub-grids (metacells).

    Parameters
    ----------
    values:
        ``(n, mx, my, mz)`` stacked metacell payloads.
    iso:
        Isovalue.
    origins:
        ``(n, 3)`` lattice origin (in vertex-index units of the parent
        volume) of each metacell.
    spacing, world_origin:
        World placement of the parent volume.
    chunk:
        Metacells processed per vectorized pass (memory bound).
        Callers tune it per request via ``QueryOptions.batch_chunk``;
        the output geometry is identical for every chunk size (only
        vertex numbering, and hence the exact byte layout, follows the
        chunk boundaries — the serial bit-identity contract of the
        shared-memory pipeline is pinned to the default).
    with_normals:
        Also return per-vertex unit normals computed from each
        metacell's *own* payload gradient — the smooth-shading input a
        cluster node can produce without the global volume.

    Returns
    -------
    TriangleMesh
        Concatenation of all per-metacell surfaces.  Coincident
        vertices on shared metacell boundaries are *not* merged (call
        :meth:`TriangleMesh.weld` if a globally indexed mesh is needed).
        With ``with_normals=True``: ``(mesh, normals)``.
    """
    values = np.asarray(values)
    if values.ndim != 4:
        raise ValueError(f"expected (n, mx, my, mz) batch, got shape {values.shape}")
    origins = np.asarray(origins, dtype=np.float64).reshape(len(values), 3)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")

    mesh, normals = _extract_batch_chunks(
        values, float(iso), origins, chunk, with_normals
    )
    return _apply_world_transform(mesh, normals, spacing, world_origin, with_normals)


def _extract_batch_chunks(
    values: np.ndarray,
    iso: float,
    origins: np.ndarray,
    chunk: int = DEFAULT_BATCH_CHUNK,
    with_normals: bool = False,
) -> "tuple[TriangleMesh, np.ndarray | None]":
    """Chunked extraction in lattice units, before world placement.

    Shared by :func:`marching_cubes_batch` and the shared-memory
    pipeline workers (``repro.parallel.pipeline``): both cut the global
    metacell stream on the same ``chunk`` boundaries and concatenate in
    stream order, so a parallel run reassembles to the bit-identical
    mesh a serial run produces.  Returns ``(mesh, normals-or-None)``
    with vertices still in vertex-index units.  Chunk outputs are
    accumulated as raw arrays and validated once in the final
    :class:`TriangleMesh`, not per chunk.
    """
    values = np.asarray(values)
    vert_parts: "list[np.ndarray]" = []
    face_parts: "list[np.ndarray]" = []
    normal_parts: "list[np.ndarray]" = []
    v_off = 0
    scratch = _BatchScratch()
    for s in range(0, len(values), chunk):
        e = min(s + chunk, len(values))
        verts, faces, normals = _extract_batch_arrays(
            values[s:e], iso, origins[s:e], with_normals=with_normals,
            scratch=scratch,
        )
        if len(faces):
            if v_off:
                # `faces` is freshly gathered per chunk — offset in place.
                np.add(faces, v_off, out=faces)
            face_parts.append(faces)
        if len(verts):
            vert_parts.append(verts)
            v_off += len(verts)
        if with_normals and normals is not None and len(normals):
            normal_parts.append(normals)
    vertices = np.concatenate(vert_parts) if vert_parts else np.empty((0, 3))
    faces = (
        np.concatenate(face_parts)
        if face_parts
        else np.empty((0, 3), dtype=np.int64)
    )
    mesh = TriangleMesh(vertices, faces)
    if not with_normals:
        return mesh, None
    normals = np.concatenate(normal_parts) if normal_parts else np.empty((0, 3))
    return mesh, normals


def _apply_world_transform(
    mesh: "TriangleMesh",
    normals: "np.ndarray | None",
    spacing,
    world_origin,
    with_normals: bool,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Place a lattice-unit mesh into world coordinates (final stage).

    Takes ownership of ``mesh``: every caller passes a freshly assembled
    mesh, so the vertices are scaled in place instead of re-validating a
    reconstruction per extraction."""
    if mesh.n_vertices:
        mesh.vertices *= np.asarray(spacing, dtype=np.float64)
        mesh.vertices += np.asarray(world_origin, dtype=np.float64)
    if with_normals:
        if normals is None:
            normals = np.empty((0, 3))
        # Anisotropic spacing shears normals: transform by the inverse
        # scale and renormalize.
        sp = np.asarray(spacing, dtype=np.float64)
        if mesh.n_vertices and not np.allclose(sp, sp[0]):
            normals = normals / sp
            norms = np.linalg.norm(normals, axis=1, keepdims=True)
            norms[norms < 1e-12] = 1.0
            normals = normals / norms
        return mesh, normals
    return mesh


def count_active_cells(values: np.ndarray, iso: float) -> int:
    """Number of cells whose corner values straddle ``iso`` (no geometry)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 3:
        values = values[None]
    return int(_mixed_cells_mask(values > iso).sum())
