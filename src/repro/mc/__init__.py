"""Triangulation substrate: Marching Cubes and supporting geometry.

``tables``
    The 256-case Marching Cubes tables, *derived* at import time via a
    face-consistent edge-cycle construction (crack-free by construction).
``marching_cubes``
    Vectorized extraction over full grids and metacell batches.
``surface_nets``
    Sign-driven dual extraction (smoothed topology-equivalent surface).
``backends``
    The pluggable kernel registry behind ``QueryOptions.backend``.
``marching_tets``
    Independent marching-tetrahedra oracle used by the tests.
``geometry``
    :class:`TriangleMesh` with watertightness/topology invariants.
"""

from __future__ import annotations

import numpy as np

from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import (
    count_active_cells,
    marching_cubes,
    marching_cubes_batch,
)
from repro.mc.surface_nets import surface_nets, surface_nets_batch
from repro.mc.backends import (
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
    validate_backend,
)
from repro.mc.marching_tets import marching_tets_generic, marching_tetrahedra
from repro.mc.mesh_io import read_obj, read_ply, write_obj, write_ply
from repro.mc.normals import isosurface_normals, sample_gradient, smooth_mesh_normals
from repro.mc.simplify import simplify_to_budget, simplify_vertex_clustering
from repro.mc.mesh_stream import StreamingMeshWriter, stream_isosurface_to_file


class MarchingCubes:
    """Object-style façade over :func:`marching_cubes` for volumes.

    Examples
    --------
    >>> from repro.grid.datasets import sphere_field
    >>> mc = MarchingCubes(sphere_field((16, 16, 16)))
    >>> mesh = mc.extract(0.5)
    >>> mesh.is_closed()
    True
    """

    def __init__(self, volume) -> None:
        self.volume = volume

    def extract(self, iso: float) -> TriangleMesh:
        return marching_cubes(
            self.volume.data, iso, origin=self.volume.origin, spacing=self.volume.spacing
        )

    def count_active_cells(self, iso: float) -> int:
        return count_active_cells(self.volume.data, iso)


def extract_isosurface(volume, iso: float) -> TriangleMesh:
    """Extract an isosurface directly from a :class:`~repro.grid.volume.Volume`."""
    return marching_cubes(
        np.asarray(volume.data), iso, origin=volume.origin, spacing=volume.spacing
    )


__all__ = [
    "TriangleMesh",
    "MarchingCubes",
    "marching_cubes",
    "marching_cubes_batch",
    "surface_nets",
    "surface_nets_batch",
    "KernelBackend",
    "DEFAULT_BACKEND",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "validate_backend",
    "marching_tetrahedra",
    "marching_tets_generic",
    "count_active_cells",
    "extract_isosurface",
    "write_obj",
    "read_obj",
    "write_ply",
    "read_ply",
    "isosurface_normals",
    "smooth_mesh_normals",
    "sample_gradient",
    "simplify_vertex_clustering",
    "simplify_to_budget",
    "StreamingMeshWriter",
    "stream_isosurface_to_file",
]
