"""Gradient-based surface normals for smooth shading.

Marching Cubes emits flat facets; high-quality isosurface rendering
derives per-vertex normals from the *scalar field's gradient* instead
(the true surface normal of an implicit surface).  This module samples
the trilinearly-interpolated central-difference gradient at arbitrary
world positions and orients it to match the mesh convention (normals
point toward the negative, ``value < iso``, side).
"""

from __future__ import annotations

import numpy as np


def volume_gradient(data: np.ndarray, spacing=(1.0, 1.0, 1.0)) -> np.ndarray:
    """Central-difference gradient, shape ``(nx, ny, nz, 3)``."""
    data = np.asarray(data, dtype=np.float64)
    gx, gy, gz = np.gradient(data, *[float(s) for s in spacing])
    return np.stack([gx, gy, gz], axis=-1)


def _trilinear(values: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Trilinear sampling of ``values[..., c]`` at fractional ``coords``.

    ``values``: (nx, ny, nz, C); ``coords``: (n, 3) in index units.
    """
    nx, ny, nz = values.shape[:3]
    c = np.clip(coords, 0.0, [nx - 1, ny - 1, nz - 1])
    i0 = np.minimum(c.astype(np.int64), [nx - 2, ny - 2, nz - 2])
    i0 = np.maximum(i0, 0)
    f = c - i0
    out = np.zeros((len(c), values.shape[3]))
    for dx in (0, 1):
        wx = f[:, 0] if dx else 1 - f[:, 0]
        for dy in (0, 1):
            wy = f[:, 1] if dy else 1 - f[:, 1]
            for dz in (0, 1):
                wz = f[:, 2] if dz else 1 - f[:, 2]
                w = (wx * wy * wz)[:, None]
                out += w * values[i0[:, 0] + dx, i0[:, 1] + dy, i0[:, 2] + dz]
    return out


def sample_gradient(
    data: np.ndarray,
    points: np.ndarray,
    spacing=(1.0, 1.0, 1.0),
    origin=(0.0, 0.0, 0.0),
) -> np.ndarray:
    """Interpolated field gradient at world-space ``points`` (n, 3)."""
    grad = volume_gradient(data, spacing)
    spacing = np.asarray(spacing, dtype=np.float64)
    origin = np.asarray(origin, dtype=np.float64)
    coords = (np.asarray(points, dtype=np.float64) - origin) / spacing
    return _trilinear(grad, coords)


def isosurface_normals(
    volume, points: np.ndarray, fallback: np.ndarray | None = None
) -> np.ndarray:
    """Unit normals at isosurface vertices, oriented toward ``< iso``.

    The field gradient points toward increasing values, so the normal is
    the *negated* normalized gradient — matching the winding convention
    of every extractor in :mod:`repro.mc`.  Where the gradient vanishes
    (flat regions), ``fallback`` normals (e.g. the mesh's area-weighted
    vertex normals) are substituted if provided, else +z.
    """
    g = sample_gradient(volume.data, points, volume.spacing, volume.origin)
    n = -g
    norms = np.linalg.norm(n, axis=1)
    bad = norms < 1e-12
    norms[bad] = 1.0
    n = n / norms[:, None]
    if bad.any():
        if fallback is not None:
            n[bad] = np.asarray(fallback)[bad]
        else:
            n[bad] = [0.0, 0.0, 1.0]
    return n


def smooth_mesh_normals(volume, mesh) -> np.ndarray:
    """Per-vertex smooth normals for a mesh extracted from ``volume``."""
    return isosurface_normals(volume, mesh.vertices, fallback=mesh.vertex_normals())
