"""Derivation of the Marching Cubes case tables.

Rather than embedding the classic hand-written 256-entry triangle table,
this module *derives* it at import time from first principles:

1. For each of the 256 sign configurations (bit ``i`` set iff vertex
   ``i`` has scalar > isovalue — the *positive* side), intersect the
   isosurface with each cube face.  On a face, crossing edges come in
   pairs forming *segments*; a face with four crossing edges (the
   ambiguous case) is resolved by the fixed rule **segments isolate the
   positive corners**.  The rule depends only on the face's corner
   signs, and a face shared by two cubes is seen with the same signs by
   both — therefore adjacent cubes always agree on the face polyline and
   the extracted surface is crack-free *by construction*.

2. Each segment is directed so the positive region lies to its left when
   viewed from outside the cube.  Every crossing point (one per crossing
   edge) then has exactly one incoming and one outgoing segment, so the
   segments decompose into directed cycles: the boundary polygons of the
   isosurface patch inside the cube.

3. Each cycle is fan-triangulated.  Cycles are emitted in reversed
   order so that triangle normals (right-hand rule) point toward the
   *negative* side (scalar < isovalue) — the conventional outward
   normal for density-like data.

The construction is validated exhaustively at import (every crossing
edge used exactly once as segment source and once as target in every
case) and statistically in the test suite (closed meshes, Euler
characteristics, agreement with marching tetrahedra).

Cube conventions (the standard Lorensen–Cline numbering):

* vertices: v0=(0,0,0) v1=(1,0,0) v2=(1,1,0) v3=(0,1,0)
            v4=(0,0,1) v5=(1,0,1) v6=(1,1,1) v7=(0,1,1)
* edges:    e0=01 e1=12 e2=23 e3=30 e4=45 e5=56 e6=67 e7=74
            e8=04 e9=15 e10=26 e11=37
"""

from __future__ import annotations

import numpy as np

#: Unit-cube vertex coordinates, indexed by vertex id.
CORNERS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [1, 1, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [1, 1, 1],
        [0, 1, 1],
    ],
    dtype=np.float64,
)

#: The 12 cube edges as (vertex, vertex) pairs.
EDGE_VERTICES = np.array(
    [
        [0, 1],
        [1, 2],
        [2, 3],
        [3, 0],
        [4, 5],
        [5, 6],
        [6, 7],
        [7, 4],
        [0, 4],
        [1, 5],
        [2, 6],
        [3, 7],
    ],
    dtype=np.int64,
)

#: For each local edge: 0 = x-aligned, 1 = y-aligned, 2 = z-aligned.
EDGE_AXIS = np.array([0, 1, 0, 1, 0, 1, 0, 1, 2, 2, 2, 2], dtype=np.int64)

#: For each local edge: the cell-relative (di, dj, dk) of the lattice edge
#: it maps to.  An x-edge at (di,dj,dk) joins vertices (i+di, j+dj, k+dk)
#: and (i+di+1, j+dj, k+dk), and similarly for y/z families.
EDGE_CELL_OFFSET = np.array(
    [
        [0, 0, 0],  # e0: x-edge
        [1, 0, 0],  # e1: y-edge
        [0, 1, 0],  # e2: x-edge
        [0, 0, 0],  # e3: y-edge
        [0, 0, 1],  # e4: x-edge
        [1, 0, 1],  # e5: y-edge
        [0, 1, 1],  # e6: x-edge
        [0, 0, 1],  # e7: y-edge
        [0, 0, 0],  # e8: z-edge
        [1, 0, 0],  # e9: z-edge
        [1, 1, 0],  # e10: z-edge
        [0, 1, 0],  # e11: z-edge
    ],
    dtype=np.int64,
)

_EDGE_BY_PAIR = {
    frozenset(pair.tolist()): eid for eid, pair in enumerate(EDGE_VERTICES)
}

_EDGE_MIDPOINTS = 0.5 * (CORNERS[EDGE_VERTICES[:, 0]] + CORNERS[EDGE_VERTICES[:, 1]])


def _face_descriptions():
    """The six faces: outward normal + corner cycle CCW from outside."""
    faces = []
    for axis in range(3):
        for side in (0, 1):
            normal = np.zeros(3)
            normal[axis] = 1.0 if side == 1 else -1.0
            ids = [v for v in range(8) if CORNERS[v][axis] == side]
            center = CORNERS[ids].mean(axis=0)
            # In-plane basis (u, v) with u x v = outward normal.
            u = np.zeros(3)
            u[(axis + 1) % 3] = 1.0
            v = np.cross(normal, u)
            ang = [
                np.arctan2(np.dot(CORNERS[c] - center, v), np.dot(CORNERS[c] - center, u))
                for c in ids
            ]
            cyc = [c for _, c in sorted(zip(ang, ids))]
            edges = [
                _EDGE_BY_PAIR[frozenset((cyc[i], cyc[(i + 1) % 4]))] for i in range(4)
            ]
            faces.append((normal, cyc, edges))
    return faces


_FACES = _face_descriptions()


def _face_segments(case: int, normal, cyc, edges):
    """Directed segments (from_edge, to_edge) of one face for one case."""
    pos = [(case >> c) & 1 == 1 for c in cyc]
    crossings = [i for i in range(4) if pos[i] != pos[(i + 1) % 4]]
    if not crossings:
        return []

    def orient(e_a: int, e_b: int, q_corner: int):
        """Direct segment a->b so corner ``q_corner`` (positive) is on the
        left when viewed from outside; returns the directed pair."""
        p_a, p_b = _EDGE_MIDPOINTS[e_a], _EDGE_MIDPOINTS[e_b]
        left = np.cross(normal, p_b - p_a)
        s = np.dot(left, CORNERS[q_corner] - p_a)
        if s == 0:  # pragma: no cover - impossible on the unit cube
            raise AssertionError(f"degenerate face segment in case {case}")
        return (e_a, e_b) if s > 0 else (e_b, e_a)

    if len(crossings) == 2:
        i, j = crossings
        q = cyc[[k for k in range(4) if pos[k]][0]]
        return [orient(edges[i], edges[j], q)]

    # Four crossings: alternating signs; isolate each positive corner.
    segs = []
    for k in range(4):
        if pos[k]:
            e_prev = edges[(k - 1) % 4]  # edge between corners k-1 and k
            e_next = edges[k]  # edge between corners k and k+1
            segs.append(orient(e_prev, e_next, cyc[k]))
    return segs


def _case_cycles(case: int) -> "list[list[int]]":
    """Directed boundary cycles (lists of local edge ids) for one case."""
    segments = []
    for normal, cyc, edges in _FACES:
        segments.extend(_face_segments(case, normal, cyc, edges))
    if not segments:
        return []
    nxt: dict[int, int] = {}
    indeg: dict[int, int] = {}
    for a, b in segments:
        if a in nxt:
            raise AssertionError(f"case {case}: edge {a} has two outgoing segments")
        nxt[a] = b
        indeg[b] = indeg.get(b, 0) + 1
    if set(nxt) != set(indeg) or any(v != 1 for v in indeg.values()):
        raise AssertionError(f"case {case}: segment graph is not a union of cycles")

    cycles = []
    remaining = set(nxt)
    while remaining:
        start = min(remaining)
        cyc = [start]
        cur = nxt[start]
        while cur != start:
            cyc.append(cur)
            cur = nxt[cur]
        remaining.difference_update(cyc)
        if len(cyc) < 3:
            raise AssertionError(f"case {case}: degenerate cycle {cyc}")
        cycles.append(cyc)
    return cycles


#: face id sets per edge: which of the 6 faces contain each cube edge.
_EDGE_FACES: "list[set[int]]" = [set() for _ in range(12)]
for _fid, (_n, _cyc, _edges) in enumerate(_FACES):
    for _e in _edges:
        _EDGE_FACES[_e].add(_fid)


def _pick_fan_origin(cycle: "list[int]") -> "list[int]":
    """Rotate ``cycle`` so that fan triangulation from its first element
    introduces no diagonal between two crossing points on a common cube
    face.  Such a diagonal would produce a triangle lying *in* the face
    plane — geometrically degenerate and overlapping the neighbouring
    cube's patch (a non-manifold fold).  A valid rotation exists for all
    256 cases (asserted at import)."""
    k = len(cycle)
    for r in range(k):
        rc = cycle[r:] + cycle[:r]
        ok = True
        for i in range(2, k - 1):  # diagonals (rc[0], rc[i])
            if _EDGE_FACES[rc[0]] & _EDGE_FACES[rc[i]]:
                ok = False
                break
        if ok:
            return rc
    raise AssertionError(f"no coplanarity-free fan origin for cycle {cycle}")


def _build_tables():
    """Derive the 256-case triangle table.  Runs once at import."""
    tri_lists = []
    for case in range(256):
        tris = []
        for cyc in _case_cycles(case):
            # Reverse so right-hand-rule normals point toward the
            # negative (scalar < iso) side, then pick a fan origin that
            # keeps every triangle strictly interior to the cube.
            rc = _pick_fan_origin(cyc[::-1])
            for i in range(1, len(rc) - 1):
                tris.append((rc[0], rc[i], rc[i + 1]))
        tri_lists.append(tris)

    n_tri = np.array([len(t) for t in tri_lists], dtype=np.int64)
    max_tri = int(n_tri.max())
    padded = np.full((256, max_tri, 3), -1, dtype=np.int64)
    for case, tris in enumerate(tri_lists):
        for t, tri in enumerate(tris):
            padded[case, t] = tri
    return tri_lists, n_tri, padded


#: ``TRI_TABLE[case]`` — list of (edge, edge, edge) triples for the case.
#: ``N_TRI[case]`` — triangle count per case.
#: ``TRI_TABLE_PADDED`` — ``(256, MAX_TRI, 3)`` int array, -1 padded, for
#: vectorized gathering.
TRI_TABLE, N_TRI, TRI_TABLE_PADDED = _build_tables()

MAX_TRI = TRI_TABLE_PADDED.shape[1]

#: Edges referenced by each case, as a 12-bit mask (for tests/analysis).
EDGE_MASK = np.zeros(256, dtype=np.int64)
for _case, _tris in enumerate(TRI_TABLE):
    m = 0
    for _t in _tris:
        for _e in _t:
            m |= 1 << _e
    EDGE_MASK[_case] = m
