"""End-to-end serial façade: the paper's single-node pipeline.

:class:`IsosurfacePipeline` wires the whole stack together for the common
case — preprocess a volume once, then extract (and optionally render)
isosurfaces out-of-core at interactive cadence:

    volume -> metacells -> compact interval tree + brick layout
           -> query(lam) -> active metacells -> Marching Cubes -> mesh
           -> rasterize -> image

For multi-node execution use
:class:`repro.parallel.cluster.SimulatedCluster`, which shares all the
same pieces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.builder import IndexedDataset, build_indexed_dataset
from repro.core.query import QueryResult, execute_query
from repro.grid.volume import Volume
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch
from repro.parallel.metrics import NodeMetrics
from repro.parallel.perfmodel import PAPER_CLUSTER, PerformanceModel
from repro.render.camera import Camera
from repro.render.rasterizer import Framebuffer, render_mesh, render_mesh_smooth


@dataclass
class ExtractionResult:
    """One isosurface extraction: geometry plus full accounting."""

    lam: float
    mesh: TriangleMesh
    query: QueryResult
    metrics: NodeMetrics
    image: "Framebuffer | None" = None

    @property
    def n_active_metacells(self) -> int:
        return self.query.n_active

    @property
    def n_triangles(self) -> int:
        return self.mesh.n_triangles


class IsosurfacePipeline:
    """Preprocess once, query many times — the serial algorithm.

    Examples
    --------
    >>> from repro.grid.datasets import sphere_field
    >>> pipe = IsosurfacePipeline.from_volume(
    ...     sphere_field((24, 24, 24)), metacell_shape=(5, 5, 5))
    >>> res = pipe.extract(0.5)
    >>> res.mesh.weld().is_closed()
    True
    """

    def __init__(self, dataset: IndexedDataset, perf: PerformanceModel = PAPER_CLUSTER) -> None:
        self.dataset = dataset
        self.perf = perf

    @classmethod
    def from_volume(
        cls,
        volume: Volume,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        device=None,
        perf: PerformanceModel = PAPER_CLUSTER,
    ) -> "IsosurfacePipeline":
        dataset = build_indexed_dataset(
            volume, metacell_shape, device=device, cost_model=perf.disk
        )
        return cls(dataset, perf)

    @property
    def report(self):
        """Preprocessing statistics (metacell counts, index size, ...)."""
        return self.dataset.report

    def extract(
        self,
        lam: float,
        render: bool = False,
        camera: Camera | None = None,
        image_size: tuple[int, int] = (512, 512),
        smooth: bool = False,
        options=None,
    ) -> ExtractionResult:
        """Run the out-of-core query and triangulate the result.

        With ``render=True`` the mesh is also rasterized (auto-framed
        unless a camera is given) and the result carries the image;
        ``smooth=True`` uses Gouraud shading from payload-local gradient
        normals instead of flat facets.

        ``options`` (a :class:`repro.core.query.QueryOptions`) tunes the
        query stage — read coalescing via ``coalesce_gap_blocks``,
        deadlines, tracing — and the triangulation stage: ``backend``
        selects the extraction kernel through
        :mod:`repro.mc.backends`, ``batch_chunk`` sizes its vectorized
        passes, and the ``pipeline`` field
        (:class:`repro.parallel.pipeline.PipelineOptions`) routes
        pipeline-capable backends through the stage-overlapped
        shared-memory executor.  With the default exact backend every
        combination returns bit-identical geometry and identical modeled
        I/O charges; only wall time differs.
        """
        t0 = time.perf_counter()
        qr = (
            execute_query(self.dataset, lam, options)
            if options is not None
            else execute_query(self.dataset, lam)
        )
        codec = self.dataset.codec
        meta = self.dataset.meta
        normals = None
        pipeline = getattr(options, "pipeline", None)
        backend = getattr(options, "backend", "mc-batch")
        batch_chunk = getattr(options, "batch_chunk", None)
        if qr.n_active:
            if pipeline is not None:
                from repro.obs.tracer import coerce_tracer
                from repro.parallel.pipeline import pipelined_marching_cubes

                out = pipelined_marching_cubes(
                    codec.values_grid(qr.records),
                    lam,
                    meta.vertex_origins(qr.records.ids),
                    spacing=meta.spacing,
                    world_origin=meta.origin,
                    with_normals=smooth,
                    options=pipeline,
                    tracer=coerce_tracer(getattr(options, "tracer", None)),
                    track=getattr(options, "track", None),
                    backend=backend,
                    batch_chunk=batch_chunk,
                )
            else:
                from repro.mc.backends import get_backend
                from repro.mc.marching_cubes import DEFAULT_BATCH_CHUNK

                out = get_backend(backend).batch(
                    codec.values_grid(qr.records),
                    lam,
                    meta.vertex_origins(qr.records.ids),
                    spacing=meta.spacing,
                    world_origin=meta.origin,
                    chunk=(
                        DEFAULT_BATCH_CHUNK if batch_chunk is None
                        else batch_chunk
                    ),
                    with_normals=smooth,
                )
            mesh, normals = out if smooth else (out, None)
        else:
            mesh = TriangleMesh()
        measured = time.perf_counter() - t0

        cells_per_metacell = int(np.prod([m - 1 for m in codec.metacell_shape]))
        metrics = NodeMetrics(node_rank=0)
        metrics.n_active_metacells = qr.n_active
        metrics.n_cells_examined = qr.n_active * cells_per_metacell
        metrics.n_triangles = mesh.n_triangles
        metrics.io_stats = qr.io_stats
        metrics.io_time = self.perf.io_time(qr.io_stats)
        metrics.triangulation_time = self.perf.cpu.triangulation_time(
            metrics.n_cells_examined, metrics.n_triangles
        )
        w, h = image_size
        metrics.render_time = self.perf.gpu.render_time(mesh.n_triangles, w * h * 16)
        metrics.measured_seconds = measured

        image = None
        if render and mesh.n_triangles:
            cam = camera or Camera.fit_mesh(mesh)
            image = Framebuffer(w, h)
            if smooth and normals is not None:
                render_mesh_smooth(image, mesh, cam, normals)
            else:
                render_mesh(image, mesh, cam)
        return ExtractionResult(
            lam=float(lam), mesh=mesh, query=qr, metrics=metrics, image=image
        )

    def isovalue_range(self) -> tuple[float, float]:
        """Span of isovalues with any active metacell."""
        tree = self.dataset.tree
        if len(tree.endpoints) == 0:
            raise ValueError("dataset has no non-constant metacells")
        return float(tree.endpoints[0]), float(tree.endpoints[-1])

    def extract_many(self, lams, backend: str = "mc-batch",
                     ) -> "dict[float, TriangleMesh]":
        """Extract several isovalues with one shared pass over the disk.

        Records shared by nearby isovalues are read once
        (:func:`repro.core.multi_query.execute_multi_query`); each
        isovalue is then triangulated from its own active subset by the
        requested extraction ``backend``.
        """
        from repro.core.multi_query import execute_multi_query
        from repro.mc.backends import get_backend

        bk = get_backend(backend)
        multi = execute_multi_query(self.dataset, lams)
        meta = self.dataset.meta
        codec = self.dataset.codec
        out: dict[float, TriangleMesh] = {}
        for lam in multi.lams:
            records = multi.records_for(lam)
            if len(records):
                out[lam] = bk.batch(
                    codec.values_grid(records),
                    lam,
                    meta.vertex_origins(records.ids),
                    spacing=meta.spacing,
                    world_origin=meta.origin,
                )
            else:
                out[lam] = TriangleMesh()
        return out

    def extract_roi(self, lam: float, box_lo, box_hi):
        """Extract only the surface inside a world-space box; see
        :func:`repro.core.multi_query.extract_region_of_interest`."""
        from repro.core.multi_query import extract_region_of_interest

        return extract_region_of_interest(self.dataset, lam, box_lo, box_hi)

    def estimate_cost(self, lam: float):
        """Predict the I/O bill of :meth:`extract` without touching disk;
        see :func:`repro.core.analysis.estimate_query_cost`."""
        from repro.core.analysis import estimate_query_cost

        return estimate_query_cost(
            self.dataset.tree,
            lam,
            self.dataset.codec.record_size,
            self.dataset.device.cost_model,
            self.dataset.base_offset,
        )

    def suggest_isovalues(self, selectivities=(0.01, 0.05, 0.25, 0.5)):
        """Representative isovalues at the requested selectivity levels;
        see :func:`repro.core.analysis.suggest_isovalues`."""
        from repro.core.analysis import suggest_isovalues

        return suggest_isovalues(self.dataset.tree, selectivities)
