"""On-disk metacell record format (paper Section 7, preprocessing).

Each metacell is stored as one fixed-size record::

    +------------+---------------+----------------------------------+
    | id: uint32 | vmin: scalar  | vertex scalars, predefined order |
    +------------+---------------+----------------------------------+

For the Richtmyer–Meshkov configuration of the paper (9x9x9 one-byte
metacells) this is exactly 4 + 1 + 729 = 734 bytes per record.  The
``vmax`` of a metacell is *not* stored in the record: all records in one
brick share their ``vmax``, which lives in the index entry — this is part
of what makes the compact layout compact.

Records are fixed-size so a query can read a brick prefix block by block
and decode incrementally, stopping at the first record whose ``vmin``
exceeds the isovalue (Case 2 of the query algorithm) without knowing the
record count in advance.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


@dataclass
class MetacellRecords:
    """A decoded batch of metacell records.

    Attributes
    ----------
    ids:
        ``uint32`` array of metacell ids (row-major metacell-grid index).
    vmins:
        Per-record minimum scalar value (same dtype as the field).
    values:
        ``(n, m0*m1*m2)`` array of vertex scalars in predefined
        (C row-major) order.
    """

    ids: np.ndarray
    vmins: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.ids)

    @staticmethod
    def empty(codec: "MetacellCodec") -> "MetacellRecords":
        return MetacellRecords(
            ids=np.empty(0, dtype=np.uint32),
            vmins=np.empty(0, dtype=codec.scalar_dtype),
            values=np.empty((0, codec.values_per_record), dtype=codec.scalar_dtype),
        )

    @staticmethod
    def concat(batches: "list[MetacellRecords]") -> "MetacellRecords":
        if not batches:
            raise ValueError("cannot concatenate zero batches (codec unknown)")
        return MetacellRecords(
            ids=np.concatenate([b.ids for b in batches]),
            vmins=np.concatenate([b.vmins for b in batches]),
            values=np.concatenate([b.values for b in batches]),
        )


class MetacellCodec:
    """Encoder/decoder for fixed-size metacell records.

    Parameters
    ----------
    metacell_shape:
        Vertex dimensions of a metacell, e.g. ``(9, 9, 9)``.
    scalar_dtype:
        Numpy dtype of the scalar field (uint8, uint16, float32, ...).
    """

    def __init__(
        self,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        scalar_dtype: np.dtype | type = np.uint8,
    ) -> None:
        if len(metacell_shape) != 3 or any(int(s) < 2 for s in metacell_shape):
            raise ValueError(
                f"metacell_shape must be 3 dims of >= 2 vertices, got {metacell_shape}"
            )
        self.metacell_shape = tuple(int(s) for s in metacell_shape)
        self._init_record(int(np.prod(self.metacell_shape)), scalar_dtype)

    def _init_record(self, values_per_record: int, scalar_dtype) -> None:
        self.scalar_dtype = np.dtype(scalar_dtype)
        self.values_per_record = int(values_per_record)
        self._record_dtype = np.dtype(
            [
                ("id", "<u4"),
                ("vmin", self.scalar_dtype.newbyteorder("<")),
                ("values", self.scalar_dtype.newbyteorder("<"), (self.values_per_record,)),
            ]
        )

    @classmethod
    def flat(
        cls, values_per_record: int, scalar_dtype: np.dtype | type
    ) -> "MetacellCodec":
        """A codec over flat payloads of ``values_per_record`` scalars with
        no grid interpretation — used by the unstructured-grid pipeline,
        where a record holds a cluster of denormalized tetrahedra rather
        than a vertex grid.  :meth:`values_grid` is unavailable."""
        if values_per_record < 1:
            raise ValueError(f"values_per_record must be >= 1, got {values_per_record}")
        codec = cls.__new__(cls)
        codec.metacell_shape = None  # type: ignore[assignment]
        codec._init_record(values_per_record, scalar_dtype)
        return codec

    @property
    def record_size(self) -> int:
        """Bytes per record (734 for the paper's 9x9x9 uint8 metacells)."""
        return self._record_dtype.itemsize

    def encode(self, ids: np.ndarray, vmins: np.ndarray, values: np.ndarray) -> bytes:
        """Serialize a batch of records.

        ``values`` may be ``(n, m0, m1, m2)`` or already flattened to
        ``(n, m0*m1*m2)``.
        """
        n = len(ids)
        values = np.asarray(values).reshape(n, self.values_per_record)
        if len(vmins) != n or len(values) != n:
            raise ValueError(
                f"length mismatch: {n} ids, {len(vmins)} vmins, {len(values)} value rows"
            )
        out = np.empty(n, dtype=self._record_dtype)
        out["id"] = ids
        out["vmin"] = vmins
        out["values"] = values
        return out.tobytes()

    def decode(self, buf) -> MetacellRecords:
        """Decode all complete records contained in ``buf``.

        ``buf`` may be any C-contiguous buffer object (``bytes``,
        ``bytearray``, ``memoryview``) — the record stream is viewed in
        place via ``np.frombuffer`` and only the decoded field arrays
        are materialized, so callers can hand in live views of a read
        buffer without an intermediate ``bytes`` copy.

        Trailing bytes that do not form a complete record are ignored —
        this is what allows incremental, block-granular brick reads.
        """
        n = len(buf) // self.record_size
        arr = np.frombuffer(buf, dtype=self._record_dtype, count=n)
        return MetacellRecords(
            ids=arr["id"].copy(),
            vmins=arr["vmin"].copy(),
            values=arr["values"].copy(),
        )

    def decode_vmins(self, buf) -> np.ndarray:
        """Zero-copy strided view of the ``vmin`` column of ``buf``.

        Used by the Case-2 early-stop scan: deciding *where* to stop
        only needs vmins, so the scan peeks at this view and defers full
        decoding until the stop point is known.  The view aliases
        ``buf`` — read it before the buffer is recycled.
        """
        n = len(buf) // self.record_size
        return np.frombuffer(buf, dtype=self._record_dtype, count=n)["vmin"]

    def decode_count(self, buf) -> int:
        """Number of complete records in ``buf``."""
        return len(buf) // self.record_size

    def record_crcs(self, blob: bytes) -> np.ndarray:
        """CRC32 of every complete record in ``blob`` (layout order).

        Trailing partial-record bytes are ignored, mirroring
        :meth:`decode`.
        """
        return compute_record_crcs(blob, self.record_size)

    def values_grid(self, records: MetacellRecords) -> np.ndarray:
        """Reshape decoded values back to ``(n, m0, m1, m2)`` grids."""
        if self.metacell_shape is None:
            raise TypeError("flat codec payloads have no grid interpretation")
        n = len(records)
        return records.values.reshape((n, *self.metacell_shape))


# ---------------------------------------------------------------------------
# Checksums
# ---------------------------------------------------------------------------


def _make_crc32_tables() -> np.ndarray:
    """Slicing-by-4 lookup tables for the reflected CRC-32 (poly
    0xEDB88320) that :func:`zlib.crc32` implements.

    ``tables[0]`` is the classic byte-at-a-time table; ``tables[k]`` is
    the k-bytes-ahead variant, letting one vectorized pass consume four
    input bytes per iteration.
    """
    t0 = np.empty(256, dtype=np.uint32)
    for b in range(256):
        c = b
        for _ in range(8):
            c = (c >> 1) ^ 0xEDB88320 if c & 1 else c >> 1
        t0[b] = c
    tables = np.empty((4, 256), dtype=np.uint32)
    tables[0] = t0
    for k in range(1, 4):
        prev = tables[k - 1]
        tables[k] = (prev >> np.uint32(8)) ^ t0[prev & np.uint32(0xFF)]
    return tables


_CRC_TABLES = _make_crc32_tables()

#: Below this many records the per-record ``zlib.crc32`` loop beats the
#: column-wise vectorized pass (each vector iteration touches every
#: record, so small batches pay full table-gather cost per byte).
VECTOR_CRC_MIN_RECORDS = 1024

#: Records wider than this verify faster through the per-record
#: ``zlib.crc32`` loop: the vectorized kernel's cost grows with
#: ``record_size`` (one numpy table-gather pass per 4 byte columns)
#: while zlib's C loop runs at memory speed, so past ~64 bytes the
#: column passes cost more than the interpreter overhead they save.
#: Measured crossover on the reference container: 2-7x wins at 8-32
#: bytes, ~1.3x at 64, below parity from 128 up.
VECTOR_CRC_MAX_RECORD_SIZE = 64


def _vectorized_record_crcs(view: np.ndarray, record_size: int) -> np.ndarray:
    """CRC32 of every row of an ``(n, record_size)`` uint8 matrix.

    Column-wise slicing-by-4: each iteration folds four bytes of *all*
    records into the running CRC vector, so total Python-level work is
    ``record_size / 4`` numpy passes instead of ``n`` interpreter-loop
    iterations.  Bit-identical to ``zlib.crc32`` per record.
    """
    t0, t1, t2, t3 = _CRC_TABLES
    n4 = record_size // 4
    words = np.ascontiguousarray(view[:, : n4 * 4]).view("<u4")
    crc = np.full(len(view), 0xFFFFFFFF, dtype=np.uint32)
    mask = np.uint32(0xFF)
    for i in range(n4):
        crc ^= words[:, i]
        crc = (
            t3[crc & mask]
            ^ t2[(crc >> np.uint32(8)) & mask]
            ^ t1[(crc >> np.uint32(16)) & mask]
            ^ t0[crc >> np.uint32(24)]
        )
    for j in range(n4 * 4, record_size):
        crc = (crc >> np.uint32(8)) ^ t0[(crc ^ view[:, j]) & mask]
    return crc ^ np.uint32(0xFFFFFFFF)


def compute_record_crcs(blob, record_size: int) -> np.ndarray:
    """CRC32 of each complete ``record_size``-byte record in ``blob``.

    Large batches of *narrow* records go through the vectorized
    column-wise pass; everything else keeps the per-record
    ``zlib.crc32`` loop, which is faster for wide records (see
    :data:`VECTOR_CRC_MAX_RECORD_SIZE`).  Both produce the same values.
    """
    if record_size < 1:
        raise ValueError(f"record_size must be >= 1, got {record_size}")
    view = memoryview(blob)
    n = len(view) // record_size
    if n >= VECTOR_CRC_MIN_RECORDS and 4 <= record_size <= VECTOR_CRC_MAX_RECORD_SIZE:
        rows = np.frombuffer(view, dtype=np.uint8, count=n * record_size)
        return _vectorized_record_crcs(rows.reshape(n, record_size), record_size)
    out = np.empty(n, dtype=np.uint32)
    for i in range(n):
        out[i] = zlib.crc32(view[i * record_size : (i + 1) * record_size])
    return out


def compute_cum_crcs(blob, record_size: int, initial: int = 0) -> np.ndarray:
    """Cumulative CRC32 table over the record stream in ``blob``.

    ``out[p]`` is the CRC32 of records ``[0, p)`` continued from
    ``initial`` (the running CRC of everything before ``blob``), so the
    whole table for a chunked layout write is built by threading
    ``out[-1]`` into the next chunk's ``initial``.  The table turns span
    verification into a single C call: the bytes of records ``[a, b)``
    are intact iff ``zlib.crc32(span, out[a]) == out[b]``.
    """
    if record_size < 1:
        raise ValueError(f"record_size must be >= 1, got {record_size}")
    view = memoryview(blob)
    n = len(view) // record_size
    out = np.empty(n + 1, dtype=np.uint32)
    c = initial & 0xFFFFFFFF
    out[0] = c
    for p in range(n):
        c = zlib.crc32(view[p * record_size : (p + 1) * record_size], c)
        out[p + 1] = c
    return out


@dataclass
class BrickChecksums:
    """Integrity metadata for one node's brick layout (format version 2).

    Two levels, both CRC32:

    * ``record_crcs[p]`` — checksum of the record at layout position
      ``p``.  Verified by the query executor on every decoded record, so
      a torn or bit-flipped record surfaces as a typed
      ``BrickCorruptionError`` instead of being triangulated silently.
    * ``brick_crcs[b]`` — checksum *of the record-CRC slice* of brick
      ``b`` (little-endian uint32 bytes).  A compact whole-brick rollup
      used by ``repro verify`` without rehashing payload bytes twice.

    Optionally a third, redundant table:

    * ``cum_crcs[p]`` — CRC32 of the concatenated record bytes
      ``[0, p)`` (length ``n_records + 1``, ``cum_crcs[0] == 0``).
      Lets :meth:`verify_span` validate an arbitrary record span with
      one ``zlib.crc32`` call instead of one per record; the per-record
      table is only consulted when that fast check fails and the
      corrupt record must be located.

    All arrays live in the in-memory index (persisted in ``index.npz``),
    not in the record stream — record size and the paper's layout
    arithmetic are unchanged, and a prefix read can verify exactly the
    records it decoded.
    """

    record_crcs: np.ndarray
    brick_crcs: np.ndarray
    cum_crcs: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        self.record_crcs = np.ascontiguousarray(self.record_crcs, dtype=np.uint32)
        self.brick_crcs = np.ascontiguousarray(self.brick_crcs, dtype=np.uint32)
        if self.cum_crcs is not None:
            self.cum_crcs = np.ascontiguousarray(self.cum_crcs, dtype=np.uint32)
            if len(self.cum_crcs) != len(self.record_crcs) + 1:
                raise ValueError(
                    f"cum_crcs must have n_records + 1 entries, got "
                    f"{len(self.cum_crcs)} for {len(self.record_crcs)} records"
                )

    @classmethod
    def from_record_crcs(
        cls,
        record_crcs: np.ndarray,
        brick_start: np.ndarray,
        brick_count: np.ndarray,
        cum_crcs: "np.ndarray | None" = None,
    ) -> "BrickChecksums":
        """Roll per-record CRCs up into per-brick CRCs."""
        record_crcs = np.ascontiguousarray(record_crcs, dtype=np.uint32)
        le = record_crcs.astype("<u4")
        brick_crcs = np.empty(len(brick_start), dtype=np.uint32)
        for b in range(len(brick_start)):
            s, c = int(brick_start[b]), int(brick_count[b])
            brick_crcs[b] = zlib.crc32(le[s : s + c].tobytes())
        return cls(record_crcs=record_crcs, brick_crcs=brick_crcs,
                   cum_crcs=cum_crcs)

    @property
    def n_records(self) -> int:
        return len(self.record_crcs)

    def verify_span(self, start_pos: int, buf, record_size: int) -> "bool | None":
        """Fast whole-span check of the complete records in ``buf``.

        Returns ``True``/``False`` when the cumulative table is present
        (one ``zlib.crc32`` over the span), ``None`` when it is not and
        the caller must fall back to per-record comparison.
        """
        if self.cum_crcs is None:
            return None
        view = memoryview(buf)
        n = len(view) // record_size
        end_pos = start_pos + n
        if end_pos >= len(self.cum_crcs):
            raise ValueError(
                f"checksum table holds {self.n_records} records; cannot verify "
                f"[{start_pos}, {end_pos})"
            )
        got = zlib.crc32(view[: n * record_size], int(self.cum_crcs[start_pos]))
        return got == int(self.cum_crcs[end_pos])

    def find_corrupt(self, start_pos: int, buf, record_size: int) -> np.ndarray:
        """Indices (relative to ``start_pos``) of records in ``buf`` whose
        CRC32 disagrees with the table."""
        got = compute_record_crcs(buf, record_size)
        expected = self.record_crcs[start_pos : start_pos + len(got)]
        if len(expected) != len(got):
            raise ValueError(
                f"checksum table holds {self.n_records} records; cannot verify "
                f"[{start_pos}, {start_pos + len(got)})"
            )
        return np.flatnonzero(got != expected)

    def verify_brick(self, brick_id: int, start: int, count: int) -> bool:
        """Check one brick's rollup CRC against its record-CRC slice."""
        le = self.record_crcs[start : start + count].astype("<u4")
        return int(self.brick_crcs[brick_id]) == zlib.crc32(le.tobytes())
