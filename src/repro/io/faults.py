"""Deterministic fault injection for block devices.

The paper assumes ``p`` healthy local disks and a perfect interconnect;
production storage does not cooperate.  This module provides the fault
model for the resilience subsystem:

* :class:`FaultPlan` — a seeded, fully deterministic description of the
  faults a device should exhibit: transient read errors (succeed on
  retry), silent payload corruption (caught by the per-brick CRC32
  checksums of :mod:`repro.io.layout`), latency spikes (extra modeled
  seconds fed into :class:`~repro.io.blockdevice.IOStats`), and
  permanent device loss.
* :class:`FaultInjectingDevice` — a wrapper implementing the
  :class:`~repro.io.blockdevice.BlockDevice` protocol that executes a
  fault plan against any backing device.
* :class:`RetryPolicy` / :func:`read_with_retry` — the bounded
  retry-with-backoff used by the query read path; retry costs (repeat
  blocks, modeled backoff seconds) are accounted in the device's
  ``IOStats`` so degraded runs report honest modeled times.

The typed exception hierarchy (all rooted at :class:`StorageFault`,
itself an ``IOError``) is what lets the cluster layer distinguish "retry
this read" from "this node is gone" — see
:meth:`repro.parallel.cluster.SimulatedCluster.extract` degraded mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.io.blockdevice import IOStats
from repro.io.cost_model import IOCostModel, latency_quantile
from repro.obs.tracer import NULL_TRACER


class StorageFault(IOError):
    """Base class for every injected or detected storage failure."""


class TornWriteError(StorageFault):
    """A write was torn: only a prefix of the payload reached the media."""


class TransientReadError(StorageFault):
    """A read attempt failed but the same extent may succeed on retry."""


class RetryExhaustedError(StorageFault):
    """Retries of a transiently failing read exceeded the policy bound."""


class DeviceFailedError(StorageFault):
    """The device is permanently gone (node loss); retrying is futile."""


class BrickCorruptionError(StorageFault):
    """Decoded record bytes failed CRC32 verification after re-reads."""


class SimulatedCrash(BaseException):
    """A process kill injected at a :class:`CrashSchedule` point.

    Deliberately *not* a :class:`StorageFault` (nor even an
    ``Exception``): a killed process does not flow through recovery
    code, so no ``except Exception`` handler in the write path may
    absorb it.  Only the crash-kill harness catches it, exactly where a
    supervising test would observe the process exit.
    """

    def __init__(self, point: str) -> None:
        super().__init__(point)
        self.point = point


@dataclass
class CrashSchedule:
    """Deterministic process-kill injection for the build write path.

    The journaled builder calls :meth:`point` at every durability
    decision point (after a group write, around each commit rename,
    ...).  The schedule counts the points; when the counter passes
    ``kill_at`` it raises :class:`SimulatedCrash`, simulating a
    ``SIGKILL`` at exactly that instruction boundary.  Running a build
    with ``kill_at=None`` counts the points without killing, which is
    how the harness discovers the kill-point space before randomizing
    over it.

    Parameters
    ----------
    kill_at:
        Zero-based index of the crash point to die at (``None``: never).
    hard:
        When True the scheduled point calls ``os._exit(137)`` instead of
        raising — a true process kill with no unwinding, for harness
        runs that fork the builder into a child process.
    """

    kill_at: "int | None" = None
    hard: bool = False
    #: Points visited so far (doubles as the total after a survived run).
    points_seen: int = 0
    #: Name of the point the crash fired at, for harness reporting.
    fired_at: "str | None" = None
    #: Ordered names of every point visited (labels the kill-point space).
    trace: "list[str]" = field(default_factory=list)

    def point(self, name: str) -> None:
        """Visit a named crash point; dies here when scheduled to."""
        idx = self.points_seen
        self.points_seen += 1
        self.trace.append(name)
        if self.kill_at is not None and idx == self.kill_at:
            self.fired_at = name
            if self.hard:  # pragma: no cover - exits the process
                import os

                os._exit(137)
            raise SimulatedCrash(name)


#: Shared no-op schedule used when the caller injects no crashes.
class _NullCrashSchedule:
    __slots__ = ()

    def point(self, name: str) -> None:
        return None


NULL_CRASH_SCHEDULE = _NullCrashSchedule()


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seeded description of a device's misbehaviour.

    All probabilistic draws come from ``random.Random(seed)`` advanced
    once per read call, so a fixed sequence of reads injects a fixed
    sequence of faults — runs are reproducible and tests can assert
    exact outcomes.

    Parameters
    ----------
    seed:
        RNG seed; two devices with equal plans fault identically.
    transient_error_rate:
        Per-read probability of raising :class:`TransientReadError`.
    transient_burst:
        Consecutive failures per triggered transient fault.  A burst
        longer than the retry budget turns a transient fault into a
        :class:`RetryExhaustedError` (used to test retry exhaustion).
    corruption_rate:
        Per-read probability of silently flipping one byte of the
        returned payload (position chosen by the RNG).  Undetectable
        without checksums — the failure mode the CRC32 layer exists for.
    corrupt_extents:
        Byte ranges ``(offset, length)`` whose content is *always*
        returned corrupted (persistent media damage: re-reads do not
        help, so verification must escalate to
        :class:`BrickCorruptionError` or a replica).
    latency_spike_rate, latency_spike_seconds:
        Per-read probability and size of an extra modeled delay, charged
        to ``stats.fault_delay`` (a slow/straggler disk).
    fail_after_reads:
        Permanently fail the device after this many successful reads
        (mid-query node loss).  ``None`` disables.
    fail_all:
        Start the device dead (node lost before the query).
    torn_write_rate:
        Per-write probability of *silently* tearing the write: only a
        prefix (length chosen by the RNG, possibly zero) reaches the
        media and no error is raised — the lost-power failure mode that
        only journal/CRC verification can discover after the fact.
    fail_after_writes:
        Kill the device during this (0-based) write: a torn prefix of
        the payload is applied, then :class:`TornWriteError` is raised
        and the device is permanently failed — a crash mid-flush.
        ``None`` disables.
    """

    seed: int = 0
    transient_error_rate: float = 0.0
    transient_burst: int = 1
    corruption_rate: float = 0.0
    corrupt_extents: "tuple[tuple[int, int], ...]" = ()
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 0.0
    fail_after_reads: "int | None" = None
    fail_all: bool = False
    torn_write_rate: float = 0.0
    fail_after_writes: "int | None" = None

    def __post_init__(self) -> None:
        for name in ("transient_error_rate", "corruption_rate", "latency_spike_rate",
                     "torn_write_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability, got {v}")
        if self.transient_burst < 1:
            raise ValueError(f"transient_burst must be >= 1, got {self.transient_burst}")
        if self.latency_spike_seconds < 0:
            raise ValueError(
                f"latency_spike_seconds must be >= 0, got {self.latency_spike_seconds}"
            )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI fault spec.

        Comma-separated ``key=value`` items::

            transient=0.05,corrupt=0.01,latency=0.02:0.01,seed=7,burst=2

        ``latency`` takes ``rate:seconds``.  ``fail`` alone kills the
        device outright; ``fail=N`` kills it after N reads.
        """
        kwargs: dict = {"seed": seed}
        for item in filter(None, (s.strip() for s in spec.split(","))):
            key, _, value = item.partition("=")
            if key == "transient":
                kwargs["transient_error_rate"] = float(value)
            elif key == "corrupt":
                kwargs["corruption_rate"] = float(value)
            elif key == "latency":
                rate, _, secs = value.partition(":")
                kwargs["latency_spike_rate"] = float(rate)
                kwargs["latency_spike_seconds"] = float(secs) if secs else 0.01
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "burst":
                kwargs["transient_burst"] = int(value)
            elif key == "fail":
                if value:
                    kwargs["fail_after_reads"] = int(value)
                else:
                    kwargs["fail_all"] = True
            elif key == "torn":
                kwargs["torn_write_rate"] = float(value) if value else 1.0
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r} "
                    "(known: transient, corrupt, latency, seed, burst, fail, torn)"
                )
        return cls(**kwargs)


@dataclass
class FaultStats:
    """What the injector actually did (distinct from what the consumer paid)."""

    transient_errors: int = 0
    corrupted_reads: int = 0
    latency_spikes: int = 0
    failed_reads: int = 0
    torn_writes: int = 0


class FaultInjectingDevice:
    """Block-device wrapper that executes a :class:`FaultPlan`.

    Writes pass through untouched (the paper's stores are write-once at
    preprocessing time; the fault model targets the query read path).
    Accounting stays on the backing device's meter so consumers see one
    continuous :class:`~repro.io.blockdevice.IOStats` whether or not a
    device is wrapped.

    Like every device *wrapper*, this class deliberately does not expose
    the ``peek``/``charge_read`` coalescer API: the fault plan's RNG
    advances once per read call, so merging reads would change which
    reads fault.  The query layer detects the missing ``peek`` and uses
    plain per-run reads, keeping fault sequences reproducible.

    Examples
    --------
    >>> from repro.io.blockdevice import SimulatedBlockDevice
    >>> dev = FaultInjectingDevice(SimulatedBlockDevice(),
    ...                            FaultPlan(transient_error_rate=1.0))
    >>> off = dev.allocate(4); dev.write(off, b"abcd")
    >>> try:
    ...     dev.read(off, 4)
    ... except TransientReadError:
    ...     print("faulted")
    faulted
    """

    def __init__(self, backing, plan: FaultPlan | None = None) -> None:
        self.backing = backing
        self.plan = plan or FaultPlan()
        self.cost_model: IOCostModel = backing.cost_model
        self.fault_stats = FaultStats()
        self._rng = random.Random(self.plan.seed)
        self._wrng = random.Random(self.plan.seed ^ 0x5EED_717E)
        self._reads_served = 0
        self._writes_served = 0
        self._pending_burst = 0
        self._failed = self.plan.fail_all

    # -- BlockDevice interface ------------------------------------------------

    @property
    def stats(self) -> IOStats:
        return self.backing.stats

    @property
    def size(self) -> int:
        return self.backing.size

    def allocate(self, nbytes: int) -> int:
        return self.backing.allocate(nbytes)

    def write(self, offset: int, data: bytes) -> None:
        if self._failed:
            raise DeviceFailedError(
                f"device failed permanently; write [{offset}, "
                f"{offset + len(data)}) refused"
            )
        idx = self._writes_served
        self._writes_served += 1
        if self.plan.fail_after_writes is not None and idx >= self.plan.fail_after_writes:
            # Crash mid-flush: a torn prefix lands, then the device dies.
            self._failed = True
            self.fault_stats.torn_writes += 1
            keep = self._wrng.randrange(len(data) + 1) if data else 0
            if keep:
                self.backing.write(offset, data[:keep])
            raise TornWriteError(
                f"device failed during write [{offset}, {offset + len(data)}): "
                f"{keep}/{len(data)} bytes reached the media"
            )
        if (
            self.plan.torn_write_rate
            and data
            and self._wrng.random() < self.plan.torn_write_rate
        ):
            # Silent tear: a prefix lands, no error — detectable only by
            # journal / CRC verification after the fact.
            self.fault_stats.torn_writes += 1
            keep = self._wrng.randrange(len(data))
            if keep:
                self.backing.write(offset, data[:keep])
            return
        self.backing.write(offset, data)

    def read(self, offset: int, nbytes: int) -> bytes:
        if self._failed:
            self.fault_stats.failed_reads += 1
            raise DeviceFailedError(
                f"device failed permanently; read [{offset}, {offset + nbytes}) refused"
            )
        if (
            self.plan.fail_after_reads is not None
            and self._reads_served >= self.plan.fail_after_reads
        ):
            self._failed = True
            self.fault_stats.failed_reads += 1
            raise DeviceFailedError(
                f"device failed after {self._reads_served} reads; "
                f"read [{offset}, {offset + nbytes}) refused"
            )
        if self._pending_burst > 0:
            self._pending_burst -= 1
            self.fault_stats.transient_errors += 1
            raise TransientReadError(
                f"transient read error at [{offset}, {offset + nbytes}) (burst)"
            )
        roll = self._rng.random()
        if roll < self.plan.transient_error_rate:
            self._pending_burst = self.plan.transient_burst - 1
            self.fault_stats.transient_errors += 1
            raise TransientReadError(
                f"transient read error at [{offset}, {offset + nbytes})"
            )

        data = self.backing.read(offset, nbytes)
        self._reads_served += 1

        if self.plan.latency_spike_rate and self._rng.random() < self.plan.latency_spike_rate:
            self.stats.charge_delay(self.plan.latency_spike_seconds)
            self.fault_stats.latency_spikes += 1

        corrupt_at: "list[int]" = []
        if self.plan.corruption_rate and nbytes and self._rng.random() < self.plan.corruption_rate:
            corrupt_at.append(self._rng.randrange(nbytes))
        for ext_off, ext_len in self.plan.corrupt_extents:
            lo = max(offset, ext_off)
            hi = min(offset + nbytes, ext_off + ext_len)
            corrupt_at.extend(range(lo - offset, hi - offset))
        if corrupt_at:
            buf = bytearray(data)
            for i in corrupt_at:
                buf[i] ^= 0xFF
            data = bytes(buf)
            self.fault_stats.corrupted_reads += 1
        return data

    def reset_stats(self) -> None:
        self.backing.reset_stats()

    def truncate(self, nbytes: int) -> None:
        self.backing.truncate(nbytes)

    # Durability pass-throughs: the journaled builder flushes/fsyncs at
    # commit points whatever device it was handed, wrapped or not.

    def flush(self) -> None:
        if hasattr(self.backing, "flush"):
            self.backing.flush()

    def fsync(self) -> None:
        if hasattr(self.backing, "fsync"):
            self.backing.fsync()

    def close(self) -> None:
        if hasattr(self.backing, "close"):
            self.backing.close()

    # -- fault control --------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Kill the device permanently (simulated node loss)."""
        self._failed = True

    def heal(self) -> None:
        """Bring a failed device back (node rejoin); faults resume per plan."""
        self._failed = False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transiently failing reads.

    ``max_retries`` bounds re-issues of a read that raised
    :class:`TransientReadError`; each retry charges
    ``backoff * backoff_multiplier**attempt`` modeled seconds to
    ``stats.fault_delay``.  ``max_read_repairs`` bounds whole-extent
    re-reads triggered by checksum mismatches before the query gives up
    with :class:`BrickCorruptionError`.

    ``jitter`` spreads retries out so concurrent nodes don't hammer a
    recovering device (or a healing partition) in lockstep: each
    backoff is stretched by up to ``jitter`` of itself, drawn from a
    deterministic hash of ``(jitter_seed, token, attempt)`` — callers
    pass a per-site ``token`` (e.g. the read offset) so distinct reads
    de-synchronize while the same read replays identically.  The
    default ``jitter=0`` is bit-identical to the pre-jitter policy.
    """

    max_retries: int = 3
    backoff: float = 2e-3
    backoff_multiplier: float = 2.0
    max_read_repairs: int = 2
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0 or self.backoff_multiplier < 1.0:
            raise ValueError(
                f"need backoff >= 0 and multiplier >= 1, got "
                f"{self.backoff}/{self.backoff_multiplier}"
            )
        if self.max_read_repairs < 0:
            raise ValueError(
                f"max_read_repairs must be >= 0, got {self.max_read_repairs}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_for(self, attempt: int, token: int = 0) -> float:
        base = self.backoff * self.backoff_multiplier ** attempt
        if not self.jitter:
            return base
        # Deterministic jitter: an integer-mixed seed (never Python's
        # salted hash()) so the same (policy, token, attempt) always
        # stretches the same amount, on any interpreter run.
        mix = (self.jitter_seed * 1000003 + int(token)) * 1000003 + attempt
        return base * (1.0 + self.jitter * random.Random(mix).random())


#: Policy used by the query layer when the caller does not pass one.
DEFAULT_RETRY_POLICY = RetryPolicy()


def read_with_retry(
    device, offset: int, nbytes: int, policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    tracer=NULL_TRACER,
) -> bytes:
    """Read an extent, retrying transient errors with modeled backoff.

    Every retry re-issues the full read (honestly re-charging its blocks
    and seek on the device meter), bumps ``stats.retries``, and adds the
    backoff delay to ``stats.fault_delay``.  Permanent failures
    (:class:`DeviceFailedError`) propagate immediately; exhausting the
    budget raises :class:`RetryExhaustedError`.  Each retry drops an
    ``io.retry`` instant on the tracer's active track.
    """
    attempt = 0
    while True:
        try:
            return device.read(offset, nbytes)
        except TransientReadError as exc:
            if attempt >= policy.max_retries:
                raise RetryExhaustedError(
                    f"read [{offset}, {offset + nbytes}) still failing after "
                    f"{policy.max_retries} retries: {exc}"
                ) from exc
            device.stats.retries += 1
            backoff = policy.backoff_for(attempt, token=offset)
            device.stats.charge_delay(backoff)
            tracer.instant(
                "io.retry", category="fault",
                args={"extent": [offset, offset + nbytes],
                      "attempt": attempt + 1,
                      "backoff": backoff},
            )
            attempt += 1


# ---------------------------------------------------------------------------
# Hedged replica reads (time-domain straggler mitigation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to hedge a slow primary read against a replica.

    The classic tail-latency defence: if a read takes longer than a
    threshold derived from this query's own observed read times, issue
    the identical read to the chained-declustering replica and take the
    first completion.  All times are modeled seconds, so hedging is
    fully deterministic.

    Parameters
    ----------
    quantile:
        Quantile of the observed per-read latency history used as the
        base threshold.  The default (median) is robust against fault
        plans where a large fraction of reads spike.
    multiplier:
        The threshold is ``quantile_value * multiplier`` — a read must
        be this many times slower than the recent typical read before
        the hedge fires.
    min_samples:
        No hedging until this many reads have been observed (the
        threshold would be noise).
    floor:
        Absolute lower bound on the threshold in modeled seconds; the
        device's ``single_block_time`` is always applied as well, since
        no replica read can beat one block + one seek.
    history_cap:
        Sliding-window size of the latency history.
    failover:
        When True, a *permanent* primary failure
        (:class:`DeviceFailedError`, e.g. the node was killed or
        drained mid-read) falls back to a full replica read instead of
        propagating — the payload is bit-identical either way, and the
        consumer pays the time-to-failure plus the replica read.  The
        default (False) preserves the original contract: permanent
        faults propagate so the cluster layer can run its replica
        recovery, health accounting, and failover promotion.  The
        elastic cluster (:mod:`repro.elastic`) enables this so a hedged
        read racing a membership change completes cleanly.
    """

    quantile: float = 0.5
    multiplier: float = 4.0
    min_samples: int = 4
    floor: float = 0.0
    history_cap: int = 256
    failover: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {self.quantile}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.floor < 0:
            raise ValueError(f"floor must be >= 0, got {self.floor}")
        if self.history_cap < self.min_samples:
            raise ValueError(
                f"history_cap ({self.history_cap}) must cover min_samples "
                f"({self.min_samples})"
            )


class HedgedDevice:
    """Primary + replica read path with quantile-triggered hedging.

    Implements the :class:`~repro.io.blockdevice.BlockDevice` read
    protocol over *two* backing devices: the node's own disk and the
    region of a surviving node's disk holding the chained-declustering
    replica of the same layout (byte-identical, so either source yields
    the same payload).

    Semantics, all on the modeled clock:

    * every read goes to the primary first and its modeled cost
      ``t_p`` (blocks, seeks, injected delay) is measured;
    * if ``t_p`` exceeds the hedge threshold, the same extent is read
      from the replica — conceptually issued *at* the threshold mark —
      and the earlier completion wins:
      ``t_eff = min(t_p, threshold + t_r)``;
    * both backing meters stay honest (each device is charged for the
      work it physically did); this wrapper's **own** ``stats`` meter
      records the *effective* cost the consumer waited for, which is
      what :class:`~repro.core.query.QueryResult` reports;
    * the latency history holds effective times, so absorbed spikes do
      not inflate the threshold.

    Permanent faults (:class:`DeviceFailedError`) propagate untouched
    by default — node loss is the cluster layer's recovery problem, not
    a per-read hedge.  With ``policy.failover`` set, a permanent
    primary failure instead falls back to the replica read (payload
    bit-identical; the consumer pays the time-to-failure plus the
    replica transfer) — the behaviour a live-resharding cluster wants
    when the primary drains mid-read.
    """

    def __init__(
        self,
        primary,
        primary_base: int,
        replica,
        replica_base: int,
        policy: HedgePolicy | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.primary = primary
        self.replica = replica
        self.primary_base = primary_base
        self.replica_base = replica_base
        self.policy = policy or HedgePolicy()
        self.cost_model: IOCostModel = primary.cost_model
        self.stats = IOStats()
        self._history: "list[float]" = []
        #: Tracer receiving ``hedge.fired`` / ``hedge.win`` instants on
        #: its active track (the no-op tracer by default).
        self.tracer = tracer

    @property
    def size(self) -> int:
        return self.primary.size

    def allocate(self, nbytes: int) -> int:  # pragma: no cover - write path
        return self.primary.allocate(nbytes)

    def write(self, offset: int, data: bytes) -> None:  # pragma: no cover
        self.primary.write(offset, data)

    def hedge_threshold(self) -> "float | None":
        """Current threshold in modeled seconds, or None (too few samples)."""
        if len(self._history) < self.policy.min_samples:
            return None
        base = latency_quantile(self._history, self.policy.quantile)
        return max(
            base * self.policy.multiplier,
            self.policy.floor,
            self.cost_model.single_block_time,
        )

    def _observe(self, t_eff: float) -> None:
        self._history.append(t_eff)
        if len(self._history) > self.policy.history_cap:
            del self._history[0]

    def _failover_read(self, offset: int, nbytes: int, delta_p, exc) -> bytes:
        """Replica fallback after a permanent primary failure mid-read.

        The consumer's clock pays everything the primary charged before
        dying (``delta_p``, carried as ``fault_delay``) plus the full
        replica read.  If the replica is also unreadable the *original*
        primary error propagates — same signal the cluster layer would
        have seen without failover.
        """
        r_offset = offset - self.primary_base + self.replica_base
        r_before = self.replica.stats.copy()
        try:
            r_data = self.replica.read(r_offset, nbytes)
        except StorageFault:
            raise exc from None
        delta_r = self.replica.stats - r_before
        self.stats.hedged_reads += 1
        self.stats.hedge_wins += 1
        self.tracer.instant(
            "hedge.failover", category="fault",
            args={"extent": [offset, offset + nbytes],
                  "error": str(exc)},
        )
        eff = delta_r.copy()
        eff.fault_delay += delta_p.read_time(self.cost_model)
        self.stats += eff
        self._observe(eff.read_time(self.replica.cost_model))
        return r_data

    def read(self, offset: int, nbytes: int) -> bytes:
        before = self.primary.stats.copy()
        try:
            data = self.primary.read(offset, nbytes)
        except DeviceFailedError as exc:
            if not self.policy.failover:
                raise
            delta_p = self.primary.stats - before
            return self._failover_read(offset, nbytes, delta_p, exc)
        delta_p = self.primary.stats - before
        t_p = delta_p.read_time(self.cost_model)
        threshold = self.hedge_threshold()
        if threshold is None or t_p <= threshold:
            self.stats += delta_p
            self._observe(t_p)
            return data
        # Hedge: re-issue against the replica region at the threshold mark.
        self.stats.hedged_reads += 1
        self.tracer.instant(
            "hedge.fired", category="fault",
            args={"extent": [offset, offset + nbytes],
                  "primary_seconds": t_p, "threshold": threshold},
        )
        r_offset = offset - self.primary_base + self.replica_base
        r_before = self.replica.stats.copy()
        try:
            r_data = self.replica.read(r_offset, nbytes)
        except StorageFault:
            # Replica also misbehaving: the primary result stands.
            self.stats += delta_p
            self._observe(t_p)
            return data
        delta_r = self.replica.stats - r_before
        t_r = threshold + delta_r.read_time(self.replica.cost_model)
        if t_r < t_p:
            # Replica finished first: the consumer paid the threshold wait
            # plus the replica transfer; the primary's slow read keeps
            # burdening only the primary's own meter.
            self.stats.hedge_wins += 1
            self.tracer.instant(
                "hedge.win", category="fault",
                args={"extent": [offset, offset + nbytes],
                      "primary_seconds": t_p, "effective_seconds": t_r},
            )
            eff = delta_r.copy()
            eff.fault_delay += threshold
            self.stats += eff
            self._observe(t_r)
            return r_data
        self.stats += delta_p
        self._observe(t_p)
        return data

    def reset_stats(self) -> None:  # pragma: no cover - parity with devices
        self.stats.reset()
