"""Out-of-core storage substrate.

This package simulates the per-node local disks of the paper's
visualization cluster at *block* granularity.  Every read is accounted in
units of disk blocks (the standard external-memory model of Aggarwal &
Vitter used by the paper, Section 3), with sequential-vs-seek distinction,
so the I/O optimality claims can be measured directly rather than inferred
from wall-clock time.

Modules
-------
``cost_model``
    :class:`IOCostModel` — translates block/seek counts into modeled time
    (default calibration: the paper's 50 MB/s local disks).
``blockdevice``
    :class:`SimulatedBlockDevice` — an in-memory block device with full
    accounting; :class:`IOStats` — the accounting record.
``diskfile``
    :class:`FileBackedDevice` — same interface, backed by a real file, for
    genuinely out-of-core runs.
``layout``
    Fixed-size metacell record codec and brick-run encoding (the paper's
    734-byte records for 9x9x9 one-byte metacells), plus the CRC32
    checksum tables (:class:`BrickChecksums`) of format version 2.
``faults``
    Deterministic fault injection (:class:`FaultPlan`,
    :class:`FaultInjectingDevice`), the typed :class:`StorageFault`
    hierarchy, and the bounded :class:`RetryPolicy` used by the query
    read path.
"""

from repro.io.blockdevice import BlockDevice, IOStats, SimulatedBlockDevice
from repro.io.cache import CachedDevice, CacheStats
from repro.io.cost_model import IOCostModel, PAPER_DISK
from repro.io.diskfile import FileBackedDevice
from repro.io.faults import (
    DEFAULT_RETRY_POLICY,
    BrickCorruptionError,
    DeviceFailedError,
    FaultInjectingDevice,
    FaultPlan,
    FaultStats,
    RetryExhaustedError,
    RetryPolicy,
    StorageFault,
    TransientReadError,
    read_with_retry,
)
from repro.io.layout import BrickChecksums, MetacellCodec, MetacellRecords

__all__ = [
    "BlockDevice",
    "IOStats",
    "SimulatedBlockDevice",
    "CachedDevice",
    "CacheStats",
    "IOCostModel",
    "PAPER_DISK",
    "FileBackedDevice",
    "MetacellCodec",
    "MetacellRecords",
    "BrickChecksums",
    "FaultPlan",
    "FaultStats",
    "FaultInjectingDevice",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "read_with_retry",
    "StorageFault",
    "TransientReadError",
    "RetryExhaustedError",
    "DeviceFailedError",
    "BrickCorruptionError",
]
