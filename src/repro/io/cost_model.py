"""I/O cost model for the external-memory machine of the paper (Section 3).

The paper measures algorithms in the standard parallel disk model
[Aggarwal & Vitter 1988]: input of size ``N``, memory ``M``, block size
``B``; one I/O moves one block.  Performance on real hardware is then a
function of how many blocks were touched and how many of those accesses
were sequential.  :class:`IOCostModel` converts the counts recorded by
:class:`repro.io.blockdevice.SimulatedBlockDevice` into modeled seconds
using a simple affine disk model::

    time = n_seeks * seek_latency + bytes_transferred / bandwidth

The default calibration, :data:`PAPER_DISK`, matches the hardware of the
University of Maryland visualization cluster used in the paper: 60 GB
local disks sustaining 50 MB/s sequential reads (Section 6), with 8 KB
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOCostModel:
    """Affine time model for a single disk.

    Parameters
    ----------
    block_size:
        Disk block size ``B`` in bytes.  One I/O operation in the
        external-memory model transfers one block.  The paper cites
        typical sizes of 4 KB or 8 KB.
    bandwidth:
        Sustained sequential transfer rate in bytes/second.
    seek_latency:
        Time charged for each non-sequential access (head movement +
        rotational delay), in seconds.
    """

    block_size: int = 8192
    bandwidth: float = 50e6
    seek_latency: float = 8e-3

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.seek_latency < 0:
            raise ValueError(f"seek_latency must be >= 0, got {self.seek_latency}")

    def blocks_for_extent(self, offset: int, length: int) -> int:
        """Number of blocks an extent ``[offset, offset + length)`` touches."""
        if length <= 0:
            return 0
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        return last - first + 1

    def time_for(self, n_blocks: int, n_seeks: int) -> float:
        """Modeled seconds to read ``n_blocks`` with ``n_seeks`` repositionings."""
        return n_seeks * self.seek_latency + (n_blocks * self.block_size) / self.bandwidth

    def scan_time(self, nbytes: int) -> float:
        """Modeled seconds for one sequential scan of ``nbytes`` (one seek)."""
        n_blocks = (nbytes + self.block_size - 1) // self.block_size
        return self.time_for(n_blocks, 1 if nbytes > 0 else 0)

    @property
    def single_block_time(self) -> float:
        """Modeled seconds for the smallest possible read (one block, one
        seek) — the floor below which a hedge threshold is meaningless:
        no replica read can possibly complete faster."""
        return self.time_for(1, 1)


def latency_quantile(samples: "list[float]", q: float) -> float:
    """Nearest-rank quantile of a latency history.

    Deterministic (no interpolation) so hedge thresholds derived from it
    are bit-stable across runs; ``q`` in [0, 1].
    """
    if not samples:
        raise ValueError("cannot take a quantile of an empty history")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


#: Calibration matching the paper's cluster nodes (Section 6): 50 MB/s
#: local disks, 8 KB blocks.
PAPER_DISK = IOCostModel(block_size=8192, bandwidth=50e6, seek_latency=8e-3)
