"""File-backed block device: the genuinely out-of-core storage path.

:class:`FileBackedDevice` implements the same :class:`~repro.io.blockdevice.BlockDevice`
interface as the in-memory simulator but persists data in a real file, so
datasets larger than memory can be preprocessed once and queried later
with bounded resident set — the paper's actual operating regime.  All
accesses run through the same block/seek metering, so modeled I/O times
agree between the two backends.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.io.blockdevice import IOStats, _Meter
from repro.io.cost_model import IOCostModel


class FileBackedDevice:
    """Block device backed by a file on the local filesystem.

    Parameters
    ----------
    path:
        File to create or open.  Created (truncated) when ``create=True``.
    cost_model:
        Block size / timing calibration (defaults to the paper's disk).
    create:
        When True (default) start from an empty file; when False, open an
        existing store read-write and resume allocation at its end.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        cost_model: IOCostModel | None = None,
        create: bool = True,
    ) -> None:
        self.cost_model = cost_model or IOCostModel()
        self.path = Path(path)
        mode = "w+b" if create or not self.path.exists() else "r+b"
        self._fh = open(self.path, mode)
        self._fh.seek(0, os.SEEK_END)
        self._size = self._fh.tell()
        self._meter = _Meter(self.cost_model)

    @property
    def stats(self) -> IOStats:
        return self._meter.stats

    @property
    def size(self) -> int:
        return self._size

    def allocate(self, nbytes: int) -> int:
        if nbytes < 0:
            raise ValueError(f"cannot allocate {nbytes} bytes")
        offset = self._size
        self._size += nbytes
        self._fh.truncate(self._size)
        return offset

    def write(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if offset < 0 or end > self._size:
            raise ValueError(
                f"write [{offset}, {end}) outside allocated region of {self._size} bytes"
            )
        self._fh.seek(offset)
        self._fh.write(data)
        self._meter.record_write(offset, len(data))

    def read(self, offset: int, nbytes: int) -> bytes:
        end = offset + nbytes
        if offset < 0 or nbytes < 0 or end > self._size:
            raise ValueError(
                f"read [{offset}, {end}) outside allocated region of {self._size} bytes"
            )
        self._fh.seek(offset)
        data = self._fh.read(nbytes)
        if len(data) != nbytes:
            raise IOError(
                f"short read at offset {offset}: wanted {nbytes} bytes, got {len(data)} "
                f"(store truncated or corrupted)"
            )
        self._meter.record_read(offset, nbytes)
        return data

    def peek(self, offset: int, nbytes: int) -> memoryview:
        """Unmetered read of ``[offset, offset+nbytes)`` (coalescer API).

        Same contract as
        :meth:`repro.io.blockdevice.SimulatedBlockDevice.peek`: data
        moves, the meter does not.  The file backend has no resident
        buffer to alias, so this materializes one copy — still one
        syscall for the whole extent instead of one per brick prefix.
        """
        end = offset + nbytes
        if offset < 0 or nbytes < 0 or end > self._size:
            raise ValueError(
                f"peek [{offset}, {end}) outside allocated region of {self._size} bytes"
            )
        self._fh.seek(offset)
        data = self._fh.read(nbytes)
        if len(data) != nbytes:
            raise IOError(
                f"short read at offset {offset}: wanted {nbytes} bytes, got {len(data)} "
                f"(store truncated or corrupted)"
            )
        return memoryview(data)

    def charge_read(self, offset: int, nbytes: int) -> None:
        """Meter a read without data movement (coalescer API; see
        :meth:`repro.io.blockdevice.SimulatedBlockDevice.charge_read`)."""
        end = offset + nbytes
        if offset < 0 or nbytes < 0 or end > self._size:
            raise ValueError(
                f"charge_read [{offset}, {end}) outside allocated region of "
                f"{self._size} bytes"
            )
        self._meter.record_read(offset, nbytes)

    def truncate(self, nbytes: int) -> None:
        """Shrink the backing file to ``nbytes`` (damage-injection API)."""
        if nbytes < 0 or nbytes > self._size:
            raise ValueError(
                f"cannot truncate to {nbytes} bytes (store holds {self._size})"
            )
        self._fh.truncate(nbytes)
        self._size = nbytes

    def reset_stats(self) -> None:
        self._meter.stats.reset()
        self._meter._next_sequential_block = -1

    def flush(self) -> None:
        self._fh.flush()

    def fsync(self) -> None:
        """Flush userspace buffers and ask the OS to reach the media.

        Durability barrier for the journaled build's commit points: after
        ``fsync`` returns, everything written so far survives a crash of
        the process (and, on a real disk, of the machine).
        """
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "FileBackedDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pickling: the path travels, not the bytes -------------------------
    # Lets multiprocessing workers reopen the same store instead of
    # shipping its contents (see repro.parallel.mp_backend).

    def __getstate__(self) -> dict:
        return {
            "path": str(self.path),
            "cost_model": self.cost_model,
            "size": self._size,
        }

    def __setstate__(self, state: dict) -> None:
        self.cost_model = state["cost_model"]
        self.path = Path(state["path"])
        self._fh = open(self.path, "r+b")
        self._size = state["size"]
        if self.path.stat().st_size < self._size:
            raise IOError(
                f"reopened store {self.path} holds {self.path.stat().st_size} "
                f"bytes, expected {self._size}"
            )
        self._meter = _Meter(self.cost_model)
