"""Paced background scrubber: find bit rot before a query does.

A dataset that is only read where queries land can rot silently in the
cold regions.  :class:`Scrubber` walks the brick table in layout order,
re-reading and CRC-verifying a bounded number of bricks per *tick*, so
the integrity sweep can be interleaved with foreground work instead of
monopolizing the device.  Pacing is expressed on the **modeled clock**:
each tick's cost is whatever the device meter charged for its reads
(plus an optional idle gap between ticks), so a sweep's modeled duration
is deterministic and comparable across runs, exactly like query I/O.

Observability goes through :mod:`repro.obs`: every tick emits a
``scrub.tick`` span charged with its modeled read time, detected
corruption raises ``scrub.corruption`` instant events, and the
``scrub.*`` counters/gauges land in the shared
:class:`~repro.obs.metrics.MetricsRegistry` namespace.

The scrubber only *detects*; pair it with
:func:`repro.core.repair.repair_dataset` to heal what it finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class ScrubConfig:
    """Pacing of a background scrub.

    Parameters
    ----------
    bricks_per_tick:
        Bricks re-read and verified per :meth:`Scrubber.tick`.  Smaller
        values interleave more finely with foreground queries.
    idle_seconds:
        Modeled idle gap accounted between ticks (a real deployment
        sleeps here; the model just adds it to the sweep's clock).
    """

    bricks_per_tick: int = 4
    idle_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.bricks_per_tick < 1:
            raise ValueError(
                f"bricks_per_tick must be >= 1, got {self.bricks_per_tick}"
            )
        if self.idle_seconds < 0:
            raise ValueError(
                f"idle_seconds must be >= 0, got {self.idle_seconds}"
            )


DEFAULT_SCRUB_CONFIG = ScrubConfig()


@dataclass
class ScrubReport:
    """Outcome of one full sweep (or a bounded number of ticks)."""

    n_ticks: int = 0
    n_bricks_scanned: int = 0
    n_records_scanned: int = 0
    corrupt_bricks: "list[int]" = field(default_factory=list)
    corrupt_records: "list[int]" = field(default_factory=list)
    modeled_seconds: float = 0.0
    sweeps_completed: int = 0

    @property
    def clean(self) -> bool:
        return not self.corrupt_bricks

    def as_dict(self) -> dict:
        return {
            "n_ticks": self.n_ticks,
            "n_bricks_scanned": self.n_bricks_scanned,
            "n_records_scanned": self.n_records_scanned,
            "corrupt_bricks": [int(b) for b in self.corrupt_bricks],
            "corrupt_records": [int(p) for p in self.corrupt_records],
            "modeled_seconds": self.modeled_seconds,
            "sweeps_completed": self.sweeps_completed,
        }

    def summary(self) -> str:
        status = (
            "clean"
            if self.clean
            else f"{len(self.corrupt_bricks)} corrupt brick(s): "
            f"{self.corrupt_bricks[:10]}"
        )
        return (
            f"scrub: {status} — {self.n_bricks_scanned} bricks / "
            f"{self.n_records_scanned} records in {self.n_ticks} tick(s), "
            f"{self.modeled_seconds * 1e3:.2f} ms modeled"
        )


class Scrubber:
    """Incremental integrity walker over one dataset's brick layout.

    The scrubber holds a cursor into the brick table; each
    :meth:`tick` verifies the next ``bricks_per_tick`` bricks and
    advances (wrapping at the end, which counts a completed sweep).
    State is cheap and in-memory — a long-lived process owns one
    scrubber per dataset and calls ``tick()`` whenever the device is
    idle.
    """

    def __init__(
        self,
        dataset,
        config: "ScrubConfig | None" = None,
        tracer=NULL_TRACER,
        metrics=None,
    ) -> None:
        if dataset.checksums is None:
            raise ValueError("dataset carries no checksum tables; cannot scrub")
        self.dataset = dataset
        self.config = config or DEFAULT_SCRUB_CONFIG
        self.tracer = tracer
        self.metrics = metrics
        #: Next brick the cursor will verify.
        self.position = 0
        #: Full passes over the brick table completed so far.
        self.sweeps_completed = 0
        #: Bricks flagged corrupt since construction (deduplicated).
        self.corrupt_bricks: "set[int]" = set()

    @property
    def n_bricks(self) -> int:
        return self.dataset.tree.n_bricks

    def _verify_brick(self, b: int, report: ScrubReport) -> None:
        ds = self.dataset
        checks = ds.checksums
        rec = ds.codec.record_size
        start = int(ds.tree.brick_start[b])
        count = int(ds.tree.brick_count[b])
        if count == 0:
            return
        buf = ds.device.read(ds.record_offset(start), count * rec)
        ok = checks.verify_span(start, buf, rec)
        if ok is None or not ok:
            corrupt = checks.find_corrupt(start, buf, rec)
            if len(corrupt):
                self.corrupt_bricks.add(b)
                report.corrupt_bricks.append(b)
                report.corrupt_records.extend(start + int(i) for i in corrupt)
                self.tracer.instant(
                    "scrub.corruption",
                    category="scrub",
                    args={"brick": b, "records": [int(i) + start for i in corrupt[:10]]},
                )
                if self.metrics is not None:
                    self.metrics.inc("scrub.corrupt_bricks")
                    self.metrics.inc("scrub.corrupt_records", len(corrupt))
        report.n_records_scanned += count

    def tick(self, report: "ScrubReport | None" = None) -> ScrubReport:
        """Verify the next ``bricks_per_tick`` bricks; returns the
        (possibly caller-accumulated) report."""
        report = report if report is not None else ScrubReport()
        ds = self.dataset
        nb = self.n_bricks
        if nb == 0:
            report.n_ticks += 1
            return report
        todo = min(self.config.bricks_per_tick, nb)
        scanned = 0
        with self.tracer.io_span(
            "scrub.tick",
            ds.device,
            category="scrub",
            args={"position": self.position, "bricks": todo},
        ):
            before = ds.device.stats.read_time(ds.device.cost_model)
            for _ in range(todo):
                self._verify_brick(self.position, report)
                report.n_bricks_scanned += 1
                scanned += 1
                self.position += 1
                if self.position >= nb:
                    self.position = 0
                    self.sweeps_completed += 1
                    report.sweeps_completed += 1
                    if self.metrics is not None:
                        self.metrics.inc("scrub.sweeps_completed")
                    # A tick never crosses the sweep boundary: scanning
                    # on into brick 0 would double-count early bricks
                    # within one sweep.
                    break
            after = ds.device.stats.read_time(ds.device.cost_model)
        report.n_ticks += 1
        report.modeled_seconds += (after - before) + self.config.idle_seconds
        if self.metrics is not None:
            self.metrics.inc("scrub.ticks")
            self.metrics.inc("scrub.bricks_scanned", scanned)
            self.metrics.set_gauge("scrub.position", self.position)
            self.metrics.observe("scrub.tick_modeled_seconds", after - before)
        return report

    def sweep(self) -> ScrubReport:
        """Run ticks until one full pass over the brick table completes.

        Detection latency is therefore bounded by one sweep: any
        corruption present when the sweep starts is in the report when
        it ends.
        """
        report = ScrubReport()
        if self.n_bricks == 0:
            return report
        target = self.sweeps_completed + 1
        while self.sweeps_completed < target:
            self.tick(report)
        return report
