"""LRU block cache over any block device.

Interactive exploration replays similar isovalues: consecutive queries
share most of their active bricks, so a block cache converts the repeat
traffic into memory hits.  :class:`CachedDevice` wraps any
:class:`~repro.io.blockdevice.BlockDevice` with an LRU cache of whole
blocks and separates the accounting:

* ``stats`` (on the wrapper) counts the *logical* reads the query layer
  issued;
* ``backing.stats`` counts what actually reached the disk;
* ``cache_stats`` counts hits/misses/evictions.

The cache is read-only-after-write in spirit: writes invalidate the
affected blocks, keeping reads coherent (asserted by tests).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.io.blockdevice import IOStats, _Meter
from repro.io.cost_model import IOCostModel


@dataclass
class CacheStats:
    """Hit/miss accounting for a :class:`CachedDevice`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class CacheOptions:
    """Every cache knob of a query or cluster, in one frozen value.

    Replaces the ad-hoc ``cache_blocks=`` constructor argument and the
    scattered per-call kwargs: embed one of these in
    :class:`~repro.core.query.QueryOptions`,
    :class:`~repro.parallel.cluster.ExtractRequest`, or pass it as
    ``SimulatedCluster(..., cache=...)`` /
    ``ServeConfig(cache=...)``.

    Parameters
    ----------
    block_cache_bytes:
        Per-node LRU block-cache budget in bytes (0 disables); converted
        to whole blocks against the device's block size at attach time.
    result_cache_bytes:
        Byte budget of the λ-keyed :class:`~repro.serve.rcache.ResultCache`
        holding verified decoded records and per-stripe triangle batches
        (0 disables result reuse).
    lambda_bucket:
        Width of the λ-bucket used in result-cache keys and request
        coalescing: isovalues in the same bucket
        (``floor(lam / lambda_bucket)``) may share one in-flight
        extraction.  0 restricts coalescing to exactly-equal isovalues.
    coalesce:
        Whether concurrent requests for the same λ-bucket attach to one
        in-flight extraction instead of re-reading.
    """

    block_cache_bytes: int = 0
    result_cache_bytes: int = 0
    lambda_bucket: float = 0.0
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.block_cache_bytes < 0:
            raise ValueError(
                f"block_cache_bytes must be >= 0, got {self.block_cache_bytes}"
            )
        if self.result_cache_bytes < 0:
            raise ValueError(
                f"result_cache_bytes must be >= 0, got {self.result_cache_bytes}"
            )
        if self.lambda_bucket < 0:
            raise ValueError(
                f"lambda_bucket must be >= 0, got {self.lambda_bucket}"
            )

    def block_cache_blocks(self, block_size: int) -> int:
        """Whole-block capacity implied by ``block_cache_bytes``."""
        if block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        return self.block_cache_bytes // block_size

    def bucket_of(self, lam: float) -> float:
        """The λ-bucket key ``lam`` falls in (``lam`` itself when the
        bucket width is 0 — exact-match coalescing only)."""
        if self.lambda_bucket <= 0.0:
            return float(lam)
        return float(math.floor(float(lam) / self.lambda_bucket))


#: Cache-free defaults (what every query ran with before CacheOptions).
DEFAULT_CACHE_OPTIONS = CacheOptions()


class CachedDevice:
    """LRU block cache in front of a block device.

    Parameters
    ----------
    backing:
        The device to cache (its cost model defines the block size).
    capacity_blocks:
        Cache size in blocks; this times the block size is the memory
        the cache is allowed (the paper's nodes have 8 GB against 60 GB
        disks — a ~13% cache, easily enough for a working set of hot
        bricks).
    """

    def __init__(self, backing, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
        self.backing = backing
        self.capacity_blocks = capacity_blocks
        self.cost_model: IOCostModel = backing.cost_model
        self._meter = _Meter(self.cost_model)
        self.cache_stats = CacheStats()
        self._lru: "OrderedDict[int, bytes]" = OrderedDict()

    # -- BlockDevice interface -------------------------------------------------

    @property
    def stats(self) -> IOStats:
        """Logical (pre-cache) read accounting."""
        return self._meter.stats

    @property
    def size(self) -> int:
        return self.backing.size

    def allocate(self, nbytes: int) -> int:
        return self.backing.allocate(nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self.backing.write(offset, data)
        bs = self.cost_model.block_size
        first = offset // bs
        last = (offset + max(len(data), 1) - 1) // bs
        for b in range(first, last + 1):
            if b in self._lru:
                del self._lru[b]
                self.cache_stats.invalidations += 1

    def _block(self, block_id: int) -> bytes:
        if block_id in self._lru:
            self._lru.move_to_end(block_id)
            self.cache_stats.hits += 1
            return self._lru[block_id]
        self.cache_stats.misses += 1
        bs = self.cost_model.block_size
        start = block_id * bs
        length = min(bs, self.backing.size - start)
        data = self.backing.read(start, length)
        self._lru[block_id] = data
        if len(self._lru) > self.capacity_blocks:
            self._lru.popitem(last=False)
            self.cache_stats.evictions += 1
        return data

    def read(self, offset: int, nbytes: int) -> bytes:
        end = offset + nbytes
        if offset < 0 or nbytes < 0 or end > self.size:
            raise ValueError(
                f"read [{offset}, {end}) outside allocated region of {self.size} bytes"
            )
        self._meter.record_read(offset, nbytes)
        if nbytes == 0:
            return b""
        bs = self.cost_model.block_size
        first = offset // bs
        last = (end - 1) // bs
        if first == last:
            # Single-block read (the Case-2 prefix-scan common case):
            # slice the cached block directly, no join round trip.
            lo = offset - first * bs
            return self._block(first)[lo : lo + nbytes]
        parts = [self._block(b) for b in range(first, last + 1)]
        blob = b"".join(parts)
        lo = offset - first * bs
        return blob[lo : lo + nbytes]

    # NOTE: no ``peek``/``charge_read`` here, by design.  The cache's
    # hit/miss accounting is defined per logical read call; letting the
    # coalescer bypass it with one merged extent would misstate the hit
    # rate and the backing traffic.  The query layer feature-tests for
    # ``peek`` and falls back to plain per-run reads on wrapped devices.

    def reset_stats(self) -> None:
        self._meter.stats.reset()
        self._meter._next_sequential_block = -1

    def clear_cache(self) -> None:
        self._lru.clear()
