"""Simulated block devices with external-memory-model accounting.

The paper's analysis (Section 3) counts I/O operations — block reads —
rather than seconds.  :class:`SimulatedBlockDevice` stores data in memory
but *meters* every access exactly the way a disk controller would see it:

* an access to an extent ``[offset, offset+length)`` touches
  ``ceil``-spanning blocks (partial blocks cost a whole block);
* an access whose first block is not the block following the previous
  access's last block incurs a *seek*;
* statistics accumulate in an :class:`IOStats` that the cost model can
  turn into modeled seconds.

The device is deliberately append-oriented: the preprocessing step of the
paper writes bricks once, in layout order, and queries only ever read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.io.cost_model import IOCostModel


@dataclass
class IOStats:
    """Accumulated I/O accounting for one device.

    Attributes
    ----------
    read_ops:
        Number of read calls issued.
    blocks_read:
        Total blocks touched by reads (the external-memory cost).
    bytes_read:
        Total bytes requested by reads (useful payload; <= blocks_read * B).
    seeks:
        Reads that were not sequential continuations of the previous read.
    write_ops, blocks_written, bytes_written:
        Same accounting for writes (preprocessing cost).
    """

    read_ops: int = 0
    blocks_read: int = 0
    bytes_read: int = 0
    seeks: int = 0
    write_ops: int = 0
    blocks_written: int = 0
    bytes_written: int = 0
    #: Read attempts repeated after a transient fault or checksum mismatch
    #: (the re-issued blocks/seeks are charged above as usual).
    retries: int = 0
    #: Records whose CRC32 did not match the index (each detection counts,
    #: including repeated failures of the same record across re-reads).
    checksum_failures: int = 0
    #: Reads whose primary attempt exceeded the hedge threshold, causing
    #: the same extent to be issued against a replica (see
    #: :class:`repro.io.faults.HedgedDevice`).
    hedged_reads: int = 0
    #: Hedged reads where the replica completed before the primary (the
    #: replica's cost is what the consumer paid).
    hedge_wins: int = 0
    #: Extra modeled seconds the consumer *waited* without moving data:
    #: fault-injected latency spikes, retry backoff, and hedge-threshold
    #: waits.  Every producer charges through :meth:`charge_delay` so the
    #: three sources share one modeled clock; added to :meth:`read_time`.
    fault_delay: float = 0.0

    def charge_delay(self, seconds: float) -> None:
        """Charge modeled waiting time to this meter.

        The single entry point for every source of non-transfer delay
        (latency spikes, retry/repair backoff, hedge waits): charging
        here keeps them additive and lets a deadline clock observe all
        of them through one counter.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative delay {seconds}")
        self.fault_delay += seconds

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{k: getattr(self, k) + getattr(other, k) for k in vars(self)}
        )

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{k: getattr(self, k) - getattr(other, k) for k in vars(self)}
        )

    def copy(self) -> "IOStats":
        return IOStats(**vars(self))

    def as_dict(self) -> "dict[str, int | float]":
        """Counter name -> value, for the metrics namespace.

        Field names are kept verbatim (``blocks_read``, ``seeks``,
        ``hedge_wins``, ...) so ``io.<field>`` in a
        :class:`~repro.obs.metrics.MetricsRegistry` is always exactly
        this struct, unified across every device in a run.
        """
        return dict(vars(self))

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0.0 if name == "fault_delay" else 0)

    def read_time(self, model: IOCostModel) -> float:
        """Modeled seconds spent reading, under ``model``.

        Includes any fault-injected latency and retry backoff accumulated
        in :attr:`fault_delay`."""
        return model.time_for(self.blocks_read, self.seeks) + self.fault_delay


class BlockDevice(Protocol):
    """Minimal interface the index/query layers need from storage."""

    cost_model: IOCostModel
    stats: IOStats

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the starting byte offset."""
        ...

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` (must lie in an allocated region)."""
        ...

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``offset``, with accounting."""
        ...

    @property
    def size(self) -> int:
        """Total allocated bytes."""
        ...


@dataclass
class _Meter:
    """Shared metering logic for simulated and file-backed devices."""

    cost_model: IOCostModel
    stats: IOStats = field(default_factory=IOStats)
    _next_sequential_block: int = -1

    def record_read(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        bs = self.cost_model.block_size
        first = offset // bs
        blocks = self.cost_model.blocks_for_extent(offset, nbytes)
        self.stats.read_ops += 1
        self.stats.bytes_read += nbytes
        self.stats.blocks_read += blocks
        if first != self._next_sequential_block:
            self.stats.seeks += 1
        self._next_sequential_block = first + blocks

    def record_write(self, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.stats.write_ops += 1
        self.stats.bytes_written += nbytes
        self.stats.blocks_written += self.cost_model.blocks_for_extent(offset, nbytes)


class SimulatedBlockDevice:
    """In-memory block device with external-memory accounting.

    Parameters
    ----------
    cost_model:
        Block size and timing calibration.  Defaults to the paper's disk.

    Examples
    --------
    >>> dev = SimulatedBlockDevice()
    >>> off = dev.allocate(10)
    >>> dev.write(off, b"0123456789")
    >>> dev.read(off, 4)
    b'0123'
    >>> dev.stats.read_ops
    1
    """

    def __init__(self, cost_model: IOCostModel | None = None) -> None:
        self.cost_model = cost_model or IOCostModel()
        self._buf = bytearray()
        self._meter = _Meter(self.cost_model)

    @property
    def stats(self) -> IOStats:
        return self._meter.stats

    @property
    def size(self) -> int:
        return len(self._buf)

    def allocate(self, nbytes: int) -> int:
        if nbytes < 0:
            raise ValueError(f"cannot allocate {nbytes} bytes")
        offset = len(self._buf)
        self._buf.extend(b"\x00" * nbytes)
        return offset

    def write(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if offset < 0 or end > len(self._buf):
            raise ValueError(
                f"write [{offset}, {end}) outside allocated region of {len(self._buf)} bytes"
            )
        self._buf[offset:end] = data
        self._meter.record_write(offset, len(data))

    def read(self, offset: int, nbytes: int) -> bytes:
        end = offset + nbytes
        if offset < 0 or nbytes < 0 or end > len(self._buf):
            raise ValueError(
                f"read [{offset}, {end}) outside allocated region of {len(self._buf)} bytes"
            )
        self._meter.record_read(offset, nbytes)
        return bytes(self._buf[offset:end])

    def peek(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy, *unmetered* read-only view of ``[offset, offset+nbytes)``.

        The escape hatch the read coalescer is built on: a caller may
        fetch one large extent without charging the meter, then replay
        the exact charge sequence the uncoalesced reads would have
        issued via :meth:`charge_read`.  Splitting data movement from
        accounting this way keeps the modeled clock bit-identical while
        the wall clock sees one large transfer.

        Only the raw devices expose ``peek``; fault-injecting, hedging,
        and caching wrappers deliberately do not (their per-read
        behavior — fault-plan RNG draws, hedge timing, cache hits — is
        defined per read call, so coalescing around them would change
        semantics).  Callers must feature-test with ``hasattr``.
        """
        end = offset + nbytes
        if offset < 0 or nbytes < 0 or end > len(self._buf):
            raise ValueError(
                f"peek [{offset}, {end}) outside allocated region of {len(self._buf)} bytes"
            )
        return memoryview(self._buf)[offset:end].toreadonly()

    def charge_read(self, offset: int, nbytes: int) -> None:
        """Meter a read of ``[offset, offset+nbytes)`` without moving data.

        Companion to :meth:`peek`: charges blocks, bytes, seeks, and the
        sequential-head position exactly as :meth:`read` would.
        """
        end = offset + nbytes
        if offset < 0 or nbytes < 0 or end > len(self._buf):
            raise ValueError(
                f"charge_read [{offset}, {end}) outside allocated region of "
                f"{len(self._buf)} bytes"
            )
        self._meter.record_read(offset, nbytes)

    def truncate(self, nbytes: int) -> None:
        """Shrink the device to ``nbytes``, discarding the tail.

        Public damage-injection API for tests and fault drills: a
        truncated store is how a half-copied or interrupted layout
        manifests in the wild.  Subsequent reads past ``nbytes`` raise
        ``ValueError`` exactly like reads past the allocated region.
        """
        if nbytes < 0 or nbytes > len(self._buf):
            raise ValueError(
                f"cannot truncate to {nbytes} bytes (store holds {len(self._buf)})"
            )
        del self._buf[nbytes:]

    def reset_stats(self) -> None:
        """Zero the counters and forget the head position."""
        self._meter.stats.reset()
        self._meter._next_sequential_block = -1
