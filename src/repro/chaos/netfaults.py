"""Seeded network fault injection for the modeled interconnect.

The paper's cluster exchanges extracted triangles and composited tile
regions over a real interconnect, yet until this module every modeled
message was implicitly perfect.  :class:`NetworkFaultPlan` closes that
gap: a frozen, seeded description of per-link message faults
(drop / duplicate / reorder / delay) plus timed **partition windows**
(split-brain between node groups and the coordinator), executed by a
mutable :class:`NetworkSession` that the cluster consults on every
message path — ``direct_send`` tile contributions, node→coordinator
result returns, hedged/replica reads, and elastic migration traffic.

Design rules, mirroring the storage-fault layer (`repro.io.faults`):

* **Empty plan == no plan.**  ``SimulatedCluster.install_network_faults``
  refuses to create a session for an empty plan, so the healthy path
  never draws an RNG value, never emits a trace instant, and stays
  byte-identical to a build without this module.
* **Deterministic.**  One ``random.Random(seed)`` stream advanced in
  message order; a fixed message sequence produces a fixed fault
  sequence, so chaos trials replay exactly from their seed.
* **Never silently wrong.**  A message that cannot be delivered within
  the retry budget is *lost*, and every consumer is required to surface
  that loss (degraded result, aborted migration, skipped replica host)
  — reordered messages are resequenced (modeled as added delay), so a
  composite built from delivered contributions is bit-identical to the
  fault-free one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.obs.tracer import NULL_TRACER

__all__ = [
    "COORDINATOR",
    "Delivery",
    "LinkFaults",
    "NetStats",
    "NetworkFaultPlan",
    "NetworkSession",
    "PartitionWindow",
]

#: Logical endpoint id of the coordinator / display front-end.  Node
#: ranks are >= 0; the coordinator sits outside the rank space.
COORDINATOR = -1


@dataclass(frozen=True)
class LinkFaults:
    """Per-message fault probabilities on one (or every) link.

    Rates are independent per message: ``drop_rate`` loses the message
    (the sender may retry), ``dup_rate`` delivers it twice (consumers
    must be idempotent; duplicate bytes are charged to the wire),
    ``reorder_rate`` delivers it out of order (modeled as a
    resequencing delay of ``delay_seconds`` — the transport reassembles,
    so payload order never changes), and ``delay_rate`` adds
    ``delay_seconds`` of modeled latency.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "reorder_rate", "delay_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    @property
    def empty(self) -> bool:
        return not (self.drop_rate or self.dup_rate or self.reorder_rate
                    or self.delay_rate)

    def as_dict(self) -> dict:
        return {
            "drop_rate": self.drop_rate, "dup_rate": self.dup_rate,
            "reorder_rate": self.reorder_rate, "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
        }


@dataclass(frozen=True)
class PartitionWindow:
    """A timed split-brain: during ``[start, start + duration)`` only
    endpoints in the same group can exchange messages.

    ``groups`` are disjoint tuples of endpoint ids; an id not listed in
    any group (newly joined nodes, or the coordinator when omitted)
    implicitly belongs to group 0 — put :data:`COORDINATOR` in a
    minority group to cut the coordinator off instead.
    """

    start: float
    duration: float
    groups: "tuple[tuple[int, ...], ...]"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if len(self.groups) < 2:
            raise ValueError("a partition needs >= 2 groups")
        seen: "set[int]" = set()
        for g in self.groups:
            for n in g:
                if n in seen:
                    raise ValueError(f"endpoint {n} appears in two groups")
                seen.add(n)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end

    def separates(self, a: int, b: int) -> bool:
        return _separates(self.groups, a, b)

    def as_dict(self) -> dict:
        return {"start": self.start, "duration": self.duration,
                "groups": [list(g) for g in self.groups]}


def _separates(groups, a: int, b: int) -> bool:
    """True when endpoints ``a`` and ``b`` land in different groups
    (unlisted endpoints default to group 0)."""

    def group_of(n: int) -> int:
        for gi, g in enumerate(groups):
            if n in g:
                return gi
        return 0

    return group_of(a) != group_of(b)


@dataclass(frozen=True)
class NetworkFaultPlan:
    """Frozen, seeded description of every network fault to inject.

    ``default`` applies to every link; ``link_overrides`` pins a
    specific ``(src, dst)`` pair to its own :class:`LinkFaults` (links
    are directed).  ``partitions`` are timed windows honoured by
    callers that carry a modeled ``now`` (elastic migration) or by the
    serving loop's partition overlays.  ``max_retries`` bounds the
    sender-side redelivery attempts per message; each retry charges
    ``retry_backoff * 2**attempt`` modeled seconds.
    """

    seed: int = 0
    default: LinkFaults = field(default_factory=LinkFaults)
    link_overrides: "tuple[tuple[tuple[int, int], LinkFaults], ...]" = ()
    partitions: "tuple[PartitionWindow, ...]" = ()
    max_retries: int = 3
    retry_backoff: float = 5e-4

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )

    @property
    def empty(self) -> bool:
        """True when installing this plan cannot change any behavior."""
        return (
            self.default.empty
            and all(lf.empty for _, lf in self.link_overrides)
            and not self.partitions
        )

    def faults_for(self, src: int, dst: int) -> LinkFaults:
        for (a, b), lf in self.link_overrides:
            if (a, b) == (src, dst):
                return lf
        return self.default

    def session(self) -> "NetworkSession | None":
        """A fresh mutable session, or None for an empty plan."""
        return None if self.empty else NetworkSession(self)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "default": self.default.as_dict(),
            "link_overrides": [
                {"src": a, "dst": b, "faults": lf.as_dict()}
                for (a, b), lf in self.link_overrides
            ],
            "partitions": [w.as_dict() for w in self.partitions],
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
        }

    @staticmethod
    def from_dict(d: dict) -> "NetworkFaultPlan":
        return NetworkFaultPlan(
            seed=int(d.get("seed", 0)),
            default=LinkFaults(**d.get("default", {})),
            link_overrides=tuple(
                ((int(o["src"]), int(o["dst"])), LinkFaults(**o["faults"]))
                for o in d.get("link_overrides", ())
            ),
            partitions=tuple(
                PartitionWindow(
                    start=float(w["start"]), duration=float(w["duration"]),
                    groups=tuple(tuple(int(n) for n in g)
                                 for g in w["groups"]),
                )
                for w in d.get("partitions", ())
            ),
            max_retries=int(d.get("max_retries", 3)),
            retry_backoff=float(d.get("retry_backoff", 5e-4)),
        )

    def scaled(self, duration: float) -> "NetworkFaultPlan":
        """Partition windows with fractional times resolved against a
        trace ``duration`` (windows authored in [0, 1] trace fractions)."""
        if not self.partitions:
            return self
        return replace(self, partitions=tuple(
            PartitionWindow(start=w.start * duration,
                            duration=w.duration * duration, groups=w.groups)
            for w in self.partitions
        ))


@dataclass
class NetStats:
    """Session-wide message accounting (all counters monotonic)."""

    messages: int = 0
    #: Individual attempts a drop fault ate (retries may still recover).
    dropped: int = 0
    #: Messages undeliverable within the retry budget — the consumer
    #: was required to surface these (degraded result, aborted move).
    lost: int = 0
    #: Messages a partition refused without drawing the RNG.
    partition_blocked: int = 0
    duplicates: int = 0
    reordered: int = 0
    retries: int = 0
    delay_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "messages": self.messages, "dropped": self.dropped,
            "lost": self.lost,
            "partition_blocked": self.partition_blocked,
            "duplicates": self.duplicates, "reordered": self.reordered,
            "retries": self.retries,
            "delay_seconds": self.delay_seconds,
        }


@dataclass
class Delivery:
    """Outcome of one logical message (after sender-side retries)."""

    delivered: bool
    attempts: int = 1
    duplicates: int = 0
    reordered: bool = False
    delay: float = 0.0
    #: True when an active partition refused the message outright.
    blocked: bool = False


class NetworkSession:
    """Executes one :class:`NetworkFaultPlan` over a message stream.

    Mutable by design: the RNG advances once per fault draw, the active
    partition is toggled by overlay events (:meth:`set_partition` /
    :meth:`clear_partition`) or by callers passing a modeled ``now``
    (checked against the plan's timed windows), and :attr:`stats`
    accumulates what actually happened.
    """

    def __init__(self, plan: NetworkFaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.stats = NetStats()
        #: Group split installed by an overlay event, or None.
        self.active_partition: "tuple[tuple[int, ...], ...] | None" = None

    # -- partition control ---------------------------------------------

    def set_partition(self, groups) -> None:
        """Install a split-brain (overlay-event entry point)."""
        self.active_partition = tuple(tuple(int(n) for n in g) for g in groups)

    def clear_partition(self) -> None:
        self.active_partition = None

    def blocked(self, src: int, dst: int, now: "float | None" = None) -> bool:
        """True when no message can cross ``src -> dst`` right now —
        either an overlay-installed partition or (when the caller knows
        the modeled time) a timed window from the plan."""
        if self.active_partition is not None and _separates(
            self.active_partition, src, dst
        ):
            return True
        if now is not None:
            for w in self.plan.partitions:
                if w.covers(now) and w.separates(src, dst):
                    return True
        return False

    # -- the message path ----------------------------------------------

    def send(
        self, src: int, dst: int, now: "float | None" = None,
        tracer=NULL_TRACER, track: "str | None" = None, what: str = "msg",
    ) -> Delivery:
        """Attempt one logical message ``src -> dst``; returns the
        :class:`Delivery` the consumer must honour.

        A partition refuses the message without touching the RNG (a
        sender behind a partition learns nothing it could retry on);
        otherwise up to ``1 + max_retries`` attempts each draw the drop
        fault, and a delivered attempt draws duplicate / reorder /
        delay.  All modeled delay (retry backoff + fault latency) is
        returned on the delivery and accumulated in :attr:`stats`.
        """
        self.stats.messages += 1
        if self.blocked(src, dst, now=now):
            self.stats.partition_blocked += 1
            self.stats.lost += 1
            tracer.instant(
                "chaos.net.partitioned", track=track, category="chaos",
                args={"src": src, "dst": dst, "what": what},
            )
            return Delivery(delivered=False, attempts=0, blocked=True)

        lf = self.plan.faults_for(src, dst)
        delay = 0.0
        attempts = 0
        for attempt in range(self.plan.max_retries + 1):
            attempts += 1
            if lf.drop_rate and self.rng.random() < lf.drop_rate:
                self.stats.dropped += 1
                if attempt < self.plan.max_retries:
                    self.stats.retries += 1
                    delay += self.plan.retry_backoff * (2.0 ** attempt)
                continue
            duplicates = 0
            reordered = False
            if lf.dup_rate and self.rng.random() < lf.dup_rate:
                duplicates = 1
                self.stats.duplicates += 1
            if lf.reorder_rate and self.rng.random() < lf.reorder_rate:
                reordered = True
                self.stats.reordered += 1
                delay += lf.delay_seconds
            if lf.delay_rate and self.rng.random() < lf.delay_rate:
                delay += lf.delay_seconds
            if delay or duplicates or reordered or attempts > 1:
                self.stats.delay_seconds += delay
                tracer.instant(
                    "chaos.net.fault", track=track, category="chaos",
                    args={"src": src, "dst": dst, "what": what,
                          "attempts": attempts, "duplicates": duplicates,
                          "reordered": reordered, "delay": delay},
                )
            return Delivery(
                delivered=True, attempts=attempts, duplicates=duplicates,
                reordered=reordered, delay=delay,
            )
        self.stats.delay_seconds += delay
        self.stats.lost += 1
        tracer.instant(
            "chaos.net.lost", track=track, category="chaos",
            args={"src": src, "dst": dst, "what": what, "attempts": attempts},
        )
        return Delivery(delivered=False, attempts=attempts, delay=delay)
