"""Deterministic chaos engineering for the simulated cluster.

Composes every fault family the repo models — storage
(:class:`~repro.io.faults.FaultPlan`), process crashes
(:class:`~repro.io.faults.CrashSchedule`), membership
(:class:`~repro.serve.traffic.ClusterEvent` kills), elasticity
(:class:`~repro.elastic.sim.ScaleEvent`), and the network fault domain
added here (:class:`~repro.chaos.netfaults.NetworkFaultPlan`) — into
one seeded, modeled-clock event schedule, runs it through the serving
stack, asserts global invariants after every trial, and shrinks any
failing schedule to a minimal replayable repro.

Only :mod:`repro.chaos.netfaults` is imported eagerly (the cluster's
message paths depend on it); the engine, oracle registry, and shrinker
load lazily so importing :mod:`repro.parallel.cluster` stays cheap and
cycle-free.
"""

from __future__ import annotations

from repro.chaos.netfaults import (
    COORDINATOR,
    Delivery,
    LinkFaults,
    NetStats,
    NetworkFaultPlan,
    NetworkSession,
    PartitionWindow,
)

__all__ = [
    "COORDINATOR",
    "Delivery",
    "LinkFaults",
    "NetStats",
    "NetworkFaultPlan",
    "NetworkSession",
    "PartitionWindow",
    # lazy (see __getattr__):
    "ChaosEngine",
    "ChaosEvent",
    "ChaosSpec",
    "KillTrial",
    "ORACLES",
    "SCHEDULE_SCHEMA",
    "TrialContext",
    "TrialResult",
    "Violation",
    "build_schedule",
    "kill_schedule",
    "load_schedule",
    "register_oracle",
    "run_oracles",
    "save_schedule",
    "schedule_as_dicts",
    "schedule_from_dicts",
    "shrink_schedule",
    "unregister_oracle",
]

_LAZY = {
    "ChaosEngine": "repro.chaos.engine",
    "ChaosEvent": "repro.chaos.engine",
    "ChaosSpec": "repro.chaos.engine",
    "KillTrial": "repro.chaos.engine",
    "TrialResult": "repro.chaos.engine",
    "build_schedule": "repro.chaos.engine",
    "kill_schedule": "repro.chaos.engine",
    "schedule_as_dicts": "repro.chaos.engine",
    "schedule_from_dicts": "repro.chaos.engine",
    "ORACLES": "repro.chaos.invariants",
    "TrialContext": "repro.chaos.invariants",
    "Violation": "repro.chaos.invariants",
    "register_oracle": "repro.chaos.invariants",
    "run_oracles": "repro.chaos.invariants",
    "unregister_oracle": "repro.chaos.invariants",
    "SCHEDULE_SCHEMA": "repro.chaos.shrink",
    "load_schedule": "repro.chaos.shrink",
    "save_schedule": "repro.chaos.shrink",
    "shrink_schedule": "repro.chaos.shrink",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.chaos' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
