"""Failing-seed shrinking: reduce a chaos schedule to a minimal repro.

When a trial violates an oracle, the raw schedule is rarely the story —
most of its events are bystanders.  :func:`shrink_schedule` runs the
classic ddmin delta-debugging loop (Zeller & Hildebrandt) over the
event list: partition the events into chunks, try dropping each chunk
(and each chunk's complement), keep any reduction that still fails,
and refine the granularity until no single event can be removed.  The
result is **1-minimal**: removing any one remaining event makes the
failure disappear.

The failing predicate is injected, which keeps the minimizer pure and
unit-testable; in production it is "re-run the trial with this
schedule and see whether any oracle still fires" — deterministic
because trials are pure functions of ``(spec, schedule)``.

Minimal schedules are persisted as replayable JSON
(:func:`save_schedule` / :func:`load_schedule`, schema
``repro-chaos/1``) so ``repro chaos --replay FILE`` can re-run the
exact repro later, on another machine, against a fixed bug.
"""

from __future__ import annotations

import json
from pathlib import Path

from .engine import (
    ChaosSpec, schedule_as_dicts, schedule_from_dicts,
)

#: Schema tag of persisted repro schedules.
SCHEDULE_SCHEMA = "repro-chaos/1"


def shrink_schedule(schedule, failing, max_rounds: int = 64):
    """ddmin: the smallest sub-schedule for which ``failing`` still holds.

    Parameters
    ----------
    schedule:
        The original failing event list (any sequence; order is
        preserved in every candidate).
    failing:
        ``callable(candidate_list) -> bool`` — True when the candidate
        still reproduces the failure.  Must be deterministic.
    max_rounds:
        Safety bound on ddmin iterations (each iteration tries every
        chunk and complement at the current granularity).

    Returns
    -------
    (minimal, n_probes):
        The 1-minimal failing schedule and how many times ``failing``
        was evaluated (the cost knob a soak budget cares about).
    """
    events = list(schedule)
    probes = 0

    def check(candidate) -> bool:
        nonlocal probes
        probes += 1
        return bool(failing(list(candidate)))

    if not check(events):
        raise ValueError("shrink_schedule: the full schedule must fail")
    if not events:
        return [], probes

    n = 2
    for _ in range(max_rounds):
        if len(events) <= 1:
            break
        size = len(events) / n
        chunks = [
            events[round(i * size):round((i + 1) * size)] for i in range(n)
        ]
        reduced = False
        for i, chunk in enumerate(chunks):
            if not chunk:
                continue
            complement = [e for j, c in enumerate(chunks) if j != i for e in c]
            if complement and check(complement):
                events = complement
                n = max(n - 1, 2)
                reduced = True
                break
            if len(chunks) > 2 and check(chunk):
                events = list(chunk)
                n = 2
                reduced = True
                break
        if not reduced:
            if n >= len(events):
                break
            n = min(len(events), 2 * n)
    return events, probes


def save_schedule(
    path, spec: ChaosSpec, schedule, violations=(), probes: int = 0,
) -> Path:
    """Write a replayable minimal-repro schedule as sorted-key JSON."""
    payload = {
        "schema": SCHEDULE_SCHEMA,
        "spec": spec.as_dict(),
        "schedule": schedule_as_dicts(schedule),
        "violations": [
            v.as_dict() if hasattr(v, "as_dict") else dict(v)
            for v in violations
        ],
        "shrink_probes": probes,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_schedule(path):
    """Read a repro file back as ``(spec, schedule, payload)``."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != SCHEDULE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEDULE_SCHEMA!r}, got {schema!r}"
        )
    spec = ChaosSpec.from_dict(payload["spec"])
    schedule = schedule_from_dicts(payload["schedule"])
    return spec, schedule, payload
