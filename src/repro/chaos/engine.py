"""The deterministic chaos engine: composed fault schedules over one seed.

:class:`ChaosEngine` turns a :class:`ChaosSpec` — one integer seed plus
the knobs of the fault universe — into a fully materialised
:class:`ChaosEvent` schedule (crash kills, storage fault bursts,
membership scale waypoints, network partitions), runs a serving workload
against an :class:`~repro.elastic.cluster.ElasticCluster` with that
schedule applied, and asserts every registered invariant oracle
(:mod:`repro.chaos.invariants`) on the outcome.

Design rules, shared with the rest of the repo's simulation stack:

* **One RNG per concern.**  The schedule is drawn from a single
  ``random.Random(spec.seed)`` in a fixed order; the traffic trace uses
  its own seed; the network fault session another.  A trial is a pure
  function of its spec.
* **Times are fractions.**  :attr:`ChaosEvent.time` is a fraction of
  the trace duration, not modeled seconds — a shrunk schedule replays
  against a rebuilt scenario whose absolute duration may differ (the
  service unit is derived from the cluster), and fractions survive
  that.
* **Kills before drains.**  Kill times are drawn early (before the
  first scale waypoint can fire) so a scripted scale-in never drains a
  node that a later kill would then double-fault; the composition stays
  well-defined for every seed.
* **Chaos is observable, never silent.**  Every event lands in the
  trace as an overlay/waypoint; the oracles then check the workload's
  *outcome*, not the engine's bookkeeping.

The failing-schedule shrinker (:mod:`repro.chaos.shrink`) consumes the
same :class:`ChaosEvent` list, which is why events carry plain-data
``args`` and JSON round-trip via :func:`schedule_as_dicts` /
:func:`schedule_from_dicts`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.io.faults import FaultPlan

from .netfaults import COORDINATOR, LinkFaults, NetworkFaultPlan

#: Event kinds the engine knows how to apply, in scheduling order.
EVENT_KINDS = ("kill", "faults", "scale", "partition", "partition-heal")


@dataclass(frozen=True)
class ChaosSpec:
    """Everything that shapes one chaos trial, keyed by one seed.

    The workload mirrors the elastic soak (a small analytic sphere, a
    three-tenant burst trace, service-unit scaling) at reduced duration
    so a CI soak fits hundreds of trials in its time cap.

    Parameters
    ----------
    seed:
        Master seed: schedule draws, the traffic trace, and the network
        session all derive from it.
    shape, metacell_shape, nodes, n_stripes:
        Cluster geometry (see :class:`~repro.elastic.cluster.ElasticCluster`).
    duration_units, rate_units, overload:
        Trace length in service units, base arrival rate in requests
        per unit, and the burst multiplier over the middle third.
    n_kills, n_fault_bursts, n_scales, n_partitions:
        How many events of each kind the schedule composes.
    scale_choices:
        Node counts a scale waypoint may target.
    partition_length:
        Partition duration as a fraction of the trace.
    drop_rate, dup_rate, reorder_rate, delay_rate, delay_seconds:
        Default per-link :class:`~repro.chaos.netfaults.LinkFaults`;
        all-zero disables the network session entirely (byte-identical
        to a pre-chaos run).
    net_retries:
        Transport retry budget per message.
    result_cache_bytes:
        λ-keyed result-cache budget (> 0 keeps the stale-cache oracle
        meaningful under epoch churn).
    """

    seed: int = 0
    shape: "tuple[int, int, int]" = (20, 20, 20)
    metacell_shape: "tuple[int, int, int]" = (5, 5, 5)
    nodes: int = 4
    n_stripes: int = 12
    duration_units: float = 30.0
    rate_units: float = 1.5
    overload: float = 3.0
    n_kills: int = 1
    n_fault_bursts: int = 1
    n_scales: int = 1
    n_partitions: int = 1
    scale_choices: "tuple[int, ...]" = (3, 5, 6)
    partition_length: float = 0.08
    drop_rate: float = 0.03
    dup_rate: float = 0.01
    reorder_rate: float = 0.01
    delay_rate: float = 0.05
    delay_seconds: float = 2e-4
    net_retries: int = 3
    result_cache_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.duration_units <= 0 or self.rate_units <= 0:
            raise ValueError("duration_units and rate_units must be > 0")
        if min(self.n_kills, self.n_fault_bursts, self.n_scales,
               self.n_partitions) < 0:
            raise ValueError("event counts must be >= 0")
        if not 0.0 < self.partition_length < 1.0:
            raise ValueError(
                f"partition_length must be in (0, 1), got {self.partition_length}"
            )

    @property
    def link_faults(self) -> LinkFaults:
        return LinkFaults(
            drop_rate=self.drop_rate, dup_rate=self.dup_rate,
            reorder_rate=self.reorder_rate, delay_rate=self.delay_rate,
            delay_seconds=self.delay_seconds,
        )

    def network_plan(self) -> "NetworkFaultPlan | None":
        """The trial's network fault plan, or None when all rates are 0."""
        plan = NetworkFaultPlan(
            seed=self.seed + 1, default=self.link_faults,
            max_retries=self.net_retries,
        )
        return None if plan.empty else plan

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "shape": list(self.shape),
            "metacell_shape": list(self.metacell_shape),
            "nodes": self.nodes, "n_stripes": self.n_stripes,
            "duration_units": self.duration_units,
            "rate_units": self.rate_units, "overload": self.overload,
            "n_kills": self.n_kills, "n_fault_bursts": self.n_fault_bursts,
            "n_scales": self.n_scales, "n_partitions": self.n_partitions,
            "scale_choices": list(self.scale_choices),
            "partition_length": self.partition_length,
            "drop_rate": self.drop_rate, "dup_rate": self.dup_rate,
            "reorder_rate": self.reorder_rate,
            "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
            "net_retries": self.net_retries,
            "result_cache_bytes": self.result_cache_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosSpec":
        d = dict(d)
        for key in ("shape", "metacell_shape", "scale_choices"):
            if key in d:
                d[key] = tuple(d[key])
        return cls(**d)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault, at a *fractional* time of the trace.

    ``args`` is plain JSON data: ``{"rank": int}`` for kills,
    ``{"rank", "transient_rate", "corruption_rate"}`` for storage fault
    bursts, ``{"nodes": int}`` for scale waypoints, and
    ``{"isolated": [stripe-slots...]}`` for partitions (the listed
    slots lose the coordinator and everyone else; see
    :func:`repro.chaos.netfaults.PartitionWindow`).
    """

    time: float
    kind: str
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.time <= 1.0:
            raise ValueError(f"event time must be a fraction, got {self.time}")

    def as_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosEvent":
        return cls(time=d["time"], kind=d["kind"], args=dict(d.get("args", {})))


def schedule_as_dicts(schedule) -> "list[dict]":
    return [ev.as_dict() for ev in schedule]


def schedule_from_dicts(rows) -> "list[ChaosEvent]":
    return [ChaosEvent.from_dict(r) for r in rows]


def build_schedule(spec: ChaosSpec) -> "list[ChaosEvent]":
    """Draw the composed event schedule from ``random.Random(spec.seed)``.

    Draw order is fixed (kills, fault bursts, scales, partitions) so a
    spec field that zeroes one class of events does not perturb the
    draws of the others *earlier* in the order — useful when bisecting
    a failure by fault domain.
    """
    rng = random.Random(spec.seed)
    events: "list[ChaosEvent]" = []
    for _ in range(spec.n_kills):
        events.append(ChaosEvent(
            time=rng.uniform(0.15, 0.30), kind="kill",
            args={"rank": rng.randrange(spec.nodes)},
        ))
    for _ in range(spec.n_fault_bursts):
        events.append(ChaosEvent(
            time=rng.uniform(0.10, 0.80), kind="faults",
            args={
                "rank": rng.randrange(spec.nodes),
                "transient_rate": rng.choice((0.05, 0.15, 0.3)),
                "corruption_rate": rng.choice((0.0, 0.02, 0.05)),
            },
        ))
    for _ in range(spec.n_scales):
        events.append(ChaosEvent(
            time=rng.uniform(0.35, 0.80), kind="scale",
            args={"nodes": rng.choice(spec.scale_choices)},
        ))
    for _ in range(spec.n_partitions):
        start = rng.uniform(0.20, 0.70)
        n_isolated = rng.randrange(1, max(2, spec.n_stripes // 3))
        first = rng.randrange(spec.n_stripes)
        isolated = sorted(
            (first + i) % spec.n_stripes for i in range(n_isolated)
        )
        events.append(ChaosEvent(
            time=start, kind="partition", args={"isolated": isolated},
        ))
        events.append(ChaosEvent(
            time=min(start + spec.partition_length, 1.0),
            kind="partition-heal", args={},
        ))
    events.sort(key=lambda e: (e.time, EVENT_KINDS.index(e.kind)))
    return events


@dataclass
class TrialResult:
    """Outcome of one chaos trial: workload stats plus oracle verdicts."""

    seed: int
    n_requests: int = 0
    states: dict = field(default_factory=dict)
    violations: "list" = field(default_factory=list)
    schedule: "list[ChaosEvent]" = field(default_factory=list)
    migrations: int = 0
    migrations_aborted: int = 0
    final_epoch: int = 0
    final_nodes: int = 0
    net_stats: dict = field(default_factory=dict)
    modeled_horizon: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "ok": self.ok,
            "n_requests": self.n_requests, "states": dict(self.states),
            "violations": [v.as_dict() for v in self.violations],
            "schedule": schedule_as_dicts(self.schedule),
            "migrations": self.migrations,
            "migrations_aborted": self.migrations_aborted,
            "final_epoch": self.final_epoch,
            "final_nodes": self.final_nodes,
            "net_stats": dict(self.net_stats),
            "modeled_horizon": self.modeled_horizon,
        }


# Reference triangle counts are a function of (volume, partitioning,
# isovalue) only — not of node count, faults, or schedule — so one
# static-cluster run per geometry serves every trial of a soak.
_REFERENCE_CACHE: "dict[tuple, dict[float, int]]" = {}


class ChaosEngine:
    """Builds, runs, and judges chaos trials (see the module docstring).

    One engine instance may run many trials; per-geometry reference
    results are cached process-wide.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) accumulates ``chaos.*``
    counters across every trial the engine runs.
    """

    def __init__(self, metrics=None) -> None:
        self.metrics = metrics

    # -- scenario construction ------------------------------------------

    def _build_cluster(self, spec: ChaosSpec):
        from repro.elastic import ElasticCluster
        from repro.grid.datasets import sphere_field
        from repro.io.cache import CacheOptions

        cache = (
            CacheOptions(result_cache_bytes=spec.result_cache_bytes)
            if spec.result_cache_bytes > 0 else None
        )
        return ElasticCluster(
            sphere_field(spec.shape), nodes=spec.nodes,
            n_stripes=spec.n_stripes, metacell_shape=spec.metacell_shape,
            cache=cache,
        )

    def _isovalues(self, cluster, n: int = 4) -> "tuple[float, ...]":
        endpoints = cluster.datasets[0].tree.endpoints
        lo, hi = float(min(endpoints)), float(max(endpoints))
        return tuple(lo + (hi - lo) * (i + 1) / (n + 1) for i in range(n))

    def reference_triangles(self, spec: ChaosSpec, isovalues) -> "dict[float, int]":
        """Fault-free ground truth per isovalue (static cluster,
        replication 1, no chaos), cached per geometry."""
        key = (spec.shape, spec.metacell_shape, spec.nodes,
               spec.n_stripes, tuple(isovalues))
        if key not in _REFERENCE_CACHE:
            from repro.grid.datasets import sphere_field
            from repro.parallel.cluster import SimulatedCluster

            static = SimulatedCluster(
                sphere_field(spec.shape), spec.nodes,
                metacell_shape=spec.metacell_shape, replication=1,
            )
            _REFERENCE_CACHE[key] = {
                lam: int(static.extract(lam).n_triangles) for lam in isovalues
            }
        return _REFERENCE_CACHE[key]

    def _scenario(self, spec: ChaosSpec, cluster, schedule):
        """Materialise (trace, serve config, scale plan) with the
        schedule's events mapped onto absolute trace time."""
        from repro.elastic import ScaleEvent
        from repro.serve import (
            BrownoutConfig, BurstWindow, ClusterEvent, ServeConfig,
            TenantSpec, TrafficConfig, generate_trace,
        )

        isovalues = self._isovalues(cluster)
        unit = max(cluster.estimate_extract_time(lam) for lam in isovalues)
        duration = spec.duration_units * unit
        base_rate = spec.rate_units / unit
        tenants = (
            TenantSpec("gold-a", tier="gold", arrival_share=0.3,
                       rate=base_rate, burst=8, deadline_budget=4.0 * unit),
            TenantSpec("silver-b", tier="silver", arrival_share=0.4,
                       rate=base_rate, burst=8, deadline_budget=6.0 * unit),
            TenantSpec("bulk-c", tier="bulk", arrival_share=0.3,
                       rate=base_rate, burst=8, deadline_budget=12.0 * unit),
        )
        overlays: "list[ClusterEvent]" = []
        plan: "list[ScaleEvent]" = []
        for ev in schedule:
            t = ev.time * duration
            if ev.kind == "kill":
                overlays.append(ClusterEvent(time=t, action="kill",
                                             rank=ev.args["rank"]))
            elif ev.kind == "faults":
                overlays.append(ClusterEvent(
                    time=t, action="faults", rank=ev.args["rank"],
                    plan=FaultPlan(
                        seed=spec.seed + 17,
                        transient_error_rate=ev.args.get("transient_rate", 0.1),
                        corruption_rate=ev.args.get("corruption_rate", 0.0),
                    ),
                ))
            elif ev.kind == "scale":
                plan.append(ScaleEvent(time=t, nodes=ev.args["nodes"]))
            elif ev.kind == "partition":
                isolated = tuple(ev.args.get("isolated", ()))
                overlays.append(ClusterEvent(
                    time=t, action="partition", rank=-1,
                    groups=((COORDINATOR,), isolated),
                ))
            elif ev.kind == "partition-heal":
                overlays.append(ClusterEvent(
                    time=t, action="partition-heal", rank=-1,
                ))
        traffic = TrafficConfig(
            duration=duration, base_rate=base_rate, isovalues=isovalues,
            seed=spec.seed + 2,
            bursts=(BurstWindow(start=duration / 3.0,
                                duration=duration / 3.0,
                                factor=spec.overload),),
            overlays=tuple(overlays),
        )
        config = ServeConfig(
            tenants=tenants, n_executors=2, max_queue_depth=32,
            quantum=unit / 5.0,
            brownout=BrownoutConfig(eval_interval=unit),
        )
        return (generate_trace(traffic, tenants), config, tuple(plan),
                isovalues, unit)

    # -- running ---------------------------------------------------------

    def run_trial(
        self, spec: ChaosSpec, schedule: "list[ChaosEvent] | None" = None,
        oracles=None,
    ) -> TrialResult:
        """Run one trial and judge it: build the schedule (unless an
        explicit one is replayed/shrunk in), run the workload, assert
        every oracle.  Never raises on a violation — the verdicts ride
        in :attr:`TrialResult.violations`."""
        from repro.elastic import ElasticController, Rebalancer
        from repro.serve import QueryServer

        from .invariants import TrialContext, run_oracles

        if schedule is None:
            schedule = build_schedule(spec)
        cluster = self._build_cluster(spec)
        session = cluster.install_network_faults(spec.network_plan())
        trace, config, plan, isovalues, unit = self._scenario(
            spec, cluster, schedule
        )
        controller = ElasticController(
            cluster, rebalancer=Rebalancer(cluster, max_io_fraction=0.5),
            plan=plan, balance_isovalues=isovalues,
        )
        report = QueryServer(cluster, config, controller=controller).serve(trace)
        controller.finish(trace.horizon)

        reference = self.reference_triangles(spec, isovalues)
        ctx = TrialContext(
            spec=spec, schedule=schedule, cluster=cluster,
            controller=controller, trace=trace, report=report,
            reference=reference,
        )
        violations = run_oracles(ctx, names=oracles)
        result = TrialResult(
            seed=spec.seed,
            n_requests=report.n_requests,
            states={s: len(report.by_state(s))
                    for s in ("ok", "degraded", "shed", "failed")},
            violations=violations,
            schedule=list(schedule),
            migrations=len(cluster.migrations),
            migrations_aborted=len(cluster.migrations_aborted),
            final_epoch=cluster.ownership.epoch,
            final_nodes=len(cluster.membership.target_ids()),
            net_stats=session.stats.as_dict() if session is not None else {},
            modeled_horizon=trace.horizon,
        )
        self._publish(result)
        return result

    def run_trials(self, base: ChaosSpec, trials: int,
                   oracles=None) -> "list[TrialResult]":
        """Run ``trials`` independent trials seeded ``base.seed + i``."""
        return [
            self.run_trial(replace(base, seed=base.seed + i), oracles=oracles)
            for i in range(trials)
        ]

    def _publish(self, result: TrialResult) -> None:
        if self.metrics is None:
            return
        self.metrics.inc("chaos.trials")
        if not result.ok:
            self.metrics.inc("chaos.trials_violating")
        self.metrics.inc("chaos.violations", len(result.violations))
        self.metrics.inc("chaos.events", len(result.schedule))
        self.metrics.inc("chaos.migrations_aborted",
                         result.migrations_aborted)
        for k, v in result.net_stats.items():
            self.metrics.inc(f"chaos.net.{k}", v)


# -- crash-kill schedules (tools/crash_kill_harness.py) ---------------------


@dataclass(frozen=True)
class KillTrial:
    """One drawn crash-kill trial: where to kill, how hard, whether a
    second kill lands during recovery replay."""

    trial: int
    config_index: int
    kill_at: int
    hard: bool
    double: bool
    second_kill: "int | None" = None


def kill_schedule(
    seed: int, trials: int, point_counts, hard_every: int = 3,
    double_every: int = 5,
) -> "list[KillTrial]":
    """Draw the crash-kill schedule the crash harness replays.

    This is the single source of kill randomness: one
    ``numpy.random.default_rng(seed)`` advanced in a fixed per-trial
    order (config index, kill point, then — only for double-kill
    trials — the second kill offset), so adding modes never perturbs
    earlier draws.  ``point_counts[i]`` is the number of progress
    points in config ``i``.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    out: "list[KillTrial]" = []
    for t in range(trials):
        ci = int(rng.integers(len(point_counts)))
        n_points = int(point_counts[ci])
        kill_at = int(rng.integers(n_points))
        hard = hard_every > 0 and t % hard_every == hard_every - 1
        double = (
            not hard and double_every > 0
            and t % double_every == double_every - 1
        )
        second_kill = None
        if double:
            second_kill = int(rng.integers(max(1, n_points - kill_at)))
        out.append(KillTrial(
            trial=t, config_index=ci, kill_at=kill_at, hard=hard,
            double=double, second_kill=second_kill,
        ))
    return out
