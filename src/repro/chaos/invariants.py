"""Invariant oracles asserted after every chaos trial.

An oracle is a named function ``(TrialContext) -> list[Violation]``
registered in :data:`ORACLES`.  The chaos engine runs every registered
oracle after each trial; a trial passes only when *all* oracles return
empty.  Oracles judge the workload's **outcome** — they never inspect
the engine's own bookkeeping, so a bug in scheduling cannot mask a bug
in the system under test.

The stock catalog (one per correctness contract the repo already
documents in ``docs/robustness.md``):

``ok-bit-identity``
    Every request that terminated ``ok`` produced exactly the
    fault-free reference triangle count for its isovalue — through any
    number of kills, migrations, retries, and partitions.
``terminal-states``
    Every request reached exactly one terminal state, the record stream
    matches the trace's request ids one-to-one, and the per-state
    counts sum to the request count (nothing dropped, nothing
    double-terminated).
``no-stale-cache``
    After epoch churn, the λ-keyed result cache holds only entries
    fenced to the *final* ownership epoch — a stale hit would be a
    silent wrong answer, the one thing chaos must never produce.
``balance``
    The paper's per-λ load-balance bound holds after every completed
    rebalance and in the final membership state.
``coverage``
    Coverage accounting is consistent with the terminal state:
    ``ok`` ⇒ full coverage, ``shed`` ⇒ zero, everything in ``[0, 1]``.
``no-shm-leaks``
    No orphaned shared-memory segments survive the trial.

Test-only oracles may be registered (and must be unregistered) via
:func:`register_oracle` / :func:`unregister_oracle` — the planted-bug
acceptance test does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Terminal states a served request may end in (mirrors
#: ``repro.serve.TERMINAL_STATES``; restated here so stub contexts in
#: oracle unit tests need no serve import).
TERMINAL_STATES = ("ok", "degraded", "shed", "failed")


@dataclass(frozen=True)
class Violation:
    """One oracle failure: which contract broke and how."""

    oracle: str
    message: str
    request_id: "int | None" = None

    def as_dict(self) -> dict:
        d = {"oracle": self.oracle, "message": self.message}
        if self.request_id is not None:
            d["request_id"] = self.request_id
        return d


@dataclass
class TrialContext:
    """Everything an oracle may inspect about a finished trial.

    Oracles access fields defensively (``getattr`` with defaults) so
    unit tests can judge hand-built stub contexts without running a
    full workload.
    """

    spec: object = None
    schedule: "list" = field(default_factory=list)
    cluster: object = None
    controller: object = None
    trace: object = None
    report: object = None
    reference: "dict" = field(default_factory=dict)


#: The oracle registry: name -> callable(ctx) -> list[Violation].
ORACLES: "dict[str, object]" = {}


def register_oracle(name: str, fn=None):
    """Register an oracle (usable as ``@register_oracle("name")``)."""
    if fn is None:
        def deco(f):
            ORACLES[name] = f
            return f
        return deco
    ORACLES[name] = fn
    return fn


def unregister_oracle(name: str) -> None:
    ORACLES.pop(name, None)


def run_oracles(ctx: TrialContext, names=None) -> "list[Violation]":
    """Run the named oracles (default: all registered) in sorted-name
    order and concatenate their violations."""
    selected = sorted(ORACLES) if names is None else list(names)
    out: "list[Violation]" = []
    for name in selected:
        out.extend(ORACLES[name](ctx))
    return out


# -- the stock catalog ------------------------------------------------------


@register_oracle("ok-bit-identity")
def _ok_bit_identity(ctx) -> "list[Violation]":
    report = getattr(ctx, "report", None)
    reference = getattr(ctx, "reference", None) or {}
    if report is None or not reference:
        return []
    out = []
    for r in report.by_state("ok"):
        want = reference.get(r.lam)
        if want is not None and r.triangles != want:
            out.append(Violation(
                "ok-bit-identity",
                f"ok request {r.request_id} (λ={r.lam}) returned "
                f"{r.triangles} triangles, reference is {want}",
                request_id=r.request_id,
            ))
    return out


@register_oracle("terminal-states")
def _terminal_states(ctx) -> "list[Violation]":
    report = getattr(ctx, "report", None)
    trace = getattr(ctx, "trace", None)
    if report is None:
        return []
    out = []
    for r in report.records:
        if r.state not in TERMINAL_STATES:
            out.append(Violation(
                "terminal-states",
                f"request {r.request_id} ended in non-terminal state "
                f"{r.state!r}",
                request_id=r.request_id,
            ))
    counts = sum(len(report.by_state(s)) for s in TERMINAL_STATES)
    if counts != report.n_requests:
        out.append(Violation(
            "terminal-states",
            f"state counts sum to {counts}, expected {report.n_requests}",
        ))
    if trace is not None:
        got = [r.request_id for r in report.records]
        want = [q.request_id for q in trace.requests]
        if got != want:
            out.append(Violation(
                "terminal-states",
                f"record ids diverge from trace: {len(got)} records for "
                f"{len(want)} requests",
            ))
    return out


@register_oracle("no-stale-cache")
def _no_stale_cache(ctx) -> "list[Violation]":
    cluster = getattr(ctx, "cluster", None)
    cache = getattr(cluster, "result_cache", None)
    if cache is None:
        return []
    epoch = cluster.ownership.epoch
    out = []
    for key in list(cache._lru):
        if key[2] != epoch:
            out.append(Violation(
                "no-stale-cache",
                f"result-cache entry {key[:3]} outlived epoch bump to "
                f"{epoch}",
            ))
    return out


@register_oracle("balance")
def _balance(ctx) -> "list[Violation]":
    controller = getattr(ctx, "controller", None)
    cluster = getattr(ctx, "cluster", None)
    if controller is None or cluster is None:
        return []
    out = []
    for ev in getattr(controller, "rebalance_events", []):
        if not ev.balance.ok:
            out.append(Violation(
                "balance",
                f"load-balance bound violated after rebalance finished at "
                f"{ev.finished:.4f}s (epoch {ev.epoch}): spread "
                f"{ev.balance.assignment_spread}",
            ))
    from repro.elastic import check_balance

    isovalues = tuple(getattr(controller, "balance_isovalues", ()))
    final = check_balance(cluster, isovalues)
    if not final.ok:
        out.append(Violation(
            "balance",
            f"final load balance violated: spread {final.assignment_spread}",
        ))
    return out


@register_oracle("coverage")
def _coverage(ctx) -> "list[Violation]":
    report = getattr(ctx, "report", None)
    if report is None:
        return []
    out = []
    for r in report.records:
        if not 0.0 <= r.coverage <= 1.0:
            out.append(Violation(
                "coverage",
                f"request {r.request_id} has coverage {r.coverage} "
                f"outside [0, 1]",
                request_id=r.request_id,
            ))
        elif r.state == "ok" and r.coverage != 1.0:
            out.append(Violation(
                "coverage",
                f"request {r.request_id} is ok with coverage "
                f"{r.coverage} != 1",
                request_id=r.request_id,
            ))
        elif r.state == "shed" and r.coverage != 0.0:
            out.append(Violation(
                "coverage",
                f"request {r.request_id} was shed yet reports coverage "
                f"{r.coverage}",
                request_id=r.request_id,
            ))
    return out


@register_oracle("no-shm-leaks")
def _no_shm_leaks(ctx) -> "list[Violation]":
    from repro.parallel.pipeline import purge_orphan_segments

    leaked = purge_orphan_segments()
    if leaked:
        return [Violation(
            "no-shm-leaks",
            f"{len(leaked)} orphan shm segment(s) leaked: {leaked[:4]}",
        )]
    return []
