"""Command-line interface.

Exposes the preprocess-once / query-many workflow from the shell::

    repro preprocess --rm-step 250 --shape 97x97x89 --out ds/
    repro preprocess --input field.npy --out ds/
    repro info ds/
    repro query ds/ 130
    repro extract ds/ 130 --obj surface.obj
    repro render ds/ 130 --out surface.ppm --size 512 --smooth
    repro spanspace ds/

Dataset directories are the self-describing layout of
:mod:`repro.core.persistence` (bricks.bin + index.npz + meta.json).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.persistence import build_persistent_dataset, load_dataset
from repro.core.query import QueryOptions, execute_query
from repro.grid.rm_instability import rm_timestep
from repro.grid.volume import Volume
from repro.mc.backends import available_backends
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch


def _parse_shape(text: str) -> tuple[int, int, int]:
    try:
        parts = tuple(int(p) for p in text.lower().replace(",", "x").split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad shape {text!r}; use e.g. 97x97x89")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(f"shape needs 3 dims, got {text!r}")
    return parts  # type: ignore[return-value]


def _load_volume(args) -> Volume:
    if args.input:
        data = np.load(args.input)
        if data.ndim != 3:
            raise SystemExit(f"error: {args.input} holds a {data.ndim}D array, need 3D")
        return Volume(data, name=Path(args.input).stem)
    return rm_timestep(args.rm_step, shape=args.shape, seed=args.seed)


def _extract_mesh(dataset, iso: float) -> TriangleMesh:
    res = execute_query(dataset, iso)
    if res.n_active == 0:
        return TriangleMesh()
    return marching_cubes_batch(
        dataset.codec.values_grid(res.records),
        iso,
        dataset.meta.vertex_origins(res.records.ids),
        spacing=dataset.meta.spacing,
        world_origin=dataset.meta.origin,
    )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_preprocess(args) -> int:
    volume = _load_volume(args)
    m = args.metacell
    dataset = build_persistent_dataset(volume, args.out, metacell_shape=(m, m, m))
    rep = dataset.report
    print(f"preprocessed {volume.name} {volume.shape} -> {args.out}")
    print(f"  metacells stored : {rep.n_metacells_stored}/{rep.n_metacells_total}")
    print(f"  store size       : {rep.stored_bytes} bytes "
          f"(raw volume {rep.original_bytes}, saving {rep.space_saving:.1%})")
    print(f"  index size       : {rep.index_bytes} bytes "
          f"({rep.n_bricks} bricks, height {rep.tree_height})")
    dataset.device.close()
    return 0


def cmd_info(args) -> int:
    ds = load_dataset(args.dataset)
    rep = ds.report
    meta = ds.meta
    print(f"dataset   : {args.dataset}")
    print(f"volume    : {meta.name} {meta.volume_shape}")
    print(f"metacells : {meta.metacell_shape} grid {meta.grid_shape}")
    print(f"stored    : {rep.n_metacells_stored} records x {ds.codec.record_size} bytes")
    print(f"index     : {rep.index_bytes} bytes, n={rep.n_distinct_endpoints} "
          f"endpoints, {rep.n_bricks} bricks, height {rep.tree_height}")
    lo, hi = float(ds.tree.endpoints[0]), float(ds.tree.endpoints[-1])
    print(f"isovalues : [{lo:g}, {hi:g}]")
    ds.device.close()
    return 0


def cmd_query(args) -> int:
    from repro.io.faults import FaultInjectingDevice, FaultPlan, RetryPolicy

    ds = load_dataset(args.dataset)
    closer = ds.device
    if args.inject_faults:
        ds.device = FaultInjectingDevice(
            ds.device, FaultPlan.from_spec(args.inject_faults)
        )
    policy = (
        RetryPolicy(max_retries=args.max_retries)
        if args.max_retries is not None
        else None
    )
    res = execute_query(
        ds,
        args.iso,
        QueryOptions(
            retry_policy=policy,
            verify_checksums=False if args.no_verify else None,
            backend=getattr(args, "backend", "mc-batch"),
        ),
    )
    io = res.io_stats
    print(f"isovalue {args.iso:g}: {res.n_active} active metacells")
    print(f"  plan     : {res.plan.n_sequential_runs} sequential runs, "
          f"{res.plan.n_prefix_scans} brick prefix scans, "
          f"{res.plan.bricks_skipped} bricks skipped with no I/O")
    print(f"  I/O      : {io.blocks_read} blocks, {io.seeks} seeks, "
          f"{io.bytes_read} bytes")
    if args.inject_faults or io.retries or io.checksum_failures:
        print(f"  faults   : {io.retries} retries, "
              f"{io.checksum_failures} checksum failures, "
              f"{io.fault_delay * 1e3:.2f} ms retry/backoff delay")
    print(f"  modeled  : {io.read_time(ds.device.cost_model) * 1e3:.2f} ms "
          f"at {ds.device.cost_model.bandwidth / 1e6:.0f} MB/s")
    closer.close()
    return 0


def _cache_options(args):
    """The single place cache flags become a
    :class:`~repro.io.cache.CacheOptions` — shared by every cluster and
    serving subcommand, so ``--cache-blocks``, ``--result-cache-mb``,
    ``--lambda-bucket`` and ``--no-coalesce`` mean the same thing
    everywhere.  All-defaults is a valid (fully disabled) value."""
    from repro.io.cache import CacheOptions
    from repro.parallel.perfmodel import PAPER_CLUSTER

    blocks = getattr(args, "cache_blocks", None) or 0
    return CacheOptions(
        block_cache_bytes=blocks * PAPER_CLUSTER.disk.block_size,
        result_cache_bytes=int(
            (getattr(args, "result_cache_mb", 0.0) or 0.0) * (1 << 20)
        ),
        lambda_bucket=getattr(args, "lambda_bucket", 0.0) or 0.0,
        coalesce=not getattr(args, "no_coalesce", False),
    )


def _build_cluster(args):
    from repro.io.faults import FaultPlan
    from repro.parallel.cluster import SimulatedCluster

    volume = _load_volume(args)
    fault_plans = {}
    if args.inject_faults:
        plan = FaultPlan.from_spec(args.inject_faults)
        targets = args.fault_node if args.fault_node else range(args.nodes)
        fault_plans = {rank: plan for rank in targets}
    return SimulatedCluster(
        volume,
        p=args.nodes,
        metacell_shape=(args.metacell,) * 3,
        replication=args.replication,
        fault_plans=fault_plans,
        cache=_cache_options(args),
    )


def _hedge_policy(args):
    from repro.io.faults import HedgePolicy

    if args.no_hedging or args.replication < 2:
        return None
    return HedgePolicy(quantile=args.hedge_quantile)


def _extract_request(args, tracer=None, metrics=None):
    """The single place a cluster command's flags become an
    :class:`~repro.parallel.cluster.ExtractRequest` — shared by
    ``cluster``, ``health``, ``trace``, and ``metrics`` so every
    subcommand runs the exact same extraction."""
    from repro.parallel.cluster import ExtractRequest

    return ExtractRequest(
        deadline=args.deadline,
        hedge=_hedge_policy(args),
        tracer=tracer,
        metrics=metrics,
        backend=getattr(args, "backend", "mc-batch"),
    )


def cmd_cluster(args) -> int:
    from repro.obs import MetricsRegistry, Tracer, write_chrome_trace, write_metrics_json

    cluster = _build_cluster(args)
    for rank in args.fail_node or []:
        cluster.fail_node(rank)
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics_out else None
    res = cluster.extract(args.iso, _extract_request(args, tracer, registry))
    status = "DEGRADED (partial result)" if res.degraded else "complete"
    print(f"isovalue {args.iso:g} on p={args.nodes} "
          f"(replication r={args.replication}): {status}")
    print(f"  triangles : {res.n_triangles} from "
          f"{res.n_active_metacells} active metacells "
          f"({res.coverage:.1%} coverage)")
    if res.failed_nodes:
        print(f"  failures  : nodes {res.failed_nodes} "
              f"(unrecovered: {res.unrecovered_nodes or 'none'})")
    print(f"  modeled   : {res.total_time * 1e3:.2f} ms total, "
          f"{res.composite_bytes} composite bytes")
    if res.n_hedged_reads:
        print(f"  hedging   : {res.n_hedged_reads} hedged reads, "
              f"{res.n_hedge_wins} replica wins")
    dl = res.deadline
    if dl is not None:
        verdict = "MET" if dl.met else (
            f"MISSED by {dl.over_budget_by * 1e3:.2f} ms"
            if dl.over_budget_by > 0 else "MISSED (partial coverage)"
        )
        print(f"  deadline  : {dl.budget * 1e3:.2f} ms budget "
              f"(node stage {dl.node_budget * 1e3:.2f} ms): {verdict}")
        if dl.expired_nodes:
            print(f"              expired nodes {dl.expired_nodes}, "
                  f"speculatively re-run: {dl.speculated_nodes or 'none'}")
    if res.skipped_bricks:
        for rank, bricks in sorted(res.skipped_bricks.items()):
            print(f"  skipped   : node {rank} left span-space bricks "
                  f"{bricks} unread")
    print(f"  {'node':>4} {'status':>10} {'active':>8} {'tris':>8} "
          f"{'retries':>8} {'crcfail':>8} {'hedged':>7} {'cov%':>6} "
          f"{'time ms':>9}")
    for m in res.nodes:
        if m.failed:
            status = "FAILED"
        elif m.circuit_open:
            status = "OPEN"
        elif m.recovered_ranks:
            status = f"+serve{m.recovered_ranks}"
        else:
            status = "ok"
        print(f"  {m.node_rank:>4} {status:>10} {m.n_active_metacells:>8} "
              f"{m.n_triangles:>8} {m.n_retries:>8} {m.n_checksum_failures:>8} "
              f"{m.n_hedged_reads:>7} {m.coverage * 100:>6.1f} "
              f"{m.total_time * 1e3:>9.2f}")
    served = [m for m in res.nodes if m.served_by is not None]
    if served:
        print("  recovery attribution:")
        for m in served:
            print(f"    node {m.node_rank} <- replica on node {m.served_by} "
                  f"[{m.recovery_reason.replace('-', ' ')}]")
    if tracer is not None:
        path = write_chrome_trace(args.trace, tracer)
        print(f"  trace     : {len(tracer.spans)} spans / "
              f"{len(tracer.events)} events on {len(tracer.tracks())} "
              f"tracks -> {path}")
    if registry is not None:
        path = write_metrics_json(args.metrics_out, registry)
        print(f"  metrics   : {len(registry)} instruments -> {path}")
    return 0 if not res.degraded else 1


def cmd_health(args) -> int:
    cluster = _build_cluster(args)
    for rank in args.fail_node or []:
        cluster.fail_node(rank)
    for rank in getattr(args, "retire_node", None) or []:
        cluster.retire_node(rank)
    request = _extract_request(args)
    for i in range(args.queries):
        res = cluster.extract(args.iso, request)
        routed = [m.node_rank for m in res.nodes if m.circuit_open]
        note = f" routed-around: {routed}" if routed else ""
        print(f"query {i + 1}: coverage {res.coverage:.1%}, "
              f"{res.total_time * 1e3:.2f} ms"
              f"{' DEGRADED' if res.degraded else ''}{note}")
    print()
    print(cluster.health.report())
    return 0


def cmd_trace(args) -> int:
    from repro.obs import Tracer, write_chrome_trace

    cluster = _build_cluster(args)
    for rank in args.fail_node or []:
        cluster.fail_node(rank)
    tracer = Tracer()
    res = cluster.extract(args.iso, _extract_request(args, tracer=tracer))
    path = write_chrome_trace(args.out, tracer)
    print(f"isovalue {args.iso:g} on p={args.nodes}: {res.n_triangles} "
          f"triangles, {res.total_time * 1e3:.2f} ms modeled")
    print(f"  {'track':>8} {'io ms':>9} {'triangulate ms':>15} "
          f"{'render ms':>10}")
    for track in tracer.tracks():
        if track == "cluster":
            continue
        print(f"  {track:>8} "
              f"{tracer.total('stage.io', track=track) * 1e3:>9.2f} "
              f"{tracer.total('stage.triangulate', track=track) * 1e3:>15.2f} "
              f"{tracer.total('stage.render', track=track) * 1e3:>10.2f}")
    print(f"  composite: {tracer.total('composite') * 1e3:.2f} ms")
    print(f"wrote {len(tracer.spans)} spans / {len(tracer.events)} events "
          f"on {len(tracer.tracks())} tracks -> {path}")
    print("open in chrome://tracing or https://ui.perfetto.dev "
          "(timestamps are modeled microseconds)")
    return 0 if not res.degraded else 1


def cmd_metrics(args) -> int:
    from repro.obs import MetricsRegistry, dumps_metrics, write_metrics_json

    cluster = _build_cluster(args)
    for rank in args.fail_node or []:
        cluster.fail_node(rank)
    registry = MetricsRegistry()
    request = _extract_request(args, metrics=registry)
    for _ in range(args.queries):
        res = cluster.extract(args.iso, request)
    extra = {"isovalue": args.iso, "nodes": args.nodes,
             "queries": args.queries}
    if args.out:
        path = write_metrics_json(args.out, registry, extra)
        print(f"{len(registry)} instruments after {args.queries} "
              f"extraction(s) -> {path}")
    else:
        print(dumps_metrics(registry, extra), end="")
    return 0 if not res.degraded else 1


class _ServingScenario:
    """Everything ``serve-sim`` and ``elastic-sim`` share, built once.

    The single place a serving command's flags become the traffic trace
    and :class:`~repro.serve.ServeConfig` — both subcommands run the
    exact same tenant mix, burst window, fault overlays, and cache
    configuration, so their reports differ only by the cluster under
    them.
    """

    def __init__(self, args, cluster) -> None:
        from repro.serve import (
            BrownoutConfig,
            BurstWindow,
            ClusterEvent,
            ServeConfig,
            TenantSpec,
            TrafficConfig,
            generate_trace,
        )

        if args.isovalues:
            isovalues = tuple(float(s) for s in args.isovalues.split(","))
        else:
            eps = cluster.datasets[0].tree.endpoints
            lo, hi = float(eps[0]), float(eps[-1])
            isovalues = tuple(
                lo + (hi - lo) * f for f in (0.35, 0.45, 0.5, 0.55, 0.65)
            )
        # One "service unit" = the worst predicted single-query time;
        # every duration/rate/budget flag is expressed in these units so
        # the same command works at any volume size.
        self.isovalues = isovalues
        self.unit = unit = max(
            cluster.estimate_extract_time(l) for l in isovalues
        )
        self.duration = duration = args.duration * unit
        base_rate = args.rate / unit
        self.tenants = tenants = (
            TenantSpec(name="gold", tier="gold", arrival_share=0.3,
                       rate=base_rate, burst=8,
                       deadline_budget=args.budget_gold * unit),
            TenantSpec(name="silver", tier="silver", arrival_share=0.4,
                       rate=base_rate, burst=8,
                       deadline_budget=args.budget_silver * unit),
            TenantSpec(name="bulk", tier="bulk", arrival_share=0.3,
                       rate=base_rate, burst=8,
                       deadline_budget=args.budget_bulk * unit),
        )
        overlays = []
        for spec in args.kill_node or []:
            rank_s, _, frac_s = spec.partition("@")
            overlays.append(ClusterEvent(
                time=float(frac_s or 0.5) * duration, action="kill",
                rank=int(rank_s),
            ))
        bursts = ()
        if args.overload > 1.0:
            bursts = (BurstWindow(start=duration / 3, duration=duration / 3,
                                  factor=args.overload),)
        self.trace = generate_trace(
            TrafficConfig(
                duration=duration, base_rate=base_rate, isovalues=isovalues,
                seed=args.trace_seed, bursts=bursts, overlays=tuple(overlays),
            ),
            tenants,
        )
        self.config = ServeConfig(
            tenants=tenants, n_executors=args.executors,
            max_queue_depth=args.queue_depth, quantum=unit / 5,
            brownout=BrownoutConfig(eval_interval=unit),
            cache=_cache_options(args),
            backend=getattr(args, "backend", "mc-batch"),
        )


def _write_serving_outputs(args, payload, tracer, registry) -> None:
    """The shared ``--json`` / ``--trace`` / ``--metrics-out`` tail."""
    from repro.obs import write_chrome_trace, write_metrics_json

    if args.json and payload is not None:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"  payload   -> {args.json}")
    if tracer is not None:
        path = write_chrome_trace(args.trace, tracer)
        print(f"  trace     -> {path}")
    if registry is not None:
        path = write_metrics_json(args.metrics_out, registry)
        print(f"  metrics   -> {path}")


def cmd_serve_sim(args) -> int:
    from repro.obs import MetricsRegistry, Tracer
    from repro.parallel.cluster import SimulatedCluster
    from repro.serve import TERMINAL_STATES, QueryServer

    volume = _load_volume(args)
    cluster = SimulatedCluster(
        volume, p=args.nodes, metacell_shape=(args.metacell,) * 3,
        replication=args.replication,
        cache=_cache_options(args),
    )
    sc = _ServingScenario(args, cluster)
    duration = sc.duration
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics_out else None
    server = QueryServer(cluster, sc.config, tracer=tracer, metrics=registry)
    report = server.serve(sc.trace)

    counts = {s: len(report.by_state(s)) for s in TERMINAL_STATES}
    print(f"served {report.n_requests} requests over "
          f"{duration * 1e3:.1f} ms modeled "
          f"(p={args.nodes}, r={args.replication}, "
          f"{args.executors} executors, {args.overload:g}x burst)")
    print(f"  states    : " + ", ".join(
        f"{s}={counts[s]}" for s in TERMINAL_STATES))
    shed = {}
    for r in report.by_state("shed"):
        shed[r.reason] = shed.get(r.reason, 0) + 1
    if shed:
        print("  shed      : " + ", ".join(
            f"{k}={v}" for k, v in sorted(shed.items())))
    print(f"  goodput   : {report.goodput:.1f} answered queries/s modeled, "
          f"shed rate {report.shed_rate:.1%}")
    for tier in ("gold", "silver", "bulk"):
        lats = report.latencies(tier)
        if lats:
            print(f"  {tier:<6}    : p50 "
                  f"{report.latency_quantile(0.50, tier) * 1e3:.2f} ms, "
                  f"p99 {report.latency_quantile(0.99, tier) * 1e3:.2f} ms "
                  f"({len(lats)} answered)")
    if report.transitions:
        print("  brownout  :")
        for t in report.transitions:
            print(f"    {t.time * 1e3:9.1f} ms  level {t.from_level} -> "
                  f"{t.to_level}  [{t.reason}]")
    gaps = report.scheduler_gaps
    bounds = report.scheduler_gap_bounds
    print("  fairness  : " + ", ".join(
        f"{n} gap {gaps[n]}/{bounds.get(n, '-')}" for n in sorted(gaps)))
    _print_cache_lines(report)
    _write_serving_outputs(
        args, report.to_payload() if args.json else None, tracer, registry)
    return 0


def _print_cache_lines(report) -> None:
    """Block- and result-cache summary lines (omitted when both off)."""
    bc = report.cache_stats
    if bc.get("hits", 0) or bc.get("misses", 0):
        print(f"  blockcache: {bc['hits']:.0f} hits / "
              f"{bc['misses']:.0f} misses "
              f"(rate {bc.get('hit_rate', 0.0):.1%})")
    rc = report.result_cache_stats
    if rc.get("hits", 0) or rc.get("misses", 0):
        coalesced = sum(1 for r in report.records if r.coalesced)
        print(f"  rcache    : {rc['hits']:.0f} hits / "
              f"{rc['misses']:.0f} misses "
              f"(rate {rc.get('hit_rate', 0.0):.1%}), "
              f"{rc.get('records_from_cache', 0):.0f} records reused, "
              f"{coalesced} coalesced requests")


def cmd_elastic_sim(args) -> int:
    from repro.elastic import (
        Autoscaler,
        ElasticCluster,
        ElasticController,
        Rebalancer,
        ScaleEvent,
        check_balance,
        fsck_cluster,
    )
    from repro.obs import MetricsRegistry, Tracer
    from repro.serve import TERMINAL_STATES, QueryServer

    volume = _load_volume(args)
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics_out else None
    cluster = ElasticCluster(
        volume, nodes=args.nodes, n_stripes=args.stripes,
        metacell_shape=(args.metacell,) * 3,
        tracer=tracer, metrics=registry,
        cache=_cache_options(args),
    )
    sc = _ServingScenario(args, cluster)
    duration = sc.duration
    scale_plan = []
    for spec in args.scale if args.scale is not None else ["8@0.34", "3@0.67"]:
        n_s, _, frac_s = spec.partition("@")
        scale_plan.append(ScaleEvent(
            time=float(frac_s or 0.5) * duration, nodes=int(n_s),
        ))
    controller = ElasticController(
        cluster,
        rebalancer=Rebalancer(cluster, max_io_fraction=args.max_io_fraction),
        plan=() if args.autoscale else scale_plan,
        autoscaler=Autoscaler() if args.autoscale else None,
        balance_isovalues=sc.isovalues,
        metrics=registry, tracer=tracer,
    )
    server = QueryServer(
        cluster, sc.config,
        tracer=tracer, metrics=registry, controller=controller,
    )
    report = server.serve(sc.trace)
    controller.finish(sc.trace.horizon)
    isovalues = sc.isovalues

    counts = {s: len(report.by_state(s)) for s in TERMINAL_STATES}
    print(f"served {report.n_requests} requests over "
          f"{duration * 1e3:.1f} ms modeled "
          f"({args.nodes} -> {len(cluster.membership.target_ids())} nodes, "
          f"{cluster.n_stripes} stripes, {args.overload:g}x burst)")
    print("  states    : " + ", ".join(
        f"{s}={counts[s]}" for s in TERMINAL_STATES))
    print(f"  goodput   : {report.goodput:.1f} answered queries/s modeled, "
          f"shed rate {report.shed_rate:.1%}")
    print("  members   : " + ", ".join(
        f"{k}={v}" for k, v in sorted(cluster.membership.counts().items())))
    print(f"  ownership : epoch {cluster.ownership.epoch}, "
          f"stripes/node " + ", ".join(
              f"{n}:{c}" for n, c in sorted(cluster.ownership.counts().items())))
    print(f"  migration : {len(cluster.migrations)} moves, "
          f"{cluster.migration_bytes} bytes, "
          f"{cluster.migration_seconds * 1e3:.2f} ms modeled")
    for ev in controller.rebalance_events:
        print(f"  rebalance : {ev.started * 1e3:9.1f} -> "
              f"{ev.finished * 1e3:9.1f} ms, {ev.n_moves} moves, "
              f"-> {ev.serving_nodes} nodes, "
              f"balance {'OK' if ev.balance.ok else 'VIOLATED'}")
    balance = check_balance(cluster, isovalues)
    print(f"  balance   : spread {balance.assignment_spread} "
          f"({'OK' if balance.ok else 'VIOLATED'})")
    if args.autoscale:
        for d in controller.autoscaler.decisions:
            arrow = "up" if d.direction > 0 else "down"
            print(f"  autoscale : {d.time * 1e3:9.1f} ms {arrow} -> "
                  f"{d.target_nodes} [{d.reason}]")
    if args.fsck:
        print(fsck_cluster(cluster).summary())
    _print_cache_lines(report)
    payload = None
    if args.json:
        payload = report.to_payload()
        payload["elastic"] = {
            "migrations": len(cluster.migrations),
            "migration_bytes": cluster.migration_bytes,
            "migration_seconds": cluster.migration_seconds,
            "epoch": cluster.ownership.epoch,
            "members": cluster.membership.counts(),
            "rebalances": [ev.as_dict() for ev in controller.rebalance_events],
        }
    _write_serving_outputs(args, payload, tracer, registry)
    failed = counts["failed"]
    if failed:
        print(f"ERROR: {failed} queries ended 'failed'", file=sys.stderr)
    return 1 if failed else 0


def cmd_chaos(args) -> int:
    from repro.chaos import (
        ChaosEngine,
        ChaosSpec,
        load_schedule,
        save_schedule,
        schedule_as_dicts,
        shrink_schedule,
    )
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    engine = ChaosEngine(metrics=registry)

    if args.replay:
        spec, schedule, payload = load_schedule(args.replay)
        result = engine.run_trial(spec, schedule=schedule)
        print(f"replayed {args.replay}: seed {spec.seed}, "
              f"{len(schedule)} events, "
              f"{len(result.violations)} violation(s)")
        for v in result.violations:
            print(f"  VIOLATION [{v.oracle}] {v.message}")
        if args.json:
            Path(args.json).write_text(json.dumps(
                result.as_dict(), indent=2, sort_keys=True) + "\n")
        return 1 if result.violations else 0

    base = ChaosSpec(
        seed=args.seed,
        n_kills=args.kills, n_fault_bursts=args.fault_bursts,
        n_scales=args.scales, n_partitions=args.partitions,
        duration_units=args.duration_units,
    )
    results = engine.run_trials(base, args.trials)
    failing = [r for r in results if r.violations]
    states: "dict[str, int]" = {}
    for r in results:
        for k, v in r.states.items():
            states[k] = states.get(k, 0) + v
    print(f"chaos: {args.trials} trials (seeds {args.seed}.."
          f"{args.seed + args.trials - 1}), "
          f"{len(failing)} with violations")
    print("  states : " + ", ".join(
        f"{k}={v}" for k, v in sorted(states.items())))
    net = {k: v for k, v in registry.to_dict().items()
           if k.startswith("chaos.net.") and k != "chaos.net.delay_seconds"}
    print("  net    : " + (", ".join(
        f"{k.rsplit('.', 1)[-1]}={int(v)}" for k, v in sorted(net.items()))
        or "(no session)"))

    repro_paths = []
    for r in failing:
        print(f"  seed {r.seed}: {len(r.violations)} violation(s)")
        for v in r.violations:
            print(f"    [{v.oracle}] {v.message}")
        if args.shrink:
            spec = ChaosSpec(**{**base.as_dict(), "seed": r.seed})
            def still_fails(candidate, _spec=spec):
                return bool(engine.run_trial(_spec, schedule=candidate).violations)
            minimal, probes = shrink_schedule(r.schedule, still_fails)
            path = Path(args.shrink_dir) / f"repro_seed{r.seed}.json"
            save_schedule(path, spec, minimal,
                          violations=r.violations, probes=probes)
            repro_paths.append(str(path))
            print(f"    shrunk {len(r.schedule)} -> {len(minimal)} events "
                  f"({probes} probes) -> {path}")

    if args.json:
        payload = {
            "trials": args.trials, "seed": args.seed,
            "violating": len(failing),
            "states": states,
            "metrics": registry.to_dict(),
            "failing": [
                {"seed": r.seed,
                 "violations": [v.as_dict() for v in r.violations],
                 "schedule": schedule_as_dicts(r.schedule)}
                for r in failing
            ],
            "repro_schedules": repro_paths,
        }
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"  report : {out}")
    return 1 if failing else 0


def cmd_extract(args) -> int:
    from repro.mc.mesh_io import write_obj, write_ply

    ds = load_dataset(args.dataset)
    if args.stream:
        from repro.mc.mesh_stream import stream_isosurface_to_file

        target = args.ply or args.obj
        if not target:
            print("error: --stream needs --ply or --obj", file=sys.stderr)
            return 2
        path, n = stream_isosurface_to_file(ds, args.iso, target)
        print(f"isovalue {args.iso:g}: streamed {n} triangles -> {path}")
        ds.device.close()
        return 0
    mesh = _extract_mesh(ds, args.iso)
    print(f"isovalue {args.iso:g}: {mesh.n_triangles} triangles")
    if args.weld:
        mesh = mesh.weld()
        print(f"welded to {mesh.n_vertices} vertices")
    if args.decimate:
        from repro.mc.simplify import simplify_to_budget

        mesh = simplify_to_budget(mesh, args.decimate)
        print(f"decimated to {mesh.n_triangles} triangles")
    wrote = False
    if args.obj:
        print(f"wrote {write_obj(args.obj, mesh, comment=f'iso {args.iso}')}")
        wrote = True
    if args.ply:
        print(f"wrote {write_ply(args.ply, mesh)}")
        wrote = True
    if not wrote:
        print("(no --obj/--ply given; nothing written)")
    ds.device.close()
    return 0


def cmd_render(args) -> int:
    from repro.render.camera import Camera
    from repro.render.image import write_ppm
    from repro.render.rasterizer import Framebuffer, render_mesh, render_mesh_smooth

    ds = load_dataset(args.dataset)
    mesh = _extract_mesh(ds, args.iso)
    ds.device.close()
    if mesh.n_triangles == 0:
        print(f"no geometry at isovalue {args.iso:g}", file=sys.stderr)
        return 1
    cam = Camera.fit_mesh(mesh)
    fb = Framebuffer(args.size, args.size)
    if args.smooth:
        welded = mesh.weld()
        render_mesh_smooth(fb, welded, cam, welded.vertex_normals())
    else:
        render_mesh(fb, mesh, cam)
    print(f"rendered {mesh.n_triangles} triangles "
          f"({fb.coverage():.0%} coverage) -> {write_ppm(args.out, fb.to_uint8())}")
    return 0


def _parse_steps(text: str) -> "list[int]":
    """'180-195' or '10,50,90' -> list of step numbers."""
    out: list[int] = []
    for part in text.split(","):
        if "-" in part:
            a, b = part.split("-", 1)
            out.extend(range(int(a), int(b) + 1))
        else:
            out.append(int(part))
    if not out:
        raise argparse.ArgumentTypeError("no time steps given")
    return out


def cmd_preprocess_series(args) -> int:
    from repro.core.timevarying import TimeVaryingIndex
    from repro.grid.rm_instability import rm_time_series

    steps = args.steps
    tvi = TimeVaryingIndex.from_series(
        rm_time_series(steps, shape=args.shape, n_steps=args.n_steps, seed=args.seed),
        p=args.nodes,
        metacell_shape=(args.metacell,) * 3,
    )
    tvi.save(args.out)
    print(f"indexed steps {steps[0]}..{steps[-1]} ({len(steps)} steps) "
          f"on {args.nodes} node(s) -> {args.out}")
    print(f"combined in-memory index: {tvi.total_index_size_bytes()} bytes")
    return 0


def cmd_query_series(args) -> int:
    from repro.core.timevarying import TimeVaryingIndex
    from repro.mc.geometry import TriangleMesh

    tvi = TimeVaryingIndex.load(args.dataset)
    steps = args.steps if args.steps else tvi.steps
    print(f"{'step':>6} {'active MC':>10} {'triangles':>10}  per-node active")
    for t in steps:
        if t not in tvi:
            print(f"{t:>6} (not indexed)")
            continue
        results = tvi.query(t, args.iso)
        meshes = tvi.extract(t, args.iso)
        total = TriangleMesh.concat(meshes)
        amc = [r.n_active for r in results]
        print(f"{t:>6} {sum(amc):>10} {total.n_triangles:>10}  {amc}")
    for t in tvi.steps:
        for ds in tvi.datasets(t):
            ds.device.close()
    return 0


def cmd_verify(args) -> int:
    from repro.core.validation import verify_dataset

    ds = load_dataset(args.dataset)
    report = verify_dataset(ds, deep=not args.quick)
    print(report.summary())
    ds.device.close()
    return 0 if report.ok else 1


#: ``repro fsck`` exit codes, one per failure class (0 = clean).
FSCK_EXIT_OK = 0
FSCK_EXIT_STRUCTURAL = 1
FSCK_EXIT_CORRUPT = 3
FSCK_EXIT_MISSING = 4
FSCK_EXIT_BAD_VERSION = 5


def cmd_fsck(args) -> int:
    import json as _json

    from repro.core.persistence import DatasetFormatError, MissingArtifactError
    from repro.core.validation import verify_dataset

    result: dict = {"dataset": str(args.dataset), "action": "fsck"}

    def finish(code: int, failure_class: str) -> int:
        result["exit_code"] = code
        result["failure_class"] = failure_class
        if args.json:
            print(_json.dumps(result, indent=2))
        return code

    try:
        ds = load_dataset(args.dataset)
    except MissingArtifactError as exc:
        result["error"] = str(exc)
        if not args.json:
            print(f"fsck: missing artifact: {exc}", file=sys.stderr)
        return finish(FSCK_EXIT_MISSING, "missing-file")
    except DatasetFormatError as exc:
        result["error"] = str(exc)
        if not args.json:
            print(f"fsck: unsupported format: {exc}", file=sys.stderr)
        return finish(FSCK_EXIT_BAD_VERSION, "bad-index-version")
    except IOError as exc:
        result["error"] = str(exc)
        if not args.json:
            print(f"fsck: corrupt store: {exc}", file=sys.stderr)
        return finish(FSCK_EXIT_CORRUPT, "corrupt-brick")

    report = verify_dataset(ds, deep=not args.quick)
    result["verify"] = report.as_dict()

    if args.repair and report.has_corruption:
        from repro.core.repair import repair_dataset

        volume = None
        if args.input or args.rm_step is not None:
            volume = _load_volume(args)
        repair = repair_dataset(
            ds,
            source_volume=volume,
            positions=report.corrupt_records,
        )
        result["repair"] = repair.as_dict()
        if not args.json:
            print(repair.summary())
        # Re-verify: the exit code reports the store as it is *now*.
        report = verify_dataset(ds, deep=not args.quick)
        result["verify_after_repair"] = report.as_dict()

    if not args.json:
        print(report.summary())
    ds.device.close()
    if report.has_corruption:
        return finish(FSCK_EXIT_CORRUPT, "corrupt-brick")
    if not report.ok:
        return finish(FSCK_EXIT_STRUCTURAL, "structural")
    return finish(FSCK_EXIT_OK, "clean")


def cmd_scrub(args) -> int:
    import json as _json

    from repro.io.scrub import ScrubConfig, Scrubber
    from repro.obs import MetricsRegistry, write_metrics_json

    ds = load_dataset(args.dataset)
    registry = MetricsRegistry()
    scrubber = Scrubber(
        ds,
        ScrubConfig(
            bricks_per_tick=args.bricks_per_tick,
            idle_seconds=args.idle,
        ),
        metrics=registry,
    )
    if args.ticks is not None:
        report = None
        for _ in range(args.ticks):
            report = scrubber.tick(report)
        from repro.io.scrub import ScrubReport

        report = report or ScrubReport()
    else:
        report = scrubber.sweep()
    if args.metrics_out:
        write_metrics_json(args.metrics_out, registry)
    if args.json:
        print(_json.dumps(report.as_dict(), indent=2))
    else:
        print(report.summary())
    ds.device.close()
    return FSCK_EXIT_OK if report.clean else FSCK_EXIT_CORRUPT


def cmd_suggest(args) -> int:
    from repro.core.analysis import suggest_isovalues

    ds = load_dataset(args.dataset)
    picks = suggest_isovalues(ds.tree, selectivities=tuple(args.selectivity))
    print("selectivity  isovalue  active metacells")
    for target, iso in sorted(picks.items()):
        count = ds.tree.query_count(iso)
        print(f"{target:>11.2%}  {iso:>8g}  {count}")
    ds.device.close()
    return 0


def cmd_estimate(args) -> int:
    from repro.core.analysis import estimate_query_cost

    ds = load_dataset(args.dataset)
    est = estimate_query_cost(
        ds.tree, args.iso, ds.codec.record_size, ds.device.cost_model, ds.base_offset
    )
    print(f"isovalue {args.iso:g} (predicted without touching the store):")
    print(f"  active metacells : {est.n_active}")
    print(f"  runs             : {est.n_runs}")
    print(f"  blocks           : {est.blocks}")
    print(f"  payload bytes    : {est.bytes_payload}")
    print(f"  modeled I/O time : {est.io_time(ds.device.cost_model) * 1e3:.2f} ms")
    ds.device.close()
    return 0


def cmd_spanspace(args) -> int:
    from repro.core.intervals import IntervalSet
    from repro.core.span_space import SpanSpaceStats, ascii_span_space

    ds = load_dataset(args.dataset)
    tree = ds.tree
    # Reconstruct (vmin, vmax) per record from the brick table.
    vmaxs = np.empty(tree.n_records, dtype=np.float64)
    for b in range(tree.n_bricks):
        s, c = int(tree.brick_start[b]), int(tree.brick_count[b])
        vmaxs[s : s + c] = float(tree.brick_vmax[b])
    iv = IntervalSet(
        vmin=tree.record_vmins.astype(np.float64),
        vmax=vmaxs,
        ids=tree.record_ids,
    )
    stats = SpanSpaceStats.from_intervals(iv)
    print(f"N={stats.n_intervals} intervals, n={stats.n_distinct_endpoints} "
          f"endpoints, {stats.n_distinct_pairs} distinct (vmin, vmax) pairs")
    print(ascii_span_space(iv, bins=args.bins))
    ds.device.close()
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-core isosurface extraction (compact interval tree).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("preprocess", help="build a dataset directory")
    src = p.add_mutually_exclusive_group()
    src.add_argument("--input", help="3D .npy scalar volume to index")
    src.add_argument("--rm-step", type=int, default=250,
                     help="RM-instability time step to synthesize (default 250)")
    p.add_argument("--shape", type=_parse_shape, default=(97, 97, 89),
                   help="synthetic volume shape, e.g. 97x97x89")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--metacell", type=int, default=9,
                   help="metacell vertices per axis (default 9)")
    p.add_argument("--out", required=True, help="dataset directory to create")
    p.set_defaults(func=cmd_preprocess)

    p = sub.add_parser("info", help="describe a dataset directory")
    p.add_argument("dataset")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("query", help="run an isosurface query (I/O report)")
    p.add_argument("dataset")
    p.add_argument("iso", type=float)
    p.add_argument("--inject-faults", metavar="SPEC",
                   help="fault-inject the device, e.g. "
                        "'transient=0.05,corrupt=0.01,latency=0.02:0.01,seed=7'")
    p.add_argument("--max-retries", type=int, default=None,
                   help="transient-read retry budget (default policy: 3)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip CRC32 record verification")
    p.add_argument("--backend", choices=available_backends(),
                   default="mc-batch",
                   help="extraction kernel the query is planned for "
                        "(default mc-batch)")
    p.set_defaults(func=cmd_query)

    def add_cache_args(p) -> None:
        """The unified cache flags (one CacheOptions everywhere)."""
        p.add_argument("--result-cache-mb", type=float, default=0.0,
                       metavar="MB",
                       help="λ-keyed result cache budget in MiB (default 0: "
                            "off); repeated and nearby isovalues are then "
                            "answered without touching the disks, fenced by "
                            "the ownership epoch")
        p.add_argument("--lambda-bucket", type=float, default=0.0,
                       metavar="WIDTH",
                       help="isovalue bucket width for coalescing and the "
                            "result-cache mesh tier (default 0: exact "
                            "isovalues only)")
        p.add_argument("--no-coalesce", action="store_true",
                       help="dispatch duplicate in-flight isovalues "
                            "separately instead of attaching them to the "
                            "running extraction")

    def add_cluster_args(p) -> None:
        p.add_argument("iso", type=float)
        src = p.add_mutually_exclusive_group()
        src.add_argument("--input", help="3D .npy scalar volume")
        src.add_argument("--rm-step", type=int, default=250,
                         help="RM-instability time step to synthesize "
                              "(default 250)")
        p.add_argument("--shape", type=_parse_shape, default=(49, 49, 45),
                       help="synthetic volume shape (default 49x49x45)")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--metacell", type=int, default=9)
        p.add_argument("-p", "--nodes", type=int, default=4, help="node count")
        p.add_argument("--replication", type=int, default=1,
                       help="brick replication factor r (default 1: none)")
        p.add_argument("--fail-node", type=int, action="append", metavar="RANK",
                       help="kill this node's disk before the query "
                            "(repeatable)")
        p.add_argument("--inject-faults", metavar="SPEC",
                       help="fault spec applied to node disks (see 'query')")
        p.add_argument("--fault-node", type=int, action="append", metavar="RANK",
                       help="restrict --inject-faults to these ranks "
                            "(repeatable; default: all nodes)")
        p.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="modeled-time budget for the whole query; expired "
                            "nodes return partial, coverage-flagged results")
        p.add_argument("--hedge-quantile", type=float, default=0.5,
                       help="latency quantile anchoring the hedged-read "
                            "threshold (default 0.5, i.e. median)")
        p.add_argument("--no-hedging", action="store_true",
                       help="disable hedged replica reads (hedging is on by "
                            "default when replication >= 2)")
        p.add_argument("--cache-blocks", type=int, default=None, metavar="N",
                       help="LRU block cache of N blocks per node disk; "
                            "hits/misses show up as cache.* metrics")
        p.add_argument("--backend", choices=available_backends(),
                       default="mc-batch",
                       help="extraction kernel every node triangulates with "
                            "(default mc-batch; surface-nets trades exact MC "
                            "geometry for ~2x kernel throughput)")
        add_cache_args(p)

    p = sub.add_parser(
        "cluster",
        help="striped multi-node extraction with failures and replication",
    )
    add_cluster_args(p)
    p.add_argument("--trace", metavar="PATH",
                   help="write a Chrome trace-event JSON of the run "
                        "(modeled clock; byte-identical across same-seed "
                        "runs)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the run's flat metrics JSON here")
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser(
        "health",
        help="run repeated cluster queries and report node health states",
    )
    add_cluster_args(p)
    p.add_argument("--queries", type=int, default=6,
                   help="extractions to run against the same cluster "
                        "(default 6)")
    p.add_argument("--retire-node", type=int, action="append", metavar="RANK",
                   help="mark this node permanently removed before the "
                        "queries: the breaker enters its terminal 'retired' "
                        "state — routed around forever, never probed — "
                        "unlike an open circuit (repeatable)")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "trace",
        help="trace one cluster extraction to Chrome trace-event JSON",
    )
    add_cluster_args(p)
    p.add_argument("--out", default="trace.json",
                   help="trace file to write (default trace.json)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="run cluster extraction(s) and dump the unified metrics",
    )
    add_cluster_args(p)
    p.add_argument("--queries", type=int, default=1,
                   help="extractions to aggregate (default 1)")
    p.add_argument("--out", default=None,
                   help="metrics JSON file (default: print to stdout)")
    p.set_defaults(func=cmd_metrics)

    def add_serving_args(p) -> None:
        """Flags shared verbatim by ``serve-sim`` and ``elastic-sim``
        (the :class:`_ServingScenario` inputs)."""
        src = p.add_mutually_exclusive_group()
        src.add_argument("--input", help="3D .npy scalar volume")
        src.add_argument("--rm-step", type=int, default=250,
                         help="RM-instability time step to synthesize "
                              "(default 250)")
        p.add_argument("--shape", type=_parse_shape, default=(33, 33, 29),
                       help="synthetic volume shape (default 33x33x29)")
        p.add_argument("--seed", type=int, default=7,
                       help="volume synthesis seed")
        p.add_argument("--metacell", type=int, default=9)
        p.add_argument("--isovalues", default=None,
                       help="comma-separated isovalue universe (default: "
                            "spread over the dataset's value range)")
        p.add_argument("--trace-seed", type=int, default=0,
                       help="traffic generator seed (default 0)")
        p.add_argument("--duration", type=float, default=120,
                       help="trace length in estimated-service units "
                            "(default 120)")
        p.add_argument("--rate", type=float, default=2.0,
                       help="base arrivals per estimated-service unit "
                            "(default 2)")
        p.add_argument("--overload", type=float, default=4.0,
                       help="burst multiplier over the middle third of the "
                            "trace (default 4; 1 disables the burst)")
        p.add_argument("--kill-node", action="append", metavar="RANK[@FRAC]",
                       help="kill this node at FRAC of the trace "
                            "(default 0.5); repeatable")
        p.add_argument("--executors", type=int, default=2,
                       help="concurrent query slots (default 2)")
        p.add_argument("--queue-depth", type=int, default=32,
                       help="admission queue bound (default 32)")
        p.add_argument("--budget-gold", type=float, default=4.0,
                       help="gold deadline budget in service units "
                            "(default 4)")
        p.add_argument("--budget-silver", type=float, default=6.0,
                       help="silver deadline budget in service units "
                            "(default 6)")
        p.add_argument("--budget-bulk", type=float, default=12.0,
                       help="bulk deadline budget in service units "
                            "(default 12)")
        p.add_argument("--backend", choices=available_backends(),
                       default="mc-batch",
                       help="extraction kernel every dispatched query runs "
                            "with (default mc-batch)")
        add_cache_args(p)
        p.add_argument("--json", metavar="PATH",
                       help="write the full serving payload JSON here "
                            "(includes cache_* and rcache_* metrics)")
        p.add_argument("--trace", metavar="PATH",
                       help="write a Chrome trace with serve.* instants here")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write the serve.* metrics JSON here")

    p = sub.add_parser(
        "serve-sim",
        help="multi-tenant serving simulation: admission, fair-share "
             "scheduling, load shedding, brownout, result reuse",
    )
    p.add_argument("-p", "--nodes", type=int, default=4, help="node count")
    p.add_argument("--replication", type=int, default=2,
                   help="brick replication factor (default 2: survive kills)")
    p.add_argument("--cache-blocks", type=int, default=None, metavar="N",
                   help="LRU block cache of N blocks per node disk")
    add_serving_args(p)
    p.set_defaults(func=cmd_serve_sim)

    p = sub.add_parser(
        "elastic-sim",
        help="elastic membership simulation: live resharding, failover, "
             "autoscaling under serving traffic — zero failed queries",
    )
    p.add_argument("-p", "--nodes", type=int, default=4,
                   help="initial node count (default 4)")
    p.add_argument("--stripes", type=int, default=12,
                   help="logical stripes to over-partition into (default 12; "
                        "must be >= the largest node count you scale to)")
    p.add_argument("--scale", action="append", metavar="N[@FRAC]",
                   help="scripted waypoint: be at N nodes from FRAC of the "
                        "trace on (default plan: 8@0.34 then 3@0.67); "
                        "repeatable; ignored under --autoscale")
    p.add_argument("--autoscale", action="store_true",
                   help="replace the scripted plan with metric-driven "
                        "scaling (queue depth, p99/budget ratio, utilization)")
    p.add_argument("--max-io-fraction", type=float, default=0.5,
                   help="migration I/O budget as a fraction of serving I/O "
                        "(default 0.5)")
    p.add_argument("--fsck", action="store_true",
                   help="run the ownership-aware fsck after the trace and "
                        "print its summary (stale copies are not issues)")
    add_serving_args(p)
    p.set_defaults(func=cmd_elastic_sim)

    p = sub.add_parser(
        "chaos",
        help="deterministic chaos trials: composed kill/storage/scale/"
             "partition schedules, invariant oracles, failing-seed "
             "shrinking to replayable repros",
    )
    p.add_argument("--trials", type=int, default=25,
                   help="seeded trials to run (default 25)")
    p.add_argument("--seed", type=int, default=0,
                   help="first trial seed (trial i uses seed + i)")
    p.add_argument("--kills", type=int, default=1,
                   help="node kills per schedule (default 1)")
    p.add_argument("--fault-bursts", type=int, default=1,
                   help="storage fault bursts per schedule (default 1)")
    p.add_argument("--scales", type=int, default=1,
                   help="scale waypoints per schedule (default 1)")
    p.add_argument("--partitions", type=int, default=1,
                   help="network partitions per schedule (default 1)")
    p.add_argument("--duration-units", type=float, default=30.0,
                   help="trace length in service units (default 30)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the trial report as JSON")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="replay a saved repro-chaos/1 schedule instead of "
                        "running fresh trials")
    p.add_argument("--no-shrink", dest="shrink", action="store_false",
                   help="report violating schedules without minimizing them")
    p.add_argument("--shrink-dir", default="out/chaos", metavar="DIR",
                   help="directory for minimized repro schedules "
                        "(default out/chaos)")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("extract", help="extract a mesh to OBJ/PLY")
    p.add_argument("dataset")
    p.add_argument("iso", type=float)
    p.add_argument("--obj", help="write Wavefront OBJ here")
    p.add_argument("--ply", help="write binary PLY here")
    p.add_argument("--weld", action="store_true", help="weld duplicate vertices")
    p.add_argument("--decimate", type=int, metavar="N",
                   help="simplify toward a triangle budget before writing")
    p.add_argument("--stream", action="store_true",
                   help="stream straight to disk with bounded memory")
    p.set_defaults(func=cmd_extract)

    p = sub.add_parser("render", help="render an isosurface to PPM")
    p.add_argument("dataset")
    p.add_argument("iso", type=float)
    p.add_argument("--out", default="isosurface.ppm")
    p.add_argument("--size", type=int, default=512)
    p.add_argument("--smooth", action="store_true", help="Gouraud shading")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("spanspace", help="ASCII span-space view of a dataset")
    p.add_argument("dataset")
    p.add_argument("--bins", type=int, default=24)
    p.set_defaults(func=cmd_spanspace)

    p = sub.add_parser(
        "preprocess-series", help="index a window of RM time steps (Section 5.2)"
    )
    p.add_argument("--steps", type=_parse_steps, required=True,
                   help="e.g. 180-195 or 10,50,90")
    p.add_argument("--shape", type=_parse_shape, default=(65, 65, 57))
    p.add_argument("--n-steps", type=int, default=270)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--nodes", type=int, default=1, help="stripe across N nodes")
    p.add_argument("--metacell", type=int, default=9)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_preprocess_series)

    p = sub.add_parser("query-series", help="sweep one isovalue across time steps")
    p.add_argument("dataset", help="directory written by preprocess-series")
    p.add_argument("iso", type=float)
    p.add_argument("--steps", type=_parse_steps, default=None)
    p.set_defaults(func=cmd_query_series)

    p = sub.add_parser("verify", help="integrity-check a dataset (fsck)")
    p.add_argument("dataset")
    p.add_argument("--quick", action="store_true", help="structural checks only")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "fsck",
        help="classify dataset damage (distinct exit codes) and optionally "
             "repair it in place",
        description="Exit codes: 0 clean, 1 structural problem, 3 corrupt "
                    "brick/record, 4 missing artifact, 5 unsupported index "
                    "version.",
    )
    p.add_argument("dataset")
    p.add_argument("--quick", action="store_true", help="structural checks only")
    p.add_argument("--json", action="store_true",
                   help="print a machine-readable JSON summary")
    p.add_argument("--repair", action="store_true",
                   help="rebuild CRC-failing records in place from the source "
                        "volume (give --input or --rm-step)")
    p.add_argument("--input", help="source volume (.npy) for --repair")
    p.add_argument("--rm-step", type=int, default=None,
                   help="re-synthesize the RM source volume for --repair")
    p.add_argument("--shape", type=_parse_shape, default=(97, 97, 89),
                   help="synthetic source volume shape (with --rm-step)")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser(
        "scrub",
        help="paced background integrity sweep over a dataset's bricks",
    )
    p.add_argument("dataset")
    p.add_argument("--ticks", type=int, default=None,
                   help="run exactly this many ticks (default: one full sweep)")
    p.add_argument("--bricks-per-tick", type=int, default=4)
    p.add_argument("--idle", type=float, default=0.0,
                   help="modeled idle seconds accounted between ticks")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write scrub.* metrics JSON here")
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("suggest", help="suggest isovalues by selectivity")
    p.add_argument("dataset")
    p.add_argument(
        "--selectivity", type=float, nargs="+", default=[0.01, 0.05, 0.25, 0.5]
    )
    p.set_defaults(func=cmd_suggest)

    p = sub.add_parser("estimate", help="predict a query's I/O without running it")
    p.add_argument("dataset")
    p.add_argument("iso", type=float)
    p.set_defaults(func=cmd_estimate)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, IOError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
