"""Software z-buffer rasterizer: the stand-in for the paper's GPUs.

Each cluster node in the paper renders its own triangles on a local
NVIDIA GPU and reads back the color+depth buffers for sort-last
compositing.  Here a numpy rasterizer plays that role: flat-shaded,
z-buffered, two-sided (isosurfaces are viewed from both sides).  The
essential property for the reproduction is not speed but *compositional
correctness*: rendering a mesh partitioned across p nodes and z-merging
the p framebuffers must give the same image as rendering everything on
one node, which the test suite asserts pixel-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.render.camera import Camera

#: Default background: dark neutral; depth initialized to +inf.
DEFAULT_BACKGROUND = (0.08, 0.09, 0.11)


@dataclass
class Framebuffer:
    """Color + depth image pair.

    Attributes
    ----------
    color:
        ``(h, w, 3)`` float32 in [0, 1].
    depth:
        ``(h, w)`` float32 view-space distance; +inf where empty.
    """

    width: int
    height: int
    background: tuple[float, float, float] = DEFAULT_BACKGROUND
    color: np.ndarray = field(init=False)
    depth: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(f"framebuffer must be >= 1x1, got {self.width}x{self.height}")
        self.color = np.empty((self.height, self.width, 3), dtype=np.float32)
        self.depth = np.empty((self.height, self.width), dtype=np.float32)
        self.clear()

    def clear(self) -> None:
        self.color[:] = np.asarray(self.background, dtype=np.float32)
        self.depth[:] = np.inf

    def copy(self) -> "Framebuffer":
        fb = Framebuffer(self.width, self.height, self.background)
        fb.color[:] = self.color
        fb.depth[:] = self.depth
        return fb

    def to_uint8(self) -> np.ndarray:
        return np.clip(self.color * 255.0 + 0.5, 0, 255).astype(np.uint8)

    @property
    def payload_bytes(self) -> int:
        """Bytes moved when this buffer is shipped for compositing
        (RGB f32 + depth f32 per pixel, matching GPU readback)."""
        return self.color.nbytes + self.depth.nbytes

    def coverage(self) -> float:
        """Fraction of pixels with geometry."""
        return float(np.isfinite(self.depth).mean())


@dataclass(frozen=True)
class Light:
    """A single directional light with an ambient floor."""

    direction: tuple[float, float, float] = (0.4, -0.35, 0.85)
    ambient: float = 0.18

    def unit(self) -> np.ndarray:
        d = np.asarray(self.direction, dtype=np.float64)
        return d / np.linalg.norm(d)


def render_mesh(
    fb: Framebuffer,
    mesh,
    camera: Camera,
    color=(0.78, 0.33, 0.22),
    light: Light | None = None,
) -> int:
    """Rasterize a mesh into ``fb`` with z-buffering and flat shading.

    Returns the number of triangles actually rasterized (after near-plane
    and off-screen rejection).  Shading is two-sided Lambert — the
    absolute value of ``normal . light`` — because an isosurface may be
    seen from either side.
    """
    if mesh.n_triangles == 0:
        return 0
    light = light or Light()
    cam = camera
    if cam.aspect != fb.width / fb.height:
        cam = Camera(
            eye=camera.eye,
            target=camera.target,
            up=camera.up,
            fov_y=camera.fov_y,
            aspect=fb.width / fb.height,
            near=camera.near,
        )

    xy, depth = cam.project(mesh.vertices, fb.width, fb.height)
    tri_xy = xy[mesh.faces]  # (F, 3, 2)
    tri_z = depth[mesh.faces]  # (F, 3)

    # Reject triangles touching the near plane or entirely off screen.
    ok = np.all(tri_z > cam.near, axis=1)
    ok &= np.all(np.isfinite(tri_xy).reshape(len(tri_xy), -1), axis=1)
    mins = tri_xy.min(axis=1)
    maxs = tri_xy.max(axis=1)
    ok &= (maxs[:, 0] >= 0) & (mins[:, 0] <= fb.width - 1)
    ok &= (maxs[:, 1] >= 0) & (mins[:, 1] <= fb.height - 1)
    idx = np.flatnonzero(ok)
    if len(idx) == 0:
        return 0

    # Flat shading per face.
    normals = mesh.face_normals()
    shade = np.abs(normals @ light.unit())
    intensity = light.ambient + (1.0 - light.ambient) * shade
    base = np.asarray(color, dtype=np.float32)

    colorbuf, depthbuf = fb.color, fb.depth
    w, h = fb.width, fb.height

    for f in idx:
        (x0, y0), (x1, y1), (x2, y2) = tri_xy[f]
        z0, z1, z2 = tri_z[f]
        xmin = max(int(np.floor(min(x0, x1, x2))), 0)
        xmax = min(int(np.ceil(max(x0, x1, x2))), w - 1)
        ymin = max(int(np.floor(min(y0, y1, y2))), 0)
        ymax = min(int(np.ceil(max(y0, y1, y2))), h - 1)
        if xmin > xmax or ymin > ymax:
            continue
        area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
        if area == 0:
            continue
        xs = np.arange(xmin, xmax + 1, dtype=np.float64) + 0.0
        ys = np.arange(ymin, ymax + 1, dtype=np.float64) + 0.0
        px, py = np.meshgrid(xs, ys)
        w0 = ((x1 - x0) * (py - y0) - (px - x0) * (y1 - y0)) / area
        w1 = ((px - x0) * (y2 - y0) - (x2 - x0) * (py - y0)) / area
        # Barycentric wrt v0: b1 = weight of v1 etc.
        b2 = w0
        b1 = w1
        b0 = 1.0 - b1 - b2
        inside = (b0 >= 0) & (b1 >= 0) & (b2 >= 0)
        if not inside.any():
            continue
        z = b0 * z0 + b1 * z1 + b2 * z2
        sub_d = depthbuf[ymin : ymax + 1, xmin : xmax + 1]
        win = inside & (z < sub_d)
        if not win.any():
            continue
        sub_d[win] = z[win].astype(np.float32)
        shaded = (base * float(intensity[f])).astype(np.float32)
        colorbuf[ymin : ymax + 1, xmin : xmax + 1][win] = shaded
    return int(len(idx))


def render_mesh_smooth(
    fb: Framebuffer,
    mesh,
    camera: Camera,
    vertex_normals: np.ndarray,
    color=(0.78, 0.33, 0.22),
    light: Light | None = None,
) -> int:
    """Gouraud-shaded rasterization using per-vertex normals.

    Intensity is computed per vertex (two-sided Lambert on
    ``vertex_normals``, e.g. the field-gradient normals of
    :func:`repro.mc.normals.smooth_mesh_normals`) and interpolated
    barycentrically across each triangle, removing the faceting of flat
    shading.  Returns the number of rasterized triangles.
    """
    if mesh.n_triangles == 0:
        return 0
    light = light or Light()
    vertex_normals = np.asarray(vertex_normals, dtype=np.float64).reshape(
        mesh.n_vertices, 3
    )
    cam = camera
    if cam.aspect != fb.width / fb.height:
        cam = Camera(
            eye=camera.eye, target=camera.target, up=camera.up,
            fov_y=camera.fov_y, aspect=fb.width / fb.height, near=camera.near,
        )
    xy, depth = cam.project(mesh.vertices, fb.width, fb.height)
    shade = np.abs(vertex_normals @ light.unit())
    v_intensity = light.ambient + (1.0 - light.ambient) * shade

    tri_xy = xy[mesh.faces]
    tri_z = depth[mesh.faces]
    tri_i = v_intensity[mesh.faces]

    ok = np.all(tri_z > cam.near, axis=1)
    ok &= np.all(np.isfinite(tri_xy).reshape(len(tri_xy), -1), axis=1)
    mins = tri_xy.min(axis=1)
    maxs = tri_xy.max(axis=1)
    ok &= (maxs[:, 0] >= 0) & (mins[:, 0] <= fb.width - 1)
    ok &= (maxs[:, 1] >= 0) & (mins[:, 1] <= fb.height - 1)
    idx = np.flatnonzero(ok)
    if len(idx) == 0:
        return 0

    base = np.asarray(color, dtype=np.float32)
    colorbuf, depthbuf = fb.color, fb.depth
    w, h = fb.width, fb.height
    for f in idx:
        (x0, y0), (x1, y1), (x2, y2) = tri_xy[f]
        z0, z1, z2 = tri_z[f]
        i0, i1, i2 = tri_i[f]
        xmin = max(int(np.floor(min(x0, x1, x2))), 0)
        xmax = min(int(np.ceil(max(x0, x1, x2))), w - 1)
        ymin = max(int(np.floor(min(y0, y1, y2))), 0)
        ymax = min(int(np.ceil(max(y0, y1, y2))), h - 1)
        if xmin > xmax or ymin > ymax:
            continue
        area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
        if area == 0:
            continue
        xs = np.arange(xmin, xmax + 1, dtype=np.float64)
        ys = np.arange(ymin, ymax + 1, dtype=np.float64)
        px, py = np.meshgrid(xs, ys)
        b2 = ((x1 - x0) * (py - y0) - (px - x0) * (y1 - y0)) / area
        b1 = ((px - x0) * (y2 - y0) - (x2 - x0) * (py - y0)) / area
        b0 = 1.0 - b1 - b2
        inside = (b0 >= 0) & (b1 >= 0) & (b2 >= 0)
        if not inside.any():
            continue
        z = b0 * z0 + b1 * z1 + b2 * z2
        sub_d = depthbuf[ymin : ymax + 1, xmin : xmax + 1]
        win = inside & (z < sub_d)
        if not win.any():
            continue
        sub_d[win] = z[win].astype(np.float32)
        intensity = (b0 * i0 + b1 * i1 + b2 * i2)[win].astype(np.float32)
        colorbuf[ymin : ymax + 1, xmin : xmax + 1][win] = (
            intensity[:, None] * base[None, :]
        )
    return int(len(idx))


def render_depth_colored(
    fb: Framebuffer, mesh, camera: Camera, cmap_near=(1.0, 0.9, 0.4), cmap_far=(0.2, 0.25, 0.7)
) -> int:
    """Rasterize with depth-mapped coloring (useful for compositing demos
    where per-node provenance should stay visible)."""
    n = render_mesh(fb, mesh, camera, color=(1.0, 1.0, 1.0))
    finite = np.isfinite(fb.depth)
    if finite.any():
        d = fb.depth[finite]
        lo, hi = float(d.min()), float(d.max())
        t = np.zeros_like(d) if hi == lo else (d - lo) / (hi - lo)
        near = np.asarray(cmap_near, dtype=np.float32)
        far = np.asarray(cmap_far, dtype=np.float32)
        fb.color[finite] *= (1 - t[:, None]) * near + t[:, None] * far
    return n
