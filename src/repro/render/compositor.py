"""Sort-last compositing (paper Section 6, [30]).

Each node renders its local triangles, then the p framebuffers are merged
by depth comparison.  Two classic schedules are implemented with full
byte accounting, standing in for Chromium over InfiniBand:

* **direct send** — every node sends each display tile's region of its
  buffer to that tile's display server; each server z-merges p regions.
* **binary swap** — log2(p) rounds of pairwise half-buffer exchanges,
  after which each node owns a fully composited 1/p of the image and
  sends it to the display.

Both produce *exactly* the image of the reference :func:`composite`
(z-min select), which the tests assert, while differing in who moves how
many bytes — the subject of the compositing ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import NULL_TRACER
from repro.render.rasterizer import Framebuffer
from repro.render.tiled_display import TileLayout


@dataclass
class CompositeStats:
    """Communication accounting for one compositing operation."""

    schedule: str
    n_nodes: int
    rounds: int = 0
    bytes_sent_per_node: "list[int]" = field(default_factory=list)
    #: Node indices whose contribution a compositing deadline dropped
    #: (their pixels are missing from the output; empty without budget).
    dropped_nodes: "list[int]" = field(default_factory=list)
    #: Node indices whose contribution the *network* lost past the
    #: retry budget (a subset of ``dropped_nodes``; empty without an
    #: installed network fault session).  Consumers must flag the
    #: composite degraded — a lost contribution is never silent.
    lost_nodes: "list[int]" = field(default_factory=list)
    #: Modeled seconds of network fault delay (retry backoff, reorder
    #: resequencing, latency faults) charged on top of the transfers.
    net_delay_seconds: float = 0.0
    #: Modeled seconds of the transfers actually performed, when an
    #: interconnect model was supplied (0.0 otherwise).
    modeled_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return int(sum(self.bytes_sent_per_node))

    @property
    def max_bytes_per_node(self) -> int:
        return int(max(self.bytes_sent_per_node, default=0))


def _zmerge_into(dst_color, dst_depth, src_color, src_depth) -> None:
    """In-place z-compare merge of one source buffer region into dst."""
    win = src_depth < dst_depth
    dst_depth[win] = src_depth[win]
    dst_color[win] = src_color[win]


def composite(framebuffers: "list[Framebuffer]") -> Framebuffer:
    """Reference z-min composite of p framebuffers (no communication
    accounting).  All buffers must share dimensions."""
    if not framebuffers:
        raise ValueError("need at least one framebuffer")
    first = framebuffers[0]
    for fb in framebuffers[1:]:
        if (fb.width, fb.height) != (first.width, first.height):
            raise ValueError(
                f"framebuffer size mismatch: {fb.width}x{fb.height} vs "
                f"{first.width}x{first.height}"
            )
    out = first.copy()
    for fb in framebuffers[1:]:
        _zmerge_into(out.color, out.depth, fb.color, fb.depth)
    return out


#: Bytes per pixel shipped during compositing: RGB float32 + depth float32.
PIXEL_PAYLOAD_BYTES = 16


def direct_send(
    framebuffers: "list[Framebuffer]",
    layout: TileLayout,
    interconnect=None,
    budget: "float | None" = None,
    tracer=NULL_TRACER,
    track: "str | None" = None,
    network=None,
) -> tuple[Framebuffer, CompositeStats]:
    """Direct-send compositing onto a tiled display.

    Every rendering node ships, for each tile, the region of its buffer
    covering that tile (the paper notes regions of the frame buffer
    including z are forwarded to the appropriate rendering servers).
    Display servers z-merge what they receive.  A node co-located with a
    tile's display server still "sends" its own region; we count those
    bytes too, as an upper bound (the paper's nodes overlap with display
    nodes, making this conservative).

    ``budget`` (modeled seconds, requires ``interconnect`` with a
    ``transfer_time(nbytes, n_messages)`` method) makes the composite
    deadline-aware: node contributions are merged in rank order and once
    the modeled transfer time for the *next* node's regions would exceed
    the budget, that node and all later ones are dropped — the display
    shows the frame it has rather than stalling on late buffers.
    Dropped ranks are listed in ``stats.dropped_nodes``; without a
    budget the result is byte-identical to the unbudgeted composite
    (z-min merging is commutative for strict depth wins, and ties keep
    rank order because merging proceeds in ascending rank).

    ``network`` (a :class:`~repro.chaos.netfaults.NetworkSession`, or
    None) subjects each node's tile-region message to the installed
    fault plan: a duplicated message re-ships its bytes, a reordered or
    delayed one charges resequencing latency against the budget, and a
    message lost past the retry budget drops that node's contribution —
    recorded in both ``stats.dropped_nodes`` and ``stats.lost_nodes``
    so the caller can flag the frame degraded.  Contributions that do
    arrive are merged in rank order regardless of wire reordering (the
    transport resequences), keeping the recovered composite
    bit-identical to the fault-free one.
    """
    p = len(framebuffers)
    ref = framebuffers[0]
    for fb in framebuffers:
        if (fb.width, fb.height) != (layout.width, layout.height):
            raise ValueError(
                f"framebuffer {fb.width}x{fb.height} does not match tile layout "
                f"{layout.width}x{layout.height}"
            )
    if budget is not None and interconnect is None:
        raise ValueError("a composite budget needs an interconnect model")
    stats = CompositeStats(schedule="direct-send", n_nodes=p, rounds=1)
    stats.bytes_sent_per_node = [0] * p

    node_bytes = sum(
        (lambda rc: (rc[0].stop - rc[0].start) * (rc[1].stop - rc[1].start))(
            layout.tile_slices(t)
        )
        * PIXEL_PAYLOAD_BYTES
        for t in range(layout.n_tiles)
    )
    out = Framebuffer(ref.width, ref.height, ref.background)
    sent_bytes = 0
    sent_msgs = 0
    for q, fb in enumerate(framebuffers):
        copies = 1
        if network is not None:
            from repro.chaos.netfaults import COORDINATOR

            d = network.send(
                q, COORDINATOR, tracer=tracer, track=track,
                what="tile-regions",
            )
            if not d.delivered:
                stats.dropped_nodes.append(q)
                stats.lost_nodes.append(q)
                tracer.instant(
                    "chaos.net.contribution_lost", track=track,
                    category="chaos",
                    args={"rank": q, "attempts": d.attempts,
                          "blocked": d.blocked},
                )
                continue
            copies = 1 + d.duplicates
            stats.net_delay_seconds += d.delay
        if budget is not None:
            projected = interconnect.transfer_time(
                sent_bytes + node_bytes * copies,
                sent_msgs + layout.n_tiles * copies,
            ) + stats.net_delay_seconds
            # The first contribution always lands (an empty frame helps
            # nobody); later ones drop once the wire time would overrun.
            if sent_msgs and projected > budget:
                stats.dropped_nodes.append(q)
                tracer.instant(
                    "composite.node_dropped", track=track, category="render",
                    args={"rank": q, "projected_seconds": projected,
                          "budget": budget},
                )
                continue
        sent_bytes += node_bytes * copies
        sent_msgs += layout.n_tiles * copies
        stats.bytes_sent_per_node[q] = node_bytes * copies
        for t in range(layout.n_tiles):
            rows, cols = layout.tile_slices(t)
            _zmerge_into(
                out.color[rows, cols], out.depth[rows, cols],
                fb.color[rows, cols], fb.depth[rows, cols],
            )
    if interconnect is not None:
        stats.modeled_seconds = (
            interconnect.transfer_time(sent_bytes, sent_msgs)
            + stats.net_delay_seconds
        )
    return out, stats


def binary_swap(
    framebuffers: "list[Framebuffer]",
) -> tuple[Framebuffer, CompositeStats]:
    """Binary-swap compositing; requires a power-of-two node count.

    In round r, partners exchange halves of their current region and each
    z-merges the half it keeps; after log2(p) rounds node q owns the
    fully composited row-strip q, which is gathered to the display.
    """
    p = len(framebuffers)
    if p == 0 or (p & (p - 1)) != 0:
        raise ValueError(f"binary swap needs a power-of-two node count, got {p}")
    ref = framebuffers[0]
    h = ref.height
    stats = CompositeStats(schedule="binary-swap", n_nodes=p)
    stats.bytes_sent_per_node = [0] * p

    # Working copies; region[q] = (row_start, row_stop) owned by node q.
    colors = [fb.color.copy() for fb in framebuffers]
    depths = [fb.depth.copy() for fb in framebuffers]
    region = [(0, h)] * p

    step = 1
    while step < p:
        stats.rounds += 1
        for q in range(p):
            partner = q ^ step
            if partner < q:
                continue
            r0, r1 = region[q]
            mid = (r0 + r1) // 2
            # q keeps [r0, mid), partner keeps [mid, r1).
            send_q = (r1 - mid) * ref.width * PIXEL_PAYLOAD_BYTES
            send_p = (mid - r0) * ref.width * PIXEL_PAYLOAD_BYTES
            stats.bytes_sent_per_node[q] += send_q
            stats.bytes_sent_per_node[partner] += send_p
            _zmerge_into(
                colors[q][r0:mid], depths[q][r0:mid],
                colors[partner][r0:mid], depths[partner][r0:mid],
            )
            _zmerge_into(
                colors[partner][mid:r1], depths[partner][mid:r1],
                colors[q][mid:r1], depths[q][mid:r1],
            )
            region[q] = (r0, mid)
            region[partner] = (mid, r1)
        step *= 2

    # Final gather of each node's strip to the display.
    out = Framebuffer(ref.width, ref.height, ref.background)
    for q in range(p):
        r0, r1 = region[q]
        stats.bytes_sent_per_node[q] += (r1 - r0) * ref.width * PIXEL_PAYLOAD_BYTES
        out.color[r0:r1] = colors[q][r0:r1]
        out.depth[r0:r1] = depths[q][r0:r1]
    return out, stats
