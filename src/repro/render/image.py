"""Minimal image output: binary PPM/PGM writers and ASCII previews.

No imaging dependency is available offline, and none is needed — PPM/PGM
are self-describing formats every viewer reads, sufficient for the
Figure 4 reproduction and the examples.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np


def write_ppm(path: str | os.PathLike, rgb: np.ndarray) -> Path:
    """Write an ``(h, w, 3)`` uint8 array as binary PPM (P6)."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3), got {rgb.shape}")
    if rgb.dtype != np.uint8:
        raise ValueError(f"expected uint8, got {rgb.dtype}")
    path = Path(path)
    h, w, _ = rgb.shape
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(rgb.tobytes())
    return path


def write_pgm(path: str | os.PathLike, gray: np.ndarray) -> Path:
    """Write an ``(h, w)`` uint8 array as binary PGM (P5)."""
    gray = np.asarray(gray)
    if gray.ndim != 2:
        raise ValueError(f"expected (h, w), got {gray.shape}")
    if gray.dtype != np.uint8:
        raise ValueError(f"expected uint8, got {gray.dtype}")
    path = Path(path)
    h, w = gray.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode())
        fh.write(gray.tobytes())
    return path


def read_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read back a binary PPM written by :func:`write_ppm`."""
    with open(path, "rb") as fh:
        magic = fh.readline().strip()
        if magic != b"P6":
            raise ValueError(f"not a binary PPM: magic {magic!r}")
        dims = fh.readline().split()
        w, h = int(dims[0]), int(dims[1])
        maxval = int(fh.readline())
        if maxval != 255:
            raise ValueError(f"unsupported maxval {maxval}")
        data = fh.read(w * h * 3)
    return np.frombuffer(data, dtype=np.uint8).reshape(h, w, 3)


def depth_to_gray(depth: np.ndarray) -> np.ndarray:
    """Map a depth buffer to uint8 (near = bright, empty = black)."""
    finite = np.isfinite(depth)
    out = np.zeros(depth.shape, dtype=np.uint8)
    if finite.any():
        d = depth[finite]
        lo, hi = float(d.min()), float(d.max())
        t = np.zeros_like(d) if hi == lo else (d - lo) / (hi - lo)
        out[finite] = np.clip((1.0 - t) * 235.0 + 20.0, 0, 255).astype(np.uint8)
    return out


def ascii_preview(rgb: np.ndarray, width: int = 64) -> str:
    """Coarse ASCII rendering of an image for terminal inspection."""
    rgb = np.asarray(rgb, dtype=np.float64)
    h, w = rgb.shape[:2]
    cols = min(width, w)
    rows = max(1, int(cols * h / w * 0.5))
    ys = np.linspace(0, h - 1, rows).astype(int)
    xs = np.linspace(0, w - 1, cols).astype(int)
    lum = rgb[np.ix_(ys, xs)].mean(axis=2) / 255.0
    shades = " .:-=+*#%@"
    idx = np.clip((lum * (len(shades) - 1)).astype(int), 0, len(shades) - 1)
    return "\n".join("".join(shades[i] for i in row) for row in idx)
