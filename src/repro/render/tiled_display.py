"""Tiled wall display layout (the paper's four-projector wall).

A :class:`TileLayout` partitions the full framebuffer into a grid of
rectangular tiles, one per display server.  The compositor routes buffer
regions by tile; the display merges tiles back into the wall image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.rasterizer import Framebuffer


@dataclass(frozen=True)
class TileLayout:
    """A rows x cols tiling of a width x height framebuffer.

    Tile ``t`` (row-major) covers the pixel rectangle returned by
    :meth:`tile_slices`.  Uneven divisions give the last row/column the
    remainder, like a real video wall with bezel-corrected projectors.
    """

    rows: int
    cols: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"tile grid must be >= 1x1, got {self.rows}x{self.cols}")
        if self.height < self.rows or self.width < self.cols:
            raise ValueError(
                f"{self.width}x{self.height} image cannot be split into "
                f"{self.rows}x{self.cols} non-empty tiles"
            )

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    def tile_slices(self, t: int) -> tuple[slice, slice]:
        """(row slice, column slice) of tile ``t`` in row-major order."""
        if not 0 <= t < self.n_tiles:
            raise IndexError(f"tile {t} outside [0, {self.n_tiles})")
        r, c = divmod(t, self.cols)
        h_step = self.height // self.rows
        w_step = self.width // self.cols
        r0 = r * h_step
        r1 = (r + 1) * h_step if r < self.rows - 1 else self.height
        c0 = c * w_step
        c1 = (c + 1) * w_step if c < self.cols - 1 else self.width
        return slice(r0, r1), slice(c0, c1)

    def split(self, fb: Framebuffer) -> "list[Framebuffer]":
        """Cut a framebuffer into per-tile framebuffers."""
        self._check(fb)
        tiles = []
        for t in range(self.n_tiles):
            rows, cols = self.tile_slices(t)
            tile = Framebuffer(cols.stop - cols.start, rows.stop - rows.start, fb.background)
            tile.color[:] = fb.color[rows, cols]
            tile.depth[:] = fb.depth[rows, cols]
            tiles.append(tile)
        return tiles

    def merge(self, tiles: "list[Framebuffer]") -> Framebuffer:
        """Reassemble per-tile framebuffers into the wall image."""
        if len(tiles) != self.n_tiles:
            raise ValueError(f"expected {self.n_tiles} tiles, got {len(tiles)}")
        out = Framebuffer(self.width, self.height, tiles[0].background)
        for t, tile in enumerate(tiles):
            rows, cols = self.tile_slices(t)
            if tile.color.shape[:2] != (rows.stop - rows.start, cols.stop - cols.start):
                raise ValueError(f"tile {t} has wrong shape {tile.color.shape[:2]}")
            out.color[rows, cols] = tile.color
            out.depth[rows, cols] = tile.depth
        return out

    def _check(self, fb: Framebuffer) -> None:
        if (fb.width, fb.height) != (self.width, self.height):
            raise ValueError(
                f"framebuffer {fb.width}x{fb.height} does not match layout "
                f"{self.width}x{self.height}"
            )


#: The paper's wall: four projectors in a 2x2 grid.
def paper_wall(width: int = 512, height: int = 512) -> TileLayout:
    return TileLayout(rows=2, cols=2, width=width, height=height)
