"""Software rendering pipeline: the stand-in for GPUs + Chromium.

``camera``
    Perspective projection producing view-space depths.
``rasterizer``
    Numpy z-buffer rasterizer and :class:`Framebuffer`.
``compositor``
    Sort-last z-merging: reference composite, direct-send and
    binary-swap schedules with byte accounting.
``tiled_display``
    The tiled wall layout regions are routed to.
``image``
    PPM/PGM output and ASCII previews.
"""

from repro.render.camera import Camera
from repro.render.compositor import (
    CompositeStats,
    PIXEL_PAYLOAD_BYTES,
    binary_swap,
    composite,
    direct_send,
)
from repro.render.image import ascii_preview, depth_to_gray, read_ppm, write_pgm, write_ppm
from repro.render.rasterizer import Framebuffer, Light, render_mesh, render_mesh_smooth
from repro.render.tiled_display import TileLayout, paper_wall

__all__ = [
    "Camera",
    "Framebuffer",
    "Light",
    "render_mesh",
    "render_mesh_smooth",
    "composite",
    "direct_send",
    "binary_swap",
    "CompositeStats",
    "PIXEL_PAYLOAD_BYTES",
    "TileLayout",
    "paper_wall",
    "write_ppm",
    "write_pgm",
    "read_ppm",
    "ascii_preview",
    "depth_to_gray",
]
