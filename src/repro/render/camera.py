"""Perspective camera for the software rendering pipeline.

World space is right-handed; the camera looks down its local ``-z``.
Depth values handed to the rasterizer/compositor are *view-space
distances* (``-z_view``), which are positive in front of the camera and
monotonic — exactly what sort-last z-compositing needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Camera:
    """A pinhole camera.

    Parameters
    ----------
    eye:
        Camera position in world space.
    target:
        Point the camera looks at.
    up:
        Approximate up direction (re-orthogonalized internally).
    fov_y:
        Vertical field of view in degrees.
    aspect:
        Width / height of the image plane.
    near:
        Near clip distance; geometry closer than this is discarded.
    """

    eye: np.ndarray
    target: np.ndarray
    up: np.ndarray = None  # type: ignore[assignment]
    fov_y: float = 45.0
    aspect: float = 1.0
    near: float = 1e-3

    def __post_init__(self) -> None:
        self.eye = np.asarray(self.eye, dtype=np.float64)
        self.target = np.asarray(self.target, dtype=np.float64)
        if self.up is None:
            self.up = np.array([0.0, 0.0, 1.0])
        self.up = np.asarray(self.up, dtype=np.float64)
        if np.allclose(self.eye, self.target):
            raise ValueError("camera eye and target coincide")
        if not 0 < self.fov_y < 180:
            raise ValueError(f"fov_y must be in (0, 180), got {self.fov_y}")

    # -- basis ---------------------------------------------------------------

    def view_basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Right, up, forward unit vectors of the camera frame."""
        fwd = self.target - self.eye
        fwd = fwd / np.linalg.norm(fwd)
        right = np.cross(fwd, self.up)
        nr = np.linalg.norm(right)
        if nr < 1e-12:
            # up parallel to view direction: pick any perpendicular
            alt = np.array([1.0, 0.0, 0.0])
            if abs(fwd[0]) > 0.9:
                alt = np.array([0.0, 1.0, 0.0])
            right = np.cross(fwd, alt)
            nr = np.linalg.norm(right)
        right /= nr
        up = np.cross(right, fwd)
        return right, up, fwd

    def to_view(self, points: np.ndarray) -> np.ndarray:
        """World -> view space.  View looks down -z."""
        right, up, fwd = self.view_basis()
        rel = np.asarray(points, dtype=np.float64) - self.eye
        return np.stack([rel @ right, rel @ up, -(rel @ fwd)], axis=1)

    def project(
        self, points: np.ndarray, width: int, height: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project world points to pixel coordinates.

        Returns ``(xy, depth)``: ``xy[:, 0]`` is the column, ``xy[:, 1]``
        the row (row 0 at the *top*), ``depth`` the view-space distance
        (positive in front of the camera; points behind the near plane
        get depth <= near and must be discarded by the caller).
        """
        v = self.to_view(points)
        depth = -v[:, 2]  # positive in front
        f = 1.0 / np.tan(np.radians(self.fov_y) / 2.0)
        safe = np.where(depth > self.near, depth, np.inf)
        x_ndc = (f / self.aspect) * v[:, 0] / safe
        y_ndc = f * v[:, 1] / safe
        col = (x_ndc + 1.0) * 0.5 * (width - 1)
        row = (1.0 - (y_ndc + 1.0) * 0.5) * (height - 1)
        return np.stack([col, row], axis=1), depth

    # -- convenience ----------------------------------------------------------

    @staticmethod
    def fit_mesh(mesh, direction=(1.0, -1.2, 0.8), fov_y: float = 40.0, margin: float = 1.35) -> "Camera":
        """Frame a mesh: place the eye along ``direction`` far enough that
        the bounding sphere fits the field of view."""
        lo, hi = mesh.bounding_box()
        center = 0.5 * (lo + hi)
        radius = 0.5 * float(np.linalg.norm(hi - lo))
        if radius == 0:
            radius = 1.0
        d = np.asarray(direction, dtype=np.float64)
        d = d / np.linalg.norm(d)
        dist = margin * radius / np.tan(np.radians(fov_y) / 2.0)
        return Camera(eye=center + d * dist, target=center, fov_y=fov_y)
