#!/usr/bin/env python
"""Chaos soak harness: N seeded composed-fault trials, one JSON verdict.

Each trial builds a fresh elastic cluster, draws a composed fault
schedule (crash kill + storage fault burst + scale waypoint + network
partition) from its seed, runs the burst serving workload against it,
and asserts every invariant oracle.  The harness exits non-zero if any
trial violates any oracle; violating schedules are ddmin-shrunk to
minimal replayable repros (JSON, re-runnable via
``repro chaos --replay``).

CI runs this as the ``chaos-soak`` job::

    python tools/chaos_harness.py --trials 300 --seed 0 \
        --json out/chaos_harness.json --bench-out --repro-dir out/chaos

Usage (see --help): --trials, --seed, fault-count knobs, --json,
--repro-dir, --bench-out (emit benchmarks/output/BENCH_chaos.json).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chaos import (  # noqa: E402
    ChaosEngine, ChaosSpec, save_schedule, shrink_schedule,
)
from repro.obs.metrics import MetricsRegistry  # noqa: E402


def run_soak(args) -> dict:
    registry = MetricsRegistry()
    engine = ChaosEngine(metrics=registry)
    base = ChaosSpec(
        seed=args.seed,
        n_kills=args.kills, n_fault_bursts=args.fault_bursts,
        n_scales=args.scales, n_partitions=args.partitions,
        duration_units=args.duration_units,
    )

    started = time.time()
    states: "dict[str, int]" = {}
    failing = []
    events = 0
    for i in range(args.trials):
        result = engine.run_trial(replace(base, seed=args.seed + i))
        events += len(result.schedule)
        for k, v in result.states.items():
            states[k] = states.get(k, 0) + v
        if result.violations:
            failing.append(result)
    wall = time.time() - started

    repro_files = []
    for r in failing:
        spec = replace(base, seed=r.seed)

        def still_fails(candidate, _spec=spec):
            return bool(engine.run_trial(_spec, schedule=candidate).violations)

        minimal, probes = shrink_schedule(r.schedule, still_fails)
        path = Path(args.repro_dir) / f"repro_seed{r.seed}.json"
        save_schedule(path, spec, minimal,
                      violations=r.violations, probes=probes)
        repro_files.append({
            "seed": r.seed, "path": str(path),
            "events": len(r.schedule), "minimal_events": len(minimal),
            "probes": probes,
        })

    violations = sum(len(r.violations) for r in failing)
    return {
        "summary": {
            "trials": args.trials,
            "seed": args.seed,
            "events": events,
            "violating_trials": len(failing),
            "violations": violations,
            "states": states,
            "wall_seconds": round(wall, 3),
            "trials_per_second": round(args.trials / wall, 2) if wall else 0.0,
        },
        "metrics": registry.to_dict(),
        "failing": [
            {"seed": r.seed,
             "violations": [v.as_dict() for v in r.violations]}
            for r in failing
        ],
        "repro_schedules": repro_files,
    }


def emit_bench(report: dict, scale: int) -> Path:
    from repro.bench.harness import emit_bench_json

    s = report["summary"]
    metrics = {
        "trials": float(s["trials"]),
        "events": float(s["events"]),
        "violating_trials": float(s["violating_trials"]),
        "violations": float(s["violations"]),
        "wall_seconds": s["wall_seconds"],
        "trials_per_second": s["trials_per_second"],
    }
    for state, n in sorted(s["states"].items()):
        metrics[f"state_{state}"] = float(n)
    for k, v in report["metrics"].items():
        if k.startswith("chaos.net."):
            metrics[k.replace("chaos.net.", "net_")] = float(v)
    extra = {
        "seed": s["seed"],
        "repro_schedules": [r["path"] for r in report["repro_schedules"]],
    }
    return emit_bench_json("chaos", metrics, scale=scale, extra=extra)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trials", type=int, default=300,
                    help="seeded trials (default 300)")
    ap.add_argument("--seed", type=int, default=0,
                    help="first seed; trial i uses seed + i (default 0)")
    ap.add_argument("--kills", type=int, default=1)
    ap.add_argument("--fault-bursts", type=int, default=1)
    ap.add_argument("--scales", type=int, default=1)
    ap.add_argument("--partitions", type=int, default=1)
    ap.add_argument("--duration-units", type=float, default=30.0,
                    help="trace length in service units (default 30)")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help="write the full report here")
    ap.add_argument("--repro-dir", default="out/chaos", metavar="DIR",
                    help="where minimized repro schedules land "
                         "(default out/chaos)")
    ap.add_argument("--bench-out", action="store_true",
                    help="also emit benchmarks/output/BENCH_chaos.json")
    ap.add_argument("--scale", type=int, default=1,
                    help="bench scale tag (default 1)")
    args = ap.parse_args(argv)

    report = run_soak(args)
    s = report["summary"]
    print(f"chaos soak: {s['trials']} trials, {s['events']} events, "
          f"{s['violating_trials']} violating "
          f"({s['wall_seconds']:.1f}s wall, "
          f"{s['trials_per_second']:.1f} trials/s)")
    print("  states : " + ", ".join(
        f"{k}={v}" for k, v in sorted(s["states"].items())))
    for f in report["failing"]:
        print(f"  seed {f['seed']}:")
        for v in f["violations"]:
            print(f"    [{v['oracle']}] {v['message']}")
    for r in report["repro_schedules"]:
        print(f"  repro: seed {r['seed']} shrunk "
              f"{r['events']} -> {r['minimal_events']} events -> {r['path']}")

    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"  report : {out}")
    if args.bench_out:
        print(f"  bench  : {emit_bench(report, args.scale)}")
    return 1 if s["violating_trials"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
