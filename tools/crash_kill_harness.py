#!/usr/bin/env python
"""Randomized crash-kill harness for the journaled builder.

Repeatedly kills :func:`repro.core.persistence.build_persistent_dataset`
at randomized journal/commit points (via
:class:`repro.io.faults.CrashSchedule`), resumes the build, and asserts
the resumed artifacts are **byte-identical** to an uninterrupted
reference build — then runs a deep verify (the fsck core) on the result.

Three trial flavors, mixed by seeded RNG:

soft
    In-process ``SimulatedCrash`` at one kill point, then resume.
    Cheapest; covers every commit-protocol state transition.
double
    Two crashes — the second lands *during the resume* — then a final
    resume.  Exercises journal replay of a journal that was itself
    written by a resumed build.
hard
    A forked child runs the build and dies with ``os._exit(137)`` at
    the kill point (``CrashSchedule(hard=True)``) — a genuine process
    kill, no Python unwinding, no ``finally`` blocks.  The parent
    reaps it and resumes.

Usage::

    PYTHONPATH=src python tools/crash_kill_harness.py --trials 200 \
        --seed 7 --json out/crash_harness.json

Exit status 0 iff every trial resumed byte-identically and verified
clean.  The JSON report is CI-artifact-friendly: per-trial records plus
a summary block.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chaos.engine import kill_schedule  # noqa: E402
from repro.core.journal import JOURNAL_FILE  # noqa: E402
from repro.core.persistence import (  # noqa: E402
    BRICKS_FILE,
    INDEX_FILE,
    META_FILE,
    build_persistent_dataset,
    load_dataset,
)
from repro.core.validation import verify_dataset  # noqa: E402
from repro.grid.volume import Volume  # noqa: E402
from repro.io.faults import CrashSchedule, SimulatedCrash  # noqa: E402

#: Artifacts whose bytes must match the reference build exactly.
ARTIFACTS = (BRICKS_FILE, INDEX_FILE, META_FILE)

#: (volume shape, metacell shape, group_records, volume seed) — three
#: differently-shaped builds so kill points land across varied group
#: counts and partial-tail sizes.
CONFIGS = (
    ((25, 25, 21), (5, 5, 5), 32, 11),
    ((33, 33, 29), (5, 5, 5), 48, 12),
    ((17, 17, 17), (4, 4, 4), 16, 13),
)


def make_volume(shape, seed) -> Volume:
    zz, yy, xx = np.meshgrid(
        *(np.linspace(-1.0, 1.0, s) for s in shape), indexing="ij"
    )
    rng = np.random.default_rng(seed)
    data = (
        np.sqrt(xx**2 + yy**2 + zz**2) + 0.05 * rng.standard_normal(shape)
    ).astype(np.float32)
    return Volume(data)


def artifact_hashes(directory: Path) -> "dict[str, str]":
    out = {}
    for name in ARTIFACTS:
        out[name] = hashlib.sha256((directory / name).read_bytes()).hexdigest()
    return out


def clear_dir(directory: Path) -> None:
    for entry in directory.iterdir():
        entry.unlink()


def run_to_crash(volume, directory, mc, gr, kill_at: int, hard: bool) -> bool:
    """One killed build attempt; returns True iff the kill fired."""
    if hard:
        pid = os.fork()
        if pid == 0:  # child: die for real at the kill point
            try:
                build_persistent_dataset(
                    volume, directory, mc, group_records=gr,
                    crash=CrashSchedule(kill_at=kill_at, hard=True),
                )
            finally:  # pragma: no cover - only if the point never fired
                os._exit(0)
        _, status = os.waitpid(pid, 0)
        return os.waitstatus_to_exitcode(status) == 137
    try:
        build_persistent_dataset(
            volume, directory, mc, group_records=gr,
            crash=CrashSchedule(kill_at=kill_at),
        )
        return False
    except SimulatedCrash:
        return True


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trials", type=int, default=200,
                    help="total randomized kill trials (default 200)")
    ap.add_argument("--seed", type=int, default=7,
                    help="RNG seed for kill-point selection")
    ap.add_argument("--hard-every", type=int, default=10,
                    help="every Nth trial forks + SIGKILL-kills a real "
                         "child process (0 disables; default 10)")
    ap.add_argument("--double-every", type=int, default=5,
                    help="every Nth trial crashes again during resume "
                         "(0 disables; default 5)")
    ap.add_argument("--json", type=Path, default=None,
                    help="write machine-readable report here")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    t_start = time.perf_counter()
    trials: "list[dict]" = []
    failures = 0

    with tempfile.TemporaryDirectory(prefix="crash_harness_") as root:
        root = Path(root)
        # Per config: an uninterrupted reference build + its hashes and
        # the size of the kill-point space.
        refs = []
        for ci, (shape, mc, gr, vseed) in enumerate(CONFIGS):
            volume = make_volume(shape, vseed)
            ref_dir = root / f"ref{ci}"
            ref_dir.mkdir()
            probe = CrashSchedule(kill_at=None)
            build_persistent_dataset(
                volume, ref_dir, mc, group_records=gr, crash=probe
            )
            refs.append({
                "volume": volume,
                "mc": mc,
                "gr": gr,
                "hashes": artifact_hashes(ref_dir),
                "n_points": probe.points_seen,
            })
            if not args.quiet:
                print(f"config {ci}: shape={shape} "
                      f"kill points={probe.points_seen}")

        trial_dir = root / "trial"
        trial_dir.mkdir()
        # The kill schedule comes from the chaos engine's scheduler —
        # one seeded drawing shared with `repro chaos`, so the same
        # (seed, trials) pair replays the same kills everywhere.
        schedule = kill_schedule(
            args.seed, args.trials, [ref["n_points"] for ref in refs],
            hard_every=args.hard_every, double_every=args.double_every,
        )
        for kt in schedule:
            t = kt.trial
            ref = refs[kt.config_index]

            clear_dir(trial_dir)
            fired = run_to_crash(
                ref["volume"], trial_dir, ref["mc"], ref["gr"],
                kt.kill_at, kt.hard,
            )
            if kt.double:
                # Crash again while *resuming*; any surviving point works.
                run_to_crash(
                    ref["volume"], trial_dir, ref["mc"], ref["gr"],
                    kt.second_kill, False,
                )
            ds = build_persistent_dataset(
                ref["volume"], trial_dir, ref["mc"], group_records=ref["gr"]
            )
            hashes = artifact_hashes(trial_dir)
            identical = hashes == ref["hashes"]
            report = verify_dataset(ds, deep=True)
            clean = report.ok
            journal_gone = not (trial_dir / JOURNAL_FILE).exists()
            ok = identical and clean and journal_gone
            failures += 0 if ok else 1
            trials.append({
                "trial": t,
                "config": kt.config_index,
                "kill_at": kt.kill_at,
                "mode": "hard" if kt.hard else ("double" if kt.double else "soft"),
                "second_kill": kt.second_kill,
                "crash_fired": bool(fired),
                "byte_identical": bool(identical),
                "fsck_clean": bool(clean),
                "journal_gone": bool(journal_gone),
                "ok": bool(ok),
            })
            if not ok:
                print(f"FAIL trial {t}: config={kt.config_index} "
                      f"kill_at={kt.kill_at} mode={trials[-1]['mode']} "
                      f"identical={identical} clean={clean}", file=sys.stderr)
            elif not args.quiet and (t + 1) % 50 == 0:
                print(f"  {t + 1}/{args.trials} trials ok")

    elapsed = time.perf_counter() - t_start
    summary = {
        "trials": args.trials,
        "seed": args.seed,
        "failures": failures,
        "modes": {
            m: sum(1 for tr in trials if tr["mode"] == m)
            for m in ("soft", "double", "hard")
        },
        "crashes_fired": sum(1 for tr in trials if tr["crash_fired"]),
        "elapsed_seconds": round(elapsed, 3),
        "configs": [
            {"shape": list(shape), "metacell": list(mc),
             "group_records": gr, "kill_points": refs[ci]["n_points"]}
            for ci, (shape, mc, gr, _s) in enumerate(CONFIGS)
        ],
    }
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps({"summary": summary, "trials": trials}, indent=2)
        )
    print(f"crash harness: {args.trials - failures}/{args.trials} trials "
          f"byte-identical + fsck-clean in {elapsed:.1f}s "
          f"({summary['modes']})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
