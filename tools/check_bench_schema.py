#!/usr/bin/env python
"""Validate ``BENCH_<name>.json`` bench outputs and merge them.

CI's benchmark-smoke job runs a couple of small benches (each emitting a
``repro-bench/1`` document via the ``bench_record`` fixture), then runs
this checker: every file must validate against the schema in
``repro.bench.harness`` — any drift (missing key, wrong type, stale
schema tag) fails the job — plus the checker's own value sanity gate
(every metric must be a non-NaN, non-negative finite number: the bench
quantities are all counts, rates, or durations, so a negative or NaN
value means a broken bench, not a valid result) — and the validated
payloads are merged into one ``BENCH_smoke.json`` artifact whose
metrics are namespaced ``<bench>.<metric>``.

Usage::

    PYTHONPATH=src python tools/check_bench_schema.py \
        [--out benchmarks/output/BENCH_smoke.json] [FILE ...]

With no FILE arguments, checks every ``BENCH_*.json`` under
``benchmarks/output/`` (excluding a previous merged output).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro.bench.harness import BENCH_SCHEMA, OUTPUT_DIR, validate_bench_payload


def check_metric_values(payload: dict) -> None:
    """Raise ``ValueError`` on NaN or negative metric values.

    ``validate_bench_payload`` enforces finiteness; this is the
    checker's stricter gate: every published bench metric is a count,
    rate, or duration, so a NaN or a negative value is a bench bug.
    """
    for key, value in payload.get("metrics", {}).items():
        if isinstance(value, float) and math.isnan(value):
            raise ValueError(f"metric {key!r} is NaN")
        if value < 0:
            raise ValueError(f"metric {key!r} is negative: {value!r}")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="bench JSON files (default: benchmarks/output/BENCH_*.json)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the merged smoke payload here")
    args = parser.parse_args(argv)

    files = args.files or sorted(
        p for p in OUTPUT_DIR.glob("BENCH_*.json")
        if args.out is None or p.resolve() != args.out.resolve()
    )
    if not files:
        print("check_bench_schema: no BENCH_*.json files found", file=sys.stderr)
        return 1

    merged_metrics: "dict[str, float]" = {}
    scale = 1
    failures = 0
    for path in files:
        try:
            payload = json.loads(path.read_text())
            validate_bench_payload(payload)
            check_metric_values(payload)
        except (OSError, ValueError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"ok   {path} ({payload['name']}: {len(payload['metrics'])} metrics)")
        scale = max(scale, payload["scale"])
        for key, value in payload["metrics"].items():
            merged_metrics[f"{payload['name']}.{key}"] = value
    if failures:
        print(f"check_bench_schema: {failures}/{len(files)} files failed",
              file=sys.stderr)
        return 1

    if args.out is not None:
        merged = {
            "schema": BENCH_SCHEMA,
            "name": "smoke",
            "scale": scale,
            "metrics": merged_metrics,
            "extra": {"sources": [p.name for p in files]},
        }
        validate_bench_payload(merged)
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"merged {len(files)} payloads -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
