#!/usr/bin/env python
"""Validate ``BENCH_<name>.json`` bench outputs and merge them.

CI's benchmark-smoke job runs a couple of small benches (each emitting a
``repro-bench/1`` document via the ``bench_record`` fixture), then runs
this checker: every file must validate against the schema in
``repro.bench.harness`` — any drift (missing key, wrong type, stale
schema tag) fails the job — plus the checker's own value sanity gate
(every metric must be a non-NaN, non-negative finite number: the bench
quantities are all counts, rates, or durations, so a negative or NaN
value means a broken bench, not a valid result) — and the validated
payloads are merged into one ``BENCH_smoke.json`` artifact whose
metrics are namespaced ``<bench>.<metric>``.

Usage::

    PYTHONPATH=src python tools/check_bench_schema.py \
        [--out benchmarks/output/BENCH_smoke.json] \
        [--floor NAME=VALUE ...] [--floor-tolerance FRAC] [FILE ...]

With no FILE arguments, checks every ``BENCH_*.json`` under
``benchmarks/output/`` (excluding a previous merged output).

``--floor`` (repeatable) turns the checker into a perf gate: after
validation, metric ``NAME`` — matched against both the bare metric key
and its ``<bench>.<metric>`` namespaced form — must be at least
``VALUE * (1 - tolerance)``.  The tolerance (default 0.15) absorbs
machine-to-machine noise; a regression past it fails the job.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro.bench.harness import BENCH_SCHEMA, OUTPUT_DIR, validate_bench_payload


def check_metric_values(payload: dict) -> None:
    """Raise ``ValueError`` on NaN or negative metric values.

    ``validate_bench_payload`` enforces finiteness; this is the
    checker's stricter gate: every published bench metric is a count,
    rate, or duration, so a NaN or a negative value is a bench bug.
    """
    for key, value in payload.get("metrics", {}).items():
        if isinstance(value, float) and math.isnan(value):
            raise ValueError(f"metric {key!r} is NaN")
        if value < 0:
            raise ValueError(f"metric {key!r} is negative: {value!r}")


def check_chaos_payload(payload: dict) -> None:
    """Extra gate for the chaos soak payload (``name == "chaos"``).

    The chaos bench is a pass/fail soak, not a perf table: it must
    carry its trial accounting, and a payload reporting *any* invariant
    violation is a red build no matter what the suite said — the soak
    can never be merged green with a known violation in its artifact.
    """
    if payload.get("name") != "chaos":
        return
    metrics = payload.get("metrics", {})
    for key in ("trials", "violations", "violating_trials"):
        if key not in metrics:
            raise ValueError(f"chaos payload is missing metric {key!r}")
    if metrics["trials"] <= 0:
        raise ValueError("chaos payload reports zero trials (vacuous soak)")
    if metrics["violations"] > 0 or metrics["violating_trials"] > 0:
        raise ValueError(
            f"chaos payload carries {int(metrics['violations'])} invariant "
            f"violation(s) across {int(metrics['violating_trials'])} "
            f"trial(s); repro schedules: "
            f"{payload.get('extra', {}).get('repro_schedules', [])}"
        )


def parse_floor(spec: str) -> "tuple[str, float]":
    """Split a ``NAME=VALUE`` floor spec (argparse ``type=``)."""
    name, sep, value = spec.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"floor spec must be NAME=VALUE, got {spec!r}")
    try:
        return name, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"floor value for {name!r} is not a number: {value!r}")


def check_floors(merged_metrics: "dict[str, float]",
                 floors: "list[tuple[str, float]]",
                 tolerance: float) -> "list[str]":
    """Return one failure line per unmet (or missing) floor.

    Floors match the namespaced ``<bench>.<metric>`` key or, as a
    convenience, the bare metric name when it is unambiguous across the
    checked files.
    """
    failures = []
    for name, floor in floors:
        candidates = [v for k, v in merged_metrics.items()
                      if k == name or k.split(".", 1)[-1] == name]
        if not candidates:
            failures.append(f"floor metric {name!r} not found in any payload")
            continue
        value = min(candidates)
        cut = floor * (1.0 - tolerance)
        if value < cut:
            failures.append(
                f"metric {name!r} = {value:.4g} below floor {floor:.4g} "
                f"(cutoff {cut:.4g} at {tolerance:.0%} tolerance)")
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="bench JSON files (default: benchmarks/output/BENCH_*.json)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the merged smoke payload here")
    parser.add_argument("--floor", action="append", default=[],
                        type=parse_floor, metavar="NAME=VALUE",
                        help="require metric NAME >= VALUE*(1-tolerance); repeatable")
    parser.add_argument("--floor-tolerance", type=float, default=0.15,
                        metavar="FRAC",
                        help="fractional slack applied to every floor (default 0.15)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.floor_tolerance < 1.0:
        parser.error("--floor-tolerance must be in [0, 1)")

    files = args.files or sorted(
        p for p in OUTPUT_DIR.glob("BENCH_*.json")
        if args.out is None or p.resolve() != args.out.resolve()
    )
    if not files:
        print("check_bench_schema: no BENCH_*.json files found", file=sys.stderr)
        return 1

    merged_metrics: "dict[str, float]" = {}
    scale = 1
    failures = 0
    for path in files:
        try:
            payload = json.loads(path.read_text())
            validate_bench_payload(payload)
            check_metric_values(payload)
            check_chaos_payload(payload)
        except (OSError, ValueError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"ok   {path} ({payload['name']}: {len(payload['metrics'])} metrics)")
        scale = max(scale, payload["scale"])
        for key, value in payload["metrics"].items():
            merged_metrics[f"{payload['name']}.{key}"] = value
    if failures:
        print(f"check_bench_schema: {failures}/{len(files)} files failed",
              file=sys.stderr)
        return 1

    floor_failures = check_floors(merged_metrics, args.floor,
                                  args.floor_tolerance)
    if floor_failures:
        for line in floor_failures:
            print(f"FAIL {line}", file=sys.stderr)
        print(f"check_bench_schema: {len(floor_failures)} perf floor(s) unmet",
              file=sys.stderr)
        return 1
    for name, floor in args.floor:
        print(f"ok   floor {name} >= {floor} "
              f"(-{args.floor_tolerance:.0%} tolerance)")

    if args.out is not None:
        merged = {
            "schema": BENCH_SCHEMA,
            "name": "smoke",
            "scale": scale,
            "metrics": merged_metrics,
            "extra": {"sources": [p.name for p in files]},
        }
        validate_bench_payload(merged)
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"merged {len(files)} payloads -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
